//! Property coverage for the canonical module fingerprint: for random
//! modules drawn from the unstable-idiom template pool, the fingerprint is
//! invariant under formatting/comment-only source changes and under
//! function reordering, but changes whenever an instruction, a UB
//! condition, or a semantics-relevant config knob changes.

use proptest::prelude::*;
use stack_core::{source_fingerprint, CheckerConfig};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// One random function definition drawn from a template pool spanning the
/// checker's UB-condition repertoire (null deref, signed overflow, pointer
/// overflow, oversized shift, division).
fn random_function(name: &str, state: &mut u64) -> String {
    let k = 1 + lcg(state) % 97;
    match lcg(state) % 6 {
        0 => format!("int {name}(struct pkt *p) {{ long s = p->seq; if (!p) return {k}; return (int)s; }}"),
        1 => format!("int {name}(int x) {{ if (x + {k} < x) return 1; return x; }}"),
        2 => format!("int {name}(char *b, unsigned int l) {{ if (b + l < b) return -{k}; return 0; }}"),
        3 => format!("int {name}(unsigned int v, int s) {{ unsigned int r = v << s; if (s >= 32) return {k}; return (int)r; }}"),
        4 => format!("int {name}(int a, int b) {{ int q = (a + {k}) / b; if (b == 0) return -1; return q; }}"),
        _ => format!("int {name}(int a, int b) {{ if (b == 0) return -1; return a / b + {k}; }}"),
    }
}

/// A random module of 1–5 functions, returned one definition per element.
fn random_module(state: &mut u64) -> Vec<String> {
    let n = 1 + (lcg(state) % 5) as usize;
    (0..n)
        .map(|i| random_function(&format!("fn_{i}"), state))
        .collect()
}

/// A cosmetic rewrite of a module: random comments and blank lines between
/// definitions (shifting later lines), plus doubled inter-token spacing —
/// everything the lexer throws away.
fn cosmetic_rewrite(functions: &[String], state: &mut u64) -> String {
    let mut out = String::new();
    for f in functions {
        match lcg(state) % 4 {
            0 => out.push_str("// a line comment\n"),
            1 => out.push_str("/* a block\n   comment */\n\n"),
            2 => out.push('\n'),
            _ => {}
        }
        let spaced = if lcg(state).is_multiple_of(2) {
            f.replace(" { ", "  {  ").replace("; ", ";   ")
        } else {
            f.clone()
        };
        out.push_str(&spaced);
        out.push('\n');
    }
    if lcg(state).is_multiple_of(2) {
        out.push_str("   \n/* trailing */\n");
    }
    out
}

fn fp(src: &str) -> u128 {
    source_fingerprint(src, "prop.c", &CheckerConfig::default()).expect("module compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cosmetic_rewrites_and_reordering_preserve_the_fingerprint(seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(7);
        let functions = random_module(&mut state);
        let base = fp(&(functions.join("\n") + "\n"));

        // Two independent cosmetic rewrites agree with the plain rendering.
        for _ in 0..2 {
            prop_assert_eq!(base, fp(&cosmetic_rewrite(&functions, &mut state)));
        }

        // Any rotation of the definition order agrees (semantics per
        // function are untouched; only the order changes).
        if functions.len() > 1 {
            let rot = 1 + (lcg(&mut state) as usize) % (functions.len() - 1);
            let mut rotated = functions.clone();
            rotated.rotate_left(rot);
            prop_assert_eq!(base, fp(&(rotated.join("\n") + "\n")));
            // Reordering *and* reformatting at once still agrees.
            prop_assert_eq!(base, fp(&cosmetic_rewrite(&rotated, &mut state)));
        }
    }

    #[test]
    fn semantic_and_config_changes_break_the_fingerprint(seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(0x2545_f491).wrapping_add(11);
        let functions = random_module(&mut state);
        let source = functions.join("\n") + "\n";
        let base = fp(&source);

        // Appending a new function changes the module.
        prop_assert!(
            base != fp(&format!("{source}int extra(int x) {{ return x + 1; }}\n")),
            "appending a function must re-key"
        );

        // Changing any embedded constant changes some instruction. (Every
        // template embeds its `k` as a decimal literal; bump the first one.)
        let idx = source.find(|c: char| c.is_ascii_digit()).unwrap();
        let digits_end = source[idx..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|off| idx + off)
            .unwrap();
        let value: u64 = source[idx..digits_end].parse().unwrap();
        let mutated = format!(
            "{}{}{}",
            &source[..idx],
            value + 1,
            &source[digits_end..]
        );
        if source.matches(&format!("{value}")).count() >= 1 {
            prop_assert!(base != fp(&mutated), "constant {} -> {}", value, value + 1);
        }

        // Semantics-relevant config knobs re-key; performance knobs do not.
        let cfg = CheckerConfig::default();
        let budget = CheckerConfig { query_budget: cfg.query_budget / 2, ..cfg };
        prop_assert!(
            base != source_fingerprint(&source, "prop.c", &budget).unwrap(),
            "query_budget must re-key"
        );
        let perf = CheckerConfig {
            threads: Some(3),
            query_cache: false,
            incremental: false,
            ..cfg
        };
        prop_assert_eq!(base, source_fingerprint(&source, "prop.c", &perf).unwrap());
    }
}
