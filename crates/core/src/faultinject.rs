//! Reusable fault-injection harness: the deliberate-damage side of the
//! failure-containment layer.
//!
//! Two fault families are modeled, matching the acceptance criteria of the
//! fault-tolerance suite:
//!
//! * **Storage faults** — pure byte-level corruptions in the style of the
//!   crash-consistency literature's fault models (ALICE/ferrite-style
//!   injection): truncation at an arbitrary byte boundary
//!   ([`truncate_at`]), a torn in-place overwrite splicing the new file's
//!   prefix with the old file's suffix ([`torn_write`]), and a single
//!   flipped bit ([`flip_bit`]). Tests apply these to a saved store file
//!   and re-open it to prove the salvage path either recovers the intact
//!   entries or cleanly restarts — never serves a wrong answer.
//! * **Panic injection** — [`maybe_injected_panic`] panics when the
//!   [`PANIC_ENV`] environment variable names a fragment of the current
//!   module, exercising the scan pipeline's `catch_unwind` containment
//!   boundary from outside the process (CI corrupts nothing in the binary;
//!   it just arms the variable and scans). In-process tests use
//!   [`ScanPipeline::with_injected_panic`](crate::ScanPipeline::with_injected_panic)
//!   instead, which scopes the fault to one pipeline and stays safe under
//!   the test harness's thread-level parallelism.

/// Truncate `bytes` at `offset` — the on-disk outcome of a crash (or a
/// torn copy) that stopped after `offset` bytes reached the file.
pub fn truncate_at(bytes: &[u8], offset: usize) -> Vec<u8> {
    bytes[..offset.min(bytes.len())].to_vec()
}

/// An in-place overwrite interrupted after `split` bytes: the new
/// version's prefix followed by whatever the old version held beyond it.
/// This is the splice a non-atomic rewrite leaves behind — the store's
/// own saves rename atomically, but files copied or synced by outside
/// tooling arrive exactly like this.
pub fn torn_write(new: &[u8], old: &[u8], split: usize) -> Vec<u8> {
    let split = split.min(new.len());
    let mut out = new[..split].to_vec();
    if old.len() > split {
        out.extend_from_slice(&old[split..]);
    }
    out
}

/// Flip bit `bit % 8` of the byte at `index` (out-of-range indices leave
/// the bytes unchanged) — a single-bit medium or transfer error.
pub fn flip_bit(bytes: &[u8], index: usize, bit: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(index) {
        *b ^= 1u8 << (bit % 8);
    }
    out
}

/// The environment variable arming panic injection: its value is matched
/// as a substring against every scanned module's name, and a match
/// panics the analysis of exactly those modules.
pub const PANIC_ENV: &str = "STACK_FAULTINJECT_PANIC";

/// Panic iff [`PANIC_ENV`] is set to a non-empty fragment of `name`.
/// Called once per scan task, inside the pipeline's containment boundary,
/// so an armed variable degrades the matching modules to `Failure` events
/// instead of killing the scan.
pub fn maybe_injected_panic(name: &str) {
    if let Ok(pattern) = std::env::var(PANIC_ENV) {
        if !pattern.is_empty() && name.contains(&pattern) {
            panic!("injected fault: panic while analyzing {name}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_clamps_to_length() {
        assert_eq!(truncate_at(b"abcdef", 3), b"abc");
        assert_eq!(truncate_at(b"abc", 99), b"abc");
        assert_eq!(truncate_at(b"abc", 0), b"");
    }

    #[test]
    fn torn_write_splices_new_prefix_with_old_suffix() {
        assert_eq!(torn_write(b"NEWNEW", b"oldold", 3), b"NEWold");
        assert_eq!(torn_write(b"NEW", b"oldold", 3), b"NEWold");
        assert_eq!(torn_write(b"NEWNEW", b"old", 3), b"NEW");
        assert_eq!(torn_write(b"NEWNEW", b"old", 6), b"NEWNEW");
        assert_eq!(torn_write(b"NEW", b"old", 0), b"old");
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        assert_eq!(flip_bit(b"\x00", 0, 0), b"\x01");
        assert_eq!(flip_bit(b"\xff", 0, 7), b"\x7f");
        assert_eq!(flip_bit(b"ab", 1, 1), b"a`");
        assert_eq!(flip_bit(b"ab", 9, 0), b"ab", "out of range is a no-op");
    }
}
