//! Bug reports produced by the checker.

use crate::ubcond::UbKind;
use serde::Serialize;
use stack_ir::Origin;

/// Which of the checker's algorithms produced a report (Figure 17 breaks
/// reports down along this axis).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize)]
pub enum Algorithm {
    /// Unreachable-code elimination under the well-defined assumption (§3.2.2).
    Elimination,
    /// Simplification with the boolean oracle (§3.2.3).
    SimplifyBoolean,
    /// Simplification with the algebra oracle (§3.2.3).
    SimplifyAlgebra,
}

impl Algorithm {
    /// Display name matching Figure 17's rows.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Elimination => "elimination",
            Algorithm::SimplifyBoolean => "simplification (boolean oracle)",
            Algorithm::SimplifyAlgebra => "simplification (algebra oracle)",
        }
    }
}

/// One undefined-behavior condition implicated in a report (an element of the
/// minimal UB set of §4.5).
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub struct UbSource {
    pub kind: UbKind,
    /// Source location of the instruction carrying the UB condition.
    pub location: String,
}

/// A report of unstable code.
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct BugReport {
    /// Function containing the unstable fragment.
    pub function: String,
    /// Source file.
    pub file: String,
    /// Source line of the unstable fragment.
    pub line: u32,
    /// Which algorithm found it.
    pub algorithm: Algorithm,
    /// Human-readable description (what would be discarded / simplified).
    pub description: String,
    /// The minimal set of UB conditions that make the fragment unstable.
    pub ub_sources: Vec<UbSource>,
    /// Whether the fragment came from a macro expansion or inlined code
    /// (such reports are suppressed by default, §4.2).
    pub compiler_generated: bool,
}

impl BugReport {
    /// Location string `file:line`.
    pub fn location(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }

    /// Whether this report involves a given kind of undefined behavior.
    pub fn involves(&self, kind: UbKind) -> bool {
        self.ub_sources.iter().any(|s| s.kind == kind)
    }
}

impl std::fmt::Display for BugReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: unstable code in `{}` [{}]",
            self.location(),
            self.function,
            self.algorithm.name()
        )?;
        writeln!(f, "  {}", self.description)?;
        for src in &self.ub_sources {
            writeln!(f, "  due to {} at {}", src.kind.description(), src.location)?;
        }
        Ok(())
    }
}

/// Convert an IR origin to a (file, line, compiler_generated) triple.
pub fn origin_info(origin: &Origin) -> (String, u32, bool) {
    (
        origin.loc.file.clone(),
        origin.loc.line,
        !origin.is_programmer_written(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_and_helpers() {
        let report = BugReport {
            function: "tun_chr_poll".to_string(),
            file: "tun.c".to_string(),
            line: 5,
            algorithm: Algorithm::Elimination,
            description: "the return statement becomes unreachable".to_string(),
            ub_sources: vec![UbSource {
                kind: UbKind::NullPointerDereference,
                location: "tun.c:3".to_string(),
            }],
            compiler_generated: false,
        };
        assert_eq!(report.location(), "tun.c:5");
        assert!(report.involves(UbKind::NullPointerDereference));
        assert!(!report.involves(UbKind::PointerOverflow));
        let text = report.to_string();
        assert!(text.contains("unstable code"));
        assert!(text.contains("null pointer dereference"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"algorithm\":\"Elimination\""));
    }

    #[test]
    fn algorithm_names_match_figure17() {
        assert_eq!(Algorithm::Elimination.name(), "elimination");
        assert!(Algorithm::SimplifyBoolean.name().contains("boolean"));
        assert!(Algorithm::SimplifyAlgebra.name().contains("algebra"));
    }
}
