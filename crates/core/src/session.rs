//! Long-lived analysis sessions: the layer between "check one module" and
//! "scan an archive".
//!
//! The paper's flagship deployment (§6.5) analyzes every package of the
//! Debian Wheezy archive — thousands of modules that instantiate the same
//! unstable idioms over and over. An [`AnalysisSession`] is the unit of
//! state that makes that workload cheap to repeat:
//!
//! * it owns the **query store** ([`QueryStore`]) shared by every module
//!   checked through it — the in-memory [`QueryCache`] by default, or a
//!   [`DiskQueryStore`](stack_solver::DiskQueryStore) so the *next process*
//!   starts warm too;
//! * it owns the **configuration** ([`CheckerConfig`]) applied uniformly to
//!   every module;
//! * it accumulates **aggregate statistics** ([`CheckStats`]) across
//!   modules, so an archive scan can report totals without retaining
//!   per-module results;
//! * its streaming entry point ([`check_module_streaming`]) hands each
//!   [`BugReport`] to a sink as the module finishes, so a scan over
//!   thousands of files never holds more than one module's reports in
//!   memory.
//!
//! The one-shot [`Checker`](crate::checker::Checker) is a thin wrapper over
//! a session; existing call sites keep working unchanged.
//!
//! [`check_module_streaming`]: AnalysisSession::check_module_streaming

use crate::checker::{CheckResult, CheckStats, CheckerConfig};
use crate::encoder::FunctionEncoder;
use crate::report::{origin_info, Algorithm, BugReport, UbSource};
use crate::ubcond::{collect_ub_conditions, UbCondition};
use stack_ir::{CmpPred, Function, InstKind, Module, Operand, Origin};
use stack_solver::{
    Budget, BvSolver, CacheStats, QueryCache, QueryResult, QueryStore, SolverStats, TermId,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A long-lived analysis session: one query store, one configuration, many
/// modules. See the module docs for the role it plays in archive scans.
#[derive(Debug)]
pub struct AnalysisSession {
    config: CheckerConfig,
    store: Arc<dyn QueryStore>,
    aggregate: Mutex<CheckStats>,
    /// Assumption cores shared across every solver this session creates
    /// (all modules, all worker threads), keyed on the blasted formula's
    /// fingerprint — so a core derived for one function answers the
    /// identical query of a structurally identical function anywhere else
    /// in the scan. Only consulted when `config.core_cache` is on.
    shared_cores: Arc<SharedCoreMutex>,
}

type SharedCoreMutex = std::sync::Mutex<stack_solver::sat::SharedCoreCache>;

/// The outcome of checking one selected function of a module: its **raw**
/// reports — in discovery order, before the module-level dedup/suppression
/// filter — and its per-function solver degradation. Produced by
/// [`AnalysisSession::check_functions_selected`]; the scan pipeline
/// persists exactly this unit per replay key.
#[derive(Debug)]
pub struct FunctionCheck {
    /// Index of the function in the module's function list.
    pub index: usize,
    /// The function's raw (pre-filter) reports.
    pub reports: Vec<BugReport>,
    /// Budget-exhausted queries this function's analysis hit. A function
    /// with `timeouts > 0` has a budget-shaped report set, so it is never
    /// recorded for replay — its healthy siblings still are.
    pub timeouts: u64,
}

impl Default for AnalysisSession {
    fn default() -> AnalysisSession {
        AnalysisSession::new(CheckerConfig::default())
    }
}

impl AnalysisSession {
    /// A session backed by a fresh in-memory [`QueryCache`].
    pub fn new(config: CheckerConfig) -> AnalysisSession {
        AnalysisSession::with_store(config, Arc::new(QueryCache::new()))
    }

    /// A session backed by an explicit store — share one store between
    /// sessions, or pass a [`DiskQueryStore`](stack_solver::DiskQueryStore)
    /// to warm-start from (and later persist to) a cache file. The store is
    /// only consulted when [`CheckerConfig::query_cache`] is on.
    pub fn with_store(config: CheckerConfig, store: Arc<dyn QueryStore>) -> AnalysisSession {
        AnalysisSession {
            config,
            store,
            aggregate: Mutex::new(CheckStats::default()),
            shared_cores: Arc::new(SharedCoreMutex::default()),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The session's query store.
    pub fn store(&self) -> &Arc<dyn QueryStore> {
        &self.store
    }

    /// Counters of the session's query store (lifetime of the store — for a
    /// disk-backed store that includes nothing from previous processes, only
    /// lookups made through this one).
    pub fn store_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Aggregate statistics over every module checked through this session.
    /// `elapsed` sums the per-module analysis times (not wall clock between
    /// calls); `threads` is the maximum any module used.
    pub fn stats(&self) -> CheckStats {
        self.aggregate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Fold externally produced per-module statistics into the session
    /// aggregate — how the scan pipeline accounts for modules it replayed
    /// from the scan store without driving the checker.
    pub(crate) fn absorb_stats(&self, stats: &CheckStats) {
        self.aggregate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(stats);
    }

    /// A solver wired to this session's budget, (if enabled) query store,
    /// and (if enabled) incremental solving mode.
    fn make_solver(&self) -> BvSolver {
        let budget = match self.config.query_budget {
            0 => Budget::unlimited(),
            n => Budget::propagations(n),
        };
        let mut solver = BvSolver::with_budget(budget);
        if self.config.query_cache {
            solver.set_store(Some(Arc::clone(&self.store)));
        }
        solver.set_incremental(self.config.incremental);
        solver.set_preprocessing(self.config.preprocess);
        solver.set_fragment_instances(self.config.fragment_instances);
        solver.set_core_caching(self.config.core_cache);
        solver.set_hbr(self.config.hbr);
        if self.config.core_cache {
            solver.set_shared_cores(Arc::clone(&self.shared_cores));
        }
        solver
    }

    /// Number of worker threads a module of `functions` functions will use.
    fn resolve_threads(&self, functions: usize) -> usize {
        self.config
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .clamp(1, functions.max(1))
    }

    /// Compile a mini-C source string, run the analysis pre-pass, and check
    /// it, collecting the reports.
    pub fn check_source(&self, src: &str, file: &str) -> Result<CheckResult, stack_minic::Diag> {
        let mut module = stack_minic::compile(src, file)?;
        stack_opt::optimize_for_analysis(&mut module);
        Ok(self.check_module(&module))
    }

    /// Streaming variant of [`check_source`](AnalysisSession::check_source):
    /// reports go to `sink` instead of a vector.
    pub fn check_source_streaming(
        &self,
        src: &str,
        file: &str,
        sink: &mut dyn FnMut(BugReport),
    ) -> Result<CheckStats, stack_minic::Diag> {
        let mut module = stack_minic::compile(src, file)?;
        stack_opt::optimize_for_analysis(&mut module);
        Ok(self.check_module_streaming(&module, sink))
    }

    /// Check every function of an (already optimized-for-analysis) module,
    /// collecting the reports. Thin wrapper over
    /// [`check_module_streaming`](AnalysisSession::check_module_streaming).
    pub fn check_module(&self, module: &Module) -> CheckResult {
        let mut reports = Vec::new();
        let stats = self.check_module_streaming(module, &mut |r| reports.push(r));
        CheckResult { reports, stats }
    }

    /// Check every function of an (already optimized-for-analysis) module,
    /// handing each surviving report to `sink` and returning the module's
    /// statistics (also merged into the session aggregate). An archive scan
    /// that prints or counts reports as they appear never retains them.
    ///
    /// Functions are distributed over [`CheckerConfig::threads`] scoped
    /// worker threads pulling from a shared atomic work index (dynamic
    /// self-scheduling, so a thread that drew cheap functions steals the
    /// remaining work of slower ones). Each worker owns a private solver —
    /// and therefore private `TermPool`s via its per-function encoders —
    /// while sharing the session-wide query store. Results are stitched back
    /// in function order, so the report stream is identical to a sequential
    /// run's regardless of thread count or scheduling. (On workloads where
    /// queries hit the per-query budget, that guarantee additionally
    /// requires `incremental: false`: an incremental instance's CNF depends
    /// on which of its queries were answered by the shared store first, so
    /// budget-boundary `Unknown` outcomes can vary with thread timing.)
    pub fn check_module_streaming(
        &self,
        module: &Module,
        sink: &mut dyn FnMut(BugReport),
    ) -> CheckStats {
        let start = Instant::now();
        let select = vec![true; module.len()];
        let (checks, mut stats) = self.check_functions_selected(module, &select);
        let mut by_algorithm: HashMap<Algorithm, usize> = HashMap::new();
        self.filter_module_reports(
            checks.into_iter().flat_map(|c| c.reports),
            &mut by_algorithm,
            sink,
        );
        stats.by_algorithm = by_algorithm;
        stats.elapsed = start.elapsed();
        self.aggregate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(&stats);
        stats
    }

    /// Check a *selected subset* of a module's functions — the primitive
    /// under both [`check_module_streaming`] (everything selected) and the
    /// scan pipeline's per-function incremental re-scan (only the functions
    /// whose replay keys missed the scan store). Returns one
    /// [`FunctionCheck`] per selected function, in function order, carrying
    /// **raw** reports — the crate-internal module-level dedup/suppression
    /// filter is the caller's job, because replayed and fresh reports must
    /// pass through it together — plus the statistics of the work done
    /// (`functions` counts only the selection; nothing is merged into the
    /// session aggregate — callers compose the final per-module statistics
    /// and absorb them once).
    ///
    /// [`check_module_streaming`]: AnalysisSession::check_module_streaming
    pub fn check_functions_selected(
        &self,
        module: &Module,
        select: &[bool],
    ) -> (Vec<FunctionCheck>, CheckStats) {
        let start = Instant::now();
        let functions = module.functions();
        assert_eq!(
            select.len(),
            functions.len(),
            "one select flag per function"
        );
        let indices: Vec<usize> = (0..functions.len()).filter(|&i| select[i]).collect();
        let threads = self.resolve_threads(indices.len());
        let (checks, solver_stats) = if threads <= 1 {
            let mut solver = self.make_solver();
            let checks: Vec<FunctionCheck> = indices
                .iter()
                .map(|&i| {
                    let before = solver.stats().timeouts;
                    let reports = self.check_function(&functions[i], &mut solver);
                    FunctionCheck {
                        index: i,
                        reports,
                        timeouts: solver.stats().timeouts - before,
                    }
                })
                .collect();
            (checks, solver.stats())
        } else {
            self.check_functions_parallel(functions, &indices, threads)
        };
        let stats = CheckStats {
            modules: 1,
            modules_skipped: 0,
            functions: indices.len(),
            functions_skipped: 0,
            queries: solver_stats.queries,
            timeouts: solver_stats.timeouts,
            degraded_modules: usize::from(solver_stats.timeouts > 0),
            cache_hits: solver_stats.cache_hits,
            cache_misses: solver_stats.cache_misses,
            propagations: solver_stats.propagations,
            unsat_propagations: solver_stats.unsat_propagations,
            conflicts: solver_stats.conflicts,
            restarts: solver_stats.restarts,
            learned_clauses: solver_stats.learned_clauses,
            deleted_clauses: solver_stats.deleted_clauses,
            lbd_sum: solver_stats.lbd_sum,
            preprocess_eliminations: solver_stats.preprocess_eliminations,
            incremental_queries: solver_stats.incremental_queries,
            reused_clauses: solver_stats.reused_clauses,
            sat_queries: solver_stats.sat,
            unsat_queries: solver_stats.unsat,
            model_cache_hits: solver_stats.model_cache_hits,
            core_cache_hits: solver_stats.core_cache_hits,
            cores_recorded: solver_stats.cores_recorded,
            core_size_sum: solver_stats.core_size_sum,
            hbr_binaries_added: solver_stats.hbr_binaries_added,
            deleted_tier2: solver_stats.deleted_tier2,
            deleted_local: solver_stats.deleted_local,
            minimization_queries_saved: solver_stats.minimization_queries_saved,
            threads,
            elapsed: start.elapsed(),
            by_algorithm: HashMap::new(),
        };
        (checks, stats)
    }

    /// The module-level report filter: deduplicate identical (location,
    /// function, algorithm) reports, then apply the macro/inline
    /// suppression, streaming what survives to `sink` and counting it in
    /// `by_algorithm`. Order-sensitive (the seen-set is first-wins), so
    /// callers feed the assembled per-function streams in function order —
    /// which is why the scan store records raw pre-filter reports.
    pub(crate) fn filter_module_reports(
        &self,
        raw: impl IntoIterator<Item = BugReport>,
        by_algorithm: &mut HashMap<Algorithm, usize>,
        sink: &mut dyn FnMut(BugReport),
    ) {
        let mut seen = HashSet::new();
        for report in raw {
            if !seen.insert((report.location(), report.function.clone(), report.algorithm)) {
                continue;
            }
            if !self.config.report_compiler_generated && report.compiler_generated {
                continue;
            }
            *by_algorithm.entry(report.algorithm).or_insert(0) += 1;
            sink(report);
        }
    }

    /// The parallel driver: `threads` scoped workers draw positions in the
    /// selected-index list from a shared counter and return their
    /// [`FunctionCheck`]s plus their private solver's statistics, which are
    /// merged field-by-field (so the aggregate equals what one sequential
    /// solver would have counted). Per-function `timeouts` come from
    /// snapshotting the worker solver's counter around each call.
    ///
    /// Each per-function check runs under `catch_unwind`, and a panicking
    /// worker stops drawing work. After every worker has drained, the panic
    /// attached to the *lowest* function index is re-raised — the same one
    /// a sequential run would hit first — so the module-level containment
    /// boundary in the scan pipeline observes an identical payload at any
    /// thread count.
    fn check_functions_parallel(
        &self,
        functions: &[Function],
        indices: &[usize],
        threads: usize,
    ) -> (Vec<FunctionCheck>, SolverStats) {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<FunctionCheck>> = Vec::new();
        slots.resize_with(indices.len(), || None);
        let mut solver_stats = SolverStats::default();
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut solver = self.make_solver();
                        let mut local: Vec<(usize, FunctionCheck)> = Vec::new();
                        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = indices.get(k) else { break };
                            let before = solver.stats().timeouts;
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                self.check_function(&functions[i], &mut solver)
                            })) {
                                Ok(reports) => local.push((
                                    k,
                                    FunctionCheck {
                                        index: i,
                                        reports,
                                        timeouts: solver.stats().timeouts - before,
                                    },
                                )),
                                Err(payload) => {
                                    panicked = Some((i, payload));
                                    break;
                                }
                            }
                        }
                        (local, solver.stats(), panicked)
                    })
                })
                .collect();
            for worker in workers {
                let (local, stats, panicked) = worker
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                solver_stats.merge(&stats);
                for (k, check) in local {
                    slots[k] = Some(check);
                }
                if let Some((i, payload)) = panicked {
                    match &first_panic {
                        Some((j, _)) if *j <= i => {}
                        _ => first_panic = Some((i, payload)),
                    }
                }
            }
        });
        if let Some((_, payload)) = first_panic {
            std::panic::resume_unwind(payload);
        }
        (slots.into_iter().flatten().collect(), solver_stats)
    }

    /// Check a single function.
    pub fn check_function(&self, func: &Function, solver: &mut BvSolver) -> Vec<BugReport> {
        let mut enc = FunctionEncoder::new(func);
        let ub_conds = collect_ub_conditions(func, &mut enc);
        let mut reports = Vec::new();

        // Negate each UB condition exactly once, in condition order:
        // `neg_terms[i]` is the Δ conjunct "¬ub_conds[i]" that every query
        // below assumes for the conditions dominating its fragment. In
        // incremental mode each negation becomes an assumption literal on the
        // function's persistent solver instance the first time a query uses
        // it — encoded once (blaster-memoized), then merely toggled by every
        // later fragment query and Figure 8 minimization iteration.
        let neg_terms: Vec<TermId> = ub_conds.iter().map(|c| enc.negation(c.term)).collect();

        // Index UB conditions by the instruction they attach to.
        let mut by_inst: HashMap<stack_ir::InstId, Vec<usize>> = HashMap::new();
        for (i, c) in ub_conds.iter().enumerate() {
            by_inst.entry(c.inst).or_default().push(i);
        }

        // --- Elimination over basic blocks (Figure 5) -------------------------
        for block in func.block_ids() {
            if block == func.entry() || !enc.cfg.is_reachable(block) {
                continue;
            }
            // Under per-fragment instance granularity, this block's queries
            // start on a fresh solver instance; by default (per-function) the
            // call is a no-op and the function-wide instance persists.
            solver.begin_fragment();
            let reach = enc.reach_term(block);
            match solver.check(&enc.pool, &[reach]) {
                QueryResult::Unsat | QueryResult::Unknown => continue, // trivially dead / timeout
                QueryResult::Sat(_) => {}
            }
            // Δ over the dominators of the block (strictly dominating blocks).
            let dom_conds = dominating_conditions(func, &enc, &by_inst, block, None);
            if dom_conds.is_empty() {
                continue;
            }
            let mut assertions = vec![reach];
            assertions.extend(dom_conds.iter().map(|&ci| neg_terms[ci]));
            if solver.check(&enc.pool, &assertions).is_unsat() {
                let minimal = minimal_ub_set(&enc.pool, solver, &[reach], &dom_conds, &neg_terms);
                let origin = block_report_origin(func, block);
                reports.push(build_report(
                    func,
                    &origin,
                    Algorithm::Elimination,
                    format!(
                        "code in block {} is reachable only by inputs that trigger undefined behavior; \
                         an optimizing compiler may delete it",
                        func.block(block)
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("{block}"))
                    ),
                    &minimal,
                    &ub_conds,
                ));
            }
        }

        // --- Simplification over comparisons (Figure 6) -----------------------
        for (block, inst_id) in func.all_insts() {
            if !enc.cfg.is_reachable(block) {
                continue;
            }
            let InstKind::Cmp { pred, lhs, rhs } = func.inst(inst_id).kind.clone() else {
                continue;
            };
            // One fragment per queried comparison, mirroring the block loop.
            solver.begin_fragment();
            let index = func.position_in_block(inst_id).map(|(_, i)| i).unwrap_or(0);
            let e_term = enc.bool_term(Operand::Inst(inst_id));
            let reach = enc.reach_term(block);
            let dom_conds = dominating_conditions(func, &enc, &by_inst, block, Some(index));
            if dom_conds.is_empty() {
                continue;
            }
            let negations: Vec<TermId> = dom_conds.iter().map(|&ci| neg_terms[ci]).collect();

            // Boolean oracle: propose `true`, then `false`.
            let mut reported = false;
            for proposed in [true, false] {
                let prop = enc.pool.bool_const(proposed);
                let diff = enc.pool.xor(e_term, prop);
                match solver.check(&enc.pool, &[diff, reach]) {
                    QueryResult::Unsat => break, // trivially constant: not unstable
                    QueryResult::Unknown => break,
                    QueryResult::Sat(_) => {}
                }
                let mut assertions = vec![diff, reach];
                assertions.extend(&negations);
                if solver.check(&enc.pool, &assertions).is_unsat() {
                    let minimal =
                        minimal_ub_set(&enc.pool, solver, &[diff, reach], &dom_conds, &neg_terms);
                    let origin = func.inst(inst_id).origin.clone();
                    reports.push(build_report(
                        func,
                        &origin,
                        Algorithm::SimplifyBoolean,
                        format!(
                            "check always evaluates to {proposed} under the well-defined program \
                             assumption; an optimizing compiler may discard it"
                        ),
                        &minimal,
                        &ub_conds,
                    ));
                    reported = true;
                    break;
                }
            }
            if reported {
                continue;
            }

            // Algebra oracle: cancel a common term on both sides.
            if let Some((proposed_term, description)) =
                algebra_proposal(&mut enc, func, pred, lhs, rhs)
            {
                let diff = enc.pool.xor(e_term, proposed_term);
                if let QueryResult::Sat(_) = solver.check(&enc.pool, &[diff, reach]) {
                    let mut assertions = vec![diff, reach];
                    assertions.extend(&negations);
                    if solver.check(&enc.pool, &assertions).is_unsat() {
                        let minimal = minimal_ub_set(
                            &enc.pool,
                            solver,
                            &[diff, reach],
                            &dom_conds,
                            &neg_terms,
                        );
                        let origin = func.inst(inst_id).origin.clone();
                        reports.push(build_report(
                            func,
                            &origin,
                            Algorithm::SimplifyAlgebra,
                            description,
                            &minimal,
                            &ub_conds,
                        ));
                    }
                }
            }
        }

        reports
    }
}

/// UB-condition indices attached to the dominators of a program point.
/// `index = None` means "the start of the block" (used for block
/// elimination); `Some(i)` means the instruction at position `i`.
fn dominating_conditions(
    func: &Function,
    enc: &FunctionEncoder<'_>,
    by_inst: &HashMap<stack_ir::InstId, Vec<usize>>,
    block: stack_ir::BlockId,
    index: Option<usize>,
) -> Vec<usize> {
    let mut out = Vec::new();
    let dom_insts = match index {
        Some(i) => enc.dom.dominating_insts(func, block, i),
        None => {
            let mut v = Vec::new();
            for d in enc.dom.dominators(block) {
                if d == block {
                    continue;
                }
                v.extend(func.block(d).insts.iter().copied());
            }
            v
        }
    };
    for inst in dom_insts {
        if let Some(indices) = by_inst.get(&inst) {
            out.extend(indices.iter().copied());
        }
    }
    out
}

/// The greedy minimal-UB-set computation of Figure 8: drop each condition in
/// turn; if the query becomes satisfiable, that condition is essential.
///
/// Every iteration asserts the same `base` fragment encoding plus all but one
/// of the precomputed condition negations (`neg_terms[ci]`, indexed like
/// `dom_conds`). In incremental mode these terms are already registered as
/// assumption literals on the function's persistent solver instance, so each
/// iteration is a `check_assuming` toggle rather than a fresh bit-blast; the
/// query store still short-circuits iterations repeated across structurally
/// identical functions.
///
/// When the solver extracted an assumption core for the triggering query
/// (always the `check` call immediately preceding this one), the loop seeds
/// its search from it: a core is a subset of `base` plus the asserted
/// negations that is unsatisfiable on its own, so dropping a condition whose
/// negation is *outside* the core leaves the whole core asserted and the
/// query inevitably `Unsat` — the iteration is skipped without entering the
/// solver (counted as `minimization_queries_saved`). Iterations that do run
/// and answer `Unsat` refresh the core, shrinking it as the loop proceeds.
/// Because every iteration tests the full set minus exactly one condition
/// (never an accumulated subset), a skip reproduces the exact verdict the
/// query would have returned, so the resulting minimal set — and with it
/// every report — is byte-identical with seeding on or off.
fn minimal_ub_set(
    pool: &stack_solver::TermPool,
    solver: &mut BvSolver,
    base: &[TermId],
    dom_conds: &[usize],
    neg_terms: &[TermId],
) -> Vec<usize> {
    let mut core: Option<Vec<TermId>> = solver.last_unsat_core().map(<[TermId]>::to_vec);
    let mut essential = Vec::new();
    for &skip in dom_conds {
        if let Some(c) = &core {
            if !c.contains(&neg_terms[skip]) {
                solver.note_minimization_saved();
                continue;
            }
        }
        let mut assertions = base.to_vec();
        assertions.extend(
            dom_conds
                .iter()
                .filter(|&&ci| ci != skip)
                .map(|&ci| neg_terms[ci]),
        );
        match solver.check(pool, &assertions) {
            QueryResult::Sat(_) | QueryResult::Unknown => essential.push(skip),
            QueryResult::Unsat => {
                // A fresh core (absent on store hits, which leave the
                // previous — still valid — one in place) is a subset of this
                // query's assertions, so the invariant "core ⊆ base ∪
                // still-asserted negations" holds.
                if let Some(fresh) = solver.last_unsat_core() {
                    core = Some(fresh.to_vec());
                }
            }
        }
    }
    if essential.is_empty() {
        // Degenerate case (e.g. a single condition): keep everything.
        essential = dom_conds.to_vec();
    }
    essential
}

/// Propose a simpler expression by cancelling a common term on both sides of
/// a comparison (the algebra oracle).
fn algebra_proposal(
    enc: &mut FunctionEncoder<'_>,
    func: &Function,
    pred: CmpPred,
    lhs: Operand,
    rhs: Operand,
) -> Option<(TermId, String)> {
    // Pointer form: (p + x) pred p  ==>  x pred' 0 with signed ordering.
    if let Operand::Inst(id) = lhs {
        if let InstKind::PtrAdd {
            ptr,
            offset,
            elem_size,
            ..
        } = func.inst(id).kind
        {
            if ptr == rhs {
                let off = enc.scaled_offset(offset, elem_size);
                let zero = enc.pool.bv_const(64, 0);
                let term = match pred {
                    CmpPred::Ult | CmpPred::Slt => enc.pool.bv_slt(off, zero),
                    CmpPred::Ule | CmpPred::Sle => enc.pool.bv_sle(off, zero),
                    CmpPred::Ugt | CmpPred::Sgt => enc.pool.bv_sgt(off, zero),
                    CmpPred::Uge | CmpPred::Sge => enc.pool.bv_sge(off, zero),
                    CmpPred::Eq => enc.pool.eq(off, zero),
                    CmpPred::Ne => enc.pool.ne(off, zero),
                };
                return Some((
                    term,
                    "pointer check `p + x < p` can be simplified to a sign test on `x`; \
                     compilers perform the same rewrite"
                        .to_string(),
                ));
            }
        }
        // Integer form: (x + y) pred x  ==>  y pred 0.
        if let InstKind::Bin {
            op: stack_ir::BinOp::Add,
            lhs: a,
            rhs: b,
        } = func.inst(id).kind
        {
            let other = if a == rhs {
                Some(b)
            } else if b == rhs {
                Some(a)
            } else {
                None
            };
            if let Some(y) = other {
                let yt = enc.bv_term(y);
                let width = enc.pool.width(yt);
                let zero = enc.pool.bv_const(width, 0);
                let term = match pred {
                    CmpPred::Slt | CmpPred::Ult => enc.pool.bv_slt(yt, zero),
                    CmpPred::Sle | CmpPred::Ule => enc.pool.bv_sle(yt, zero),
                    CmpPred::Sgt | CmpPred::Ugt => enc.pool.bv_sgt(yt, zero),
                    CmpPred::Sge | CmpPred::Uge => enc.pool.bv_sge(yt, zero),
                    CmpPred::Eq => enc.pool.eq(yt, zero),
                    CmpPred::Ne => enc.pool.ne(yt, zero),
                };
                return Some((
                    term,
                    "comparison `x + y < x` can be simplified to a sign test on `y`".to_string(),
                ));
            }
        }
    }
    None
}

/// Pick a representative origin for a block that may be eliminated: its first
/// instruction, or the condition of the branch that leads to it.
fn block_report_origin(func: &Function, block: stack_ir::BlockId) -> Origin {
    if let Some(&first) = func.block(block).insts.first() {
        return func.inst(first).origin.clone();
    }
    // Empty block (e.g. a lone `return`): walk predecessors until we find the
    // branch condition (or the last instruction) that decides whether this
    // block runs, so the report points at the check being bypassed.
    let mut visited = std::collections::HashSet::new();
    let mut work = vec![block];
    while let Some(cur) = work.pop() {
        if !visited.insert(cur) {
            continue;
        }
        for b in func.block_ids() {
            let term = &func.block(b).terminator;
            if !term.successors().contains(&cur) {
                continue;
            }
            if let stack_ir::Terminator::CondBr {
                cond: Operand::Inst(id),
                ..
            } = term
            {
                return func.inst(*id).origin.clone();
            }
            if let Some(&last) = func.block(b).insts.last() {
                return func.inst(last).origin.clone();
            }
            work.push(b);
        }
    }
    Origin::unknown()
}

fn build_report(
    func: &Function,
    origin: &Origin,
    algorithm: Algorithm,
    description: String,
    minimal: &[usize],
    ub_conds: &[UbCondition],
) -> BugReport {
    let (file, line, compiler_generated) = origin_info(origin);
    let mut ub_sources: Vec<UbSource> = minimal
        .iter()
        .map(|&i| UbSource {
            kind: ub_conds[i].kind,
            location: format!(
                "{}:{}",
                ub_conds[i].origin.loc.file, ub_conds[i].origin.loc.line
            ),
        })
        .collect();
    ub_sources.sort_by(|a, b| (a.kind, &a.location).cmp(&(b.kind, &b.location)));
    ub_sources.dedup();
    BugReport {
        function: func.name.clone(),
        file,
        line,
        algorithm,
        description,
        ub_sources,
        compiler_generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_solver::DiskQueryStore;

    const TWO_FUNCTION_SRC: &str = "\
        int s0(int x) { if (x + 7 < x) return 1; return 0; }\n\
        int s1(int *p) { int v = *p; if (!p) return 1; return v; }\n";

    #[test]
    fn session_aggregates_stats_across_modules() {
        let session = AnalysisSession::new(CheckerConfig::default());
        let first = session.check_source(TWO_FUNCTION_SRC, "a.c").unwrap();
        let second = session.check_source(TWO_FUNCTION_SRC, "b.c").unwrap();
        let total = session.stats();
        assert_eq!(total.modules, 2);
        assert_eq!(total.functions, 4);
        assert_eq!(
            total.queries,
            first.stats.queries + second.stats.queries,
            "aggregate queries must be the sum of per-module queries"
        );
        assert_eq!(
            total.by_algorithm.values().sum::<usize>(),
            first.reports.len() + second.reports.len()
        );
        // The second, structurally identical module is answered from the
        // shared store.
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn streaming_and_collecting_agree() {
        let session = AnalysisSession::new(CheckerConfig::default());
        let collected = session.check_source(TWO_FUNCTION_SRC, "a.c").unwrap();
        let mut streamed = Vec::new();
        let stats = session
            .check_source_streaming(TWO_FUNCTION_SRC, "a.c", &mut |r| streamed.push(r))
            .unwrap();
        assert_eq!(
            format!("{:?}", collected.reports),
            format!("{streamed:?}"),
            "streamed reports must match collected reports, in order"
        );
        assert_eq!(stats.queries, collected.stats.queries);
    }

    #[test]
    fn disk_store_backed_session_warm_starts() {
        let path =
            std::env::temp_dir().join(format!("stack-session-warm-{}.qs", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cold_store = Arc::new(DiskQueryStore::open(&path).unwrap());
        let cold = AnalysisSession::with_store(CheckerConfig::default(), cold_store.clone() as _);
        let cold_result = cold.check_source(TWO_FUNCTION_SRC, "a.c").unwrap();
        assert!(cold_store.save().unwrap() > 0);

        let warm_store = Arc::new(DiskQueryStore::open(&path).unwrap());
        assert!(warm_store.loaded_entries() > 0);
        let warm = AnalysisSession::with_store(CheckerConfig::default(), warm_store as _);
        let warm_result = warm.check_source(TWO_FUNCTION_SRC, "a.c").unwrap();
        assert_eq!(
            format!("{:?}", cold_result.reports),
            format!("{:?}", warm_result.reports)
        );
        // Every decided query of the warm run is answered from disk.
        assert_eq!(warm_result.stats.cache_misses, 0, "{:?}", warm_result.stats);
        assert!(warm_result.stats.cache_hits > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
