//! Classification of unstable-code reports (§6.2 of the paper).
//!
//! The paper sorts reports into four categories: non-optimization bugs,
//! urgent optimization bugs (some surveyed compiler already discards the
//! check), time bombs (only a more aggressive optimizer — such as STACK's own
//! model — would), and redundant code (false warnings). The first and last
//! categories require semantic judgement; what can be decided mechanically is
//! the urgent-vs-time-bomb split, by re-running the surveyed compiler
//! profiles on the same source and watching whether any of them discards the
//! flagged check.

use serde::Serialize;
use stack_opt::{run_profile, survey_compilers};

/// Mechanical classification of a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum BugClass {
    /// At least one surveyed compiler discards the flagged check: the report
    /// is an urgent optimization bug (§6.2.2).
    UrgentOptimization {
        /// The first surveyed compiler that discards it.
        compiler: String,
        /// The lowest optimization level at which it does.
        level: u8,
    },
    /// No surveyed compiler currently discards it, but STACK's model shows a
    /// sufficiently aggressive optimizer could: a time bomb (§6.2.3).
    TimeBomb,
}

impl BugClass {
    /// Short label used in the precision experiment (§6.3).
    pub fn label(&self) -> &'static str {
        match self {
            BugClass::UrgentOptimization { .. } => "urgent optimization bug",
            BugClass::TimeBomb => "time bomb",
        }
    }
}

/// Classify a report by source line: re-run every surveyed compiler profile
/// over the source and check whether any of them folds a check at that line.
pub fn classify_source(src: &str, file: &str, report_line: u32) -> BugClass {
    for profile in survey_compilers() {
        for level in 0..=stack_opt::CompilerProfile::MAX_LEVEL {
            let Ok(mut module) = stack_minic::compile(src, file) else {
                continue;
            };
            let events = run_profile(&mut module, &profile, level);
            if events.iter().any(|e| e.origin.loc.line == report_line) {
                return BugClass::UrgentOptimization {
                    compiler: profile.name.to_string(),
                    level,
                };
            }
        }
    }
    BugClass::TimeBomb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_overflow_check_is_urgent() {
        // Even gcc 2.95.3 folds `x + 100 < x` (Figure 4).
        let src = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
        let class = classify_source(src, "t.c", 1);
        match class {
            BugClass::UrgentOptimization { compiler, .. } => {
                assert_eq!(compiler, "gcc-2.95.3");
            }
            other => panic!("expected urgent classification, got {other:?}"),
        }
    }

    #[test]
    fn postgres_negation_time_bomb() {
        // The Figure 14 idiom: no surveyed compiler folds it, so it is a
        // time bomb even though STACK flags it.
        let src = "int f(int64_t arg1) {\n\
                     if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0))) return 1;\n\
                     return 0;\n\
                   }";
        assert_eq!(classify_source(src, "t.c", 2), BugClass::TimeBomb);
    }

    #[test]
    fn labels() {
        assert_eq!(BugClass::TimeBomb.label(), "time bomb");
        assert_eq!(
            BugClass::UrgentOptimization {
                compiler: "gcc-4.8.1".to_string(),
                level: 2
            }
            .label(),
            "urgent optimization bug"
        );
    }
}
