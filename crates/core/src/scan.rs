//! The file-parallel scan pipeline: the archive-scale driver above
//! [`AnalysisSession`].
//!
//! An archive scan has two levels of available parallelism: *within* a
//! module (the per-function worker pool of
//! [`AnalysisSession::check_module_streaming`]) and *across* modules. The
//! session exploits the first; [`ScanPipeline`] adds the second — `jobs`
//! scoped worker threads draw file indices from a shared atomic counter
//! (the same dynamic self-scheduling the per-function driver uses), so a
//! worker that drew cheap files steals the remaining work of slower ones.
//! Both levels compose: each file-level worker drives the shared session,
//! whose per-module thread knob still applies (the CLI defaults it to 1
//! when `--jobs` > 1 so the two levels don't oversubscribe).
//!
//! **Determinism.** Workers finish out of order, but results are emitted in
//! task order through a small reorder buffer: a finishing worker parks its
//! result and flushes every consecutive ready result from the head. The
//! event stream — reports, failures — is therefore byte-identical to a
//! sequential scan's regardless of `jobs` or scheduling, and the buffer
//! holds only the out-of-order window, preserving the scan's
//! bounded-memory property.
//!
//! **Incremental re-scan.** With a [`ScanStore`] attached, every function
//! of a compiled module is keyed
//! ([`function_replay_key`]) before any solver work: a hit replays the
//! function's stored raw reports — path-rewritten to the scanning module's
//! name — without touching the solver and counts the function as skipped
//! ([`CheckStats::functions_skipped`]); a miss analyzes just that function
//! and, when its budget was never exhausted, records it for the next run.
//! An edited module therefore pays the solver only for its edited
//! functions; a module whose functions all replay additionally counts as
//! skipped ([`CheckStats::modules_skipped`]). The replay key is
//! path-independent, so identical vendored files across an archive share
//! one analysis (cross-path dedup). Replayed and fresh raw reports are
//! re-assembled in function order and run through the *module-level*
//! dedup/suppression filter, so the surviving stream is byte-identical to
//! a cold scan's by construction — the key guarantees the checker would
//! have produced identical raw reports under identical semantics, and the
//! filter sees the same assembled stream either way.
//!
//! **Panic containment.** Each task's compile-and-analyze body runs under
//! `catch_unwind`: a panic anywhere in the front end, the optimizer, or
//! the checker degrades that one module to a
//! [`ScanEvent::Failure`] carrying the panic payload — the scan, the
//! other workers, and the exit-code semantics continue as if the module
//! had failed to compile. A panicking module is never recorded in the
//! scan store (record inserts happen only after every selected function
//! returned), and never persisted as a query answer (the unwound query
//! never returned one). Because failures are emitted through the same
//! reorder buffer as reports, a panicking module produces the identical
//! event stream at every `jobs` width.

use crate::checker::CheckStats;
use crate::fingerprint::function_replay_key;
use crate::report::BugReport;
use crate::scanstore::{FunctionRecord, ScanStore};
use crate::session::AnalysisSession;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where one scan task's source comes from. Paths are read only when their
/// turn comes, so one unreadable file fails that task, not the scan — and a
/// scan never holds the whole archive's text in memory.
#[derive(Clone, Debug)]
pub enum ScanSource {
    /// Read from disk when the task is picked up.
    Path(PathBuf),
    /// Source generated in-process (synthetic archives).
    Inline(String),
}

/// One unit of scan work.
#[derive(Clone, Debug)]
pub struct ScanTask {
    /// The module name reports will carry (usually the source path).
    pub name: String,
    /// Where the source text comes from.
    pub source: ScanSource,
}

/// One event of the (deterministically ordered) scan output stream.
#[derive(Debug)]
pub enum ScanEvent {
    /// A surviving report of the task named. Reports of task *i* are always
    /// emitted before any event of task *i + 1*.
    Report(BugReport),
    /// The named task failed to read or compile; the scan continues.
    Failure { name: String, error: String },
}

/// Aggregate outcome of one pipeline run (per-module statistics are merged
/// into the session as usual; this is the scan-level layer on top).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanOutcome {
    /// Tasks attempted.
    pub files: usize,
    /// Tasks that failed to read or compile.
    pub failures: usize,
    /// Modules all of whose functions replayed from the scan store.
    pub modules_skipped: usize,
    /// Functions replayed from the scan store without solver work.
    pub functions_skipped: usize,
}

/// The file-parallel scan driver. See the module docs for the pipeline
/// shape and the determinism contract.
pub struct ScanPipeline<'s> {
    session: &'s AnalysisSession,
    scan_store: Option<Arc<ScanStore>>,
    jobs: usize,
    module_granular: bool,
    /// Fault injection: panic while analyzing any module whose name
    /// contains this fragment (tests of the containment boundary).
    panic_on: Option<String>,
}

/// What one worker produced for one task, parked until its turn to emit.
enum TaskResult {
    Analyzed {
        reports: Vec<BugReport>,
        functions_skipped: usize,
    },
    Skipped {
        reports: Vec<BugReport>,
        functions_skipped: usize,
    },
    Failed {
        error: String,
    },
}

impl<'s> ScanPipeline<'s> {
    /// A pipeline over `session` with `jobs` file-level workers (clamped to
    /// at least 1).
    pub fn new(session: &'s AnalysisSession, jobs: usize) -> ScanPipeline<'s> {
        ScanPipeline {
            session,
            scan_store: None,
            jobs: jobs.max(1),
            module_granular: false,
            panic_on: None,
        }
    }

    /// Attach a persisted report cache: function replay-key hits replay
    /// their recorded reports instead of re-analyzing, misses are recorded.
    pub fn with_scan_store(mut self, store: Arc<ScanStore>) -> ScanPipeline<'s> {
        self.scan_store = Some(store);
        self
    }

    /// Degrade replay to module granularity: a module replays only when
    /// *every* one of its functions hits; otherwise the whole module
    /// re-analyzes, like the pre-v4 fingerprint cache did. This exists as
    /// the bench/test baseline per-function replay is measured against —
    /// production scans have no reason to enable it.
    pub fn with_module_granularity(mut self) -> ScanPipeline<'s> {
        self.module_granular = true;
        self
    }

    /// Arm fault injection for this pipeline: analyzing any module whose
    /// name contains `fragment` panics on purpose, exercising the
    /// containment boundary. Scoped to this pipeline (unlike the
    /// process-wide [`faultinject::PANIC_ENV`](crate::faultinject::PANIC_ENV)
    /// variable), so concurrent tests never interfere.
    pub fn with_injected_panic(mut self, fragment: impl Into<String>) -> ScanPipeline<'s> {
        self.panic_on = Some(fragment.into());
        self
    }

    /// Run the pipeline over `tasks`, handing every event to `sink` in task
    /// order. `sink` must be `Send` because out-of-order workers take turns
    /// flushing the reorder buffer; it is never called concurrently.
    pub fn run(&self, tasks: &[ScanTask], sink: &mut (dyn FnMut(ScanEvent) + Send)) -> ScanOutcome {
        let outcome = Mutex::new(ScanOutcome {
            files: tasks.len(),
            ..ScanOutcome::default()
        });
        let emitter = Mutex::new(Emitter {
            next: 0,
            pending: HashMap::new(),
            sink,
        });
        let next_task = AtomicUsize::new(0);
        let workers = self.jobs.min(tasks.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let result = self.run_task(task);
                    {
                        let mut outcome = outcome
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        match &result {
                            TaskResult::Failed { .. } => outcome.failures += 1,
                            TaskResult::Skipped {
                                functions_skipped, ..
                            } => {
                                outcome.modules_skipped += 1;
                                outcome.functions_skipped += functions_skipped;
                            }
                            TaskResult::Analyzed {
                                functions_skipped, ..
                            } => outcome.functions_skipped += functions_skipped,
                        }
                    }
                    emitter
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .emit(i, result, tasks);
                });
            }
        });
        let outcome = outcome.into_inner().unwrap();
        debug_assert_eq!(emitter.into_inner().unwrap().next, tasks.len());
        outcome
    }

    /// Process one task end to end: load, compile, key, replay or
    /// analyze. Everything past the source read runs under
    /// `catch_unwind`, so a panic anywhere in the stack degrades the task
    /// to a `Failed` result instead of aborting the scan.
    fn run_task(&self, task: &ScanTask) -> TaskResult {
        let read;
        let source: &str = match &task.source {
            ScanSource::Inline(source) => source,
            ScanSource::Path(path) => match std::fs::read_to_string(path) {
                Ok(text) => {
                    read = text;
                    &read
                }
                Err(e) => {
                    return TaskResult::Failed {
                        error: format!("cannot read: {e}"),
                    }
                }
            },
        };
        // AssertUnwindSafe: the shared state the closure touches (session
        // aggregate, caches, scan store) guards every structure behind
        // mutexes whose contents stay structurally valid at any unwind
        // point, and their locks recover from poisoning.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.analyze_task(source, &task.name)
        })) {
            Ok(result) => result,
            Err(payload) => TaskResult::Failed {
                error: format!("panic: {}", panic_message(payload.as_ref())),
            },
        }
    }

    /// The panic-containable body of one task: compile, key every
    /// function, replay hits, analyze misses, record clean results,
    /// re-assemble and filter the module's report stream.
    fn analyze_task(&self, source: &str, name: &str) -> TaskResult {
        if let Some(fragment) = &self.panic_on {
            if name.contains(fragment.as_str()) {
                panic!("injected fault: panic while analyzing {name}");
            }
        }
        crate::faultinject::maybe_injected_panic(name);
        let mut module = match stack_minic::compile(source, name) {
            Ok(module) => module,
            Err(e) => {
                return TaskResult::Failed {
                    error: e.to_string(),
                }
            }
        };
        stack_opt::optimize_for_analysis(&mut module);

        let Some(store) = &self.scan_store else {
            // No store: the session's streaming driver does everything
            // (including merging its stats into the aggregate).
            let mut reports = Vec::new();
            self.session
                .check_module_streaming(&module, &mut |r| reports.push(r));
            return TaskResult::Analyzed {
                reports,
                functions_skipped: 0,
            };
        };

        let start = Instant::now();
        let config = self.session.config();
        let keys: Vec<u128> = module
            .functions()
            .iter()
            .map(|f| function_replay_key(f, config))
            .collect();
        let mut replayed: Vec<Option<FunctionRecord>> =
            keys.iter().map(|&key| store.lookup(key)).collect();
        if self.module_granular && replayed.iter().any(Option::is_none) {
            // Baseline mode: one miss re-analyzes the whole module.
            replayed = vec![None; keys.len()];
        }
        let skipped = replayed.iter().filter(|r| r.is_some()).count();
        let select: Vec<bool> = replayed.iter().map(Option::is_none).collect();

        let (checks, mut stats) = if select.contains(&true) {
            self.session.check_functions_selected(&module, &select)
        } else {
            (Vec::new(), CheckStats::default())
        };
        // A function with budget-exhausted (degraded) queries is never
        // recorded: its report set reflects the budget, not the function,
        // and a later run with a higher budget must re-analyze it. Its
        // healthy siblings still record and will replay next run.
        for check in &checks {
            if check.timeouts == 0 {
                store.insert(
                    keys[check.index],
                    FunctionRecord::normalized(&check.reports, name),
                );
            }
        }

        // Re-assemble the module's raw report stream in function order —
        // replays path-rewritten to this module's name — and apply the
        // module-level dedup/suppression filter exactly as a cold
        // analysis would.
        let mut fresh: HashMap<usize, Vec<BugReport>> =
            checks.into_iter().map(|c| (c.index, c.reports)).collect();
        let raw: Vec<BugReport> = replayed
            .iter()
            .enumerate()
            .flat_map(|(i, slot)| match slot {
                Some(record) => record.replay(name),
                None => fresh.remove(&i).unwrap_or_default(),
            })
            .collect();
        let mut by_algorithm = HashMap::new();
        let mut reports = Vec::new();
        self.session
            .filter_module_reports(raw, &mut by_algorithm, &mut |r| reports.push(r));

        let fully_skipped = skipped == keys.len() && !keys.is_empty();
        stats.modules = 1;
        stats.modules_skipped = usize::from(fully_skipped);
        stats.functions += skipped;
        stats.functions_skipped = skipped;
        stats.by_algorithm = by_algorithm;
        stats.elapsed = start.elapsed();
        self.session.absorb_stats(&stats);

        if fully_skipped {
            TaskResult::Skipped {
                reports,
                functions_skipped: skipped,
            }
        } else {
            TaskResult::Analyzed {
                reports,
                functions_skipped: skipped,
            }
        }
    }
}

/// Render a caught panic payload: `panic!` carries a `String` or `&str`
/// in practice; anything else gets a stable placeholder (payload types
/// must not leak nondeterminism into the event stream).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<opaque panic payload>")
}

/// The reorder buffer: workers park finished results under their task index
/// and whoever holds the lock flushes the consecutive ready prefix, so the
/// sink sees events in task order no matter which worker finished first.
struct Emitter<'a> {
    next: usize,
    pending: HashMap<usize, TaskResult>,
    sink: &'a mut (dyn FnMut(ScanEvent) + Send),
}

impl Emitter<'_> {
    fn emit(&mut self, index: usize, result: TaskResult, tasks: &[ScanTask]) {
        self.pending.insert(index, result);
        while let Some(result) = self.pending.remove(&self.next) {
            let name = &tasks[self.next].name;
            match result {
                TaskResult::Analyzed { reports, .. } | TaskResult::Skipped { reports, .. } => {
                    for report in reports {
                        (self.sink)(ScanEvent::Report(report));
                    }
                }
                TaskResult::Failed { error } => (self.sink)(ScanEvent::Failure {
                    name: name.clone(),
                    error,
                }),
            }
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerConfig;
    use std::sync::atomic::AtomicU64;

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "stack-scan-pipeline-{tag}-{}-{}.ss",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// A small mixed task list: unstable, stable, and broken modules.
    /// Every compiling module has 2 functions.
    fn tasks() -> Vec<ScanTask> {
        let mut out = Vec::new();
        for i in 0..6 {
            out.push(ScanTask {
                name: format!("mod{i}.c"),
                source: ScanSource::Inline(format!(
                    "int f{i}(int x) {{ if (x + {} < x) return 1; return 0; }}\n\
                     int g{i}(int a, int b) {{ if (b == 0) return -1; return a / b; }}\n",
                    i + 1
                )),
            });
        }
        out.push(ScanTask {
            name: "broken.c".to_string(),
            source: ScanSource::Inline("int (((".to_string()),
        });
        out
    }

    fn events_to_strings(
        session: &AnalysisSession,
        jobs: usize,
        tasks: &[ScanTask],
    ) -> Vec<String> {
        let mut events = Vec::new();
        ScanPipeline::new(session, jobs).run(tasks, &mut |e| events.push(format!("{e:?}")));
        events
    }

    #[test]
    fn parallel_jobs_emit_the_sequential_event_stream() {
        let tasks = tasks();
        let sequential = events_to_strings(&AnalysisSession::default(), 1, &tasks);
        assert!(sequential.iter().any(|e| e.starts_with("Report")));
        assert!(sequential.iter().any(|e| e.starts_with("Failure")));
        for jobs in [2, 4, 8] {
            let parallel = events_to_strings(&AnalysisSession::default(), jobs, &tasks);
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn rescan_with_scan_store_skips_every_module_and_replays_reports() {
        let path = temp_path("rescan");
        let tasks = tasks();
        let config = CheckerConfig::default();

        let store = Arc::new(ScanStore::open(&path).unwrap());
        let cold_session = AnalysisSession::new(config);
        let mut cold = Vec::new();
        let outcome = ScanPipeline::new(&cold_session, 2)
            .with_scan_store(store.clone())
            .run(&tasks, &mut |e| cold.push(format!("{e:?}")));
        assert_eq!(outcome.modules_skipped, 0);
        assert_eq!(outcome.functions_skipped, 0);
        assert_eq!(outcome.failures, 1);
        assert!(store.save().unwrap() > 0);

        let rescan_store = Arc::new(ScanStore::open(&path).unwrap());
        let warm_session = AnalysisSession::new(config);
        let mut warm = Vec::new();
        let outcome = ScanPipeline::new(&warm_session, 2)
            .with_scan_store(rescan_store)
            .run(&tasks, &mut |e| warm.push(format!("{e:?}")));
        assert_eq!(cold, warm, "replayed stream must be byte-identical");
        // Every compiling module is skipped; the broken file still fails.
        assert_eq!(outcome.modules_skipped, tasks.len() - 1);
        assert_eq!(outcome.functions_skipped, 2 * (tasks.len() - 1));
        assert_eq!(outcome.failures, 1);
        let stats = warm_session.stats();
        assert_eq!(stats.modules_skipped, tasks.len() - 1);
        assert_eq!(stats.functions_skipped, 2 * (tasks.len() - 1));
        assert_eq!(
            stats.queries, 0,
            "a full-skip re-scan never touches the solver"
        );
        assert_eq!(stats.functions, 2 * (tasks.len() - 1));
        assert!(stats.by_algorithm.values().sum::<usize>() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn changed_modules_miss_and_reanalyze() {
        let path = temp_path("changed");
        let config = CheckerConfig::default();
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let before = vec![ScanTask {
            name: "m.c".to_string(),
            source: ScanSource::Inline(
                "int f(int x) { if (x + 1 < x) return 1; return 0; }\n".to_string(),
            ),
        }];
        let session = AnalysisSession::new(config);
        ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&before, &mut |_| {});
        store.save().unwrap();

        // A semantic edit (changed constant) must miss; a cosmetic one hits.
        let edited = |src: &str| {
            vec![ScanTask {
                name: "m.c".to_string(),
                source: ScanSource::Inline(src.to_string()),
            }]
        };
        let store2 = Arc::new(ScanStore::open(&path).unwrap());
        let session2 = AnalysisSession::new(config);
        let outcome = ScanPipeline::new(&session2, 1)
            .with_scan_store(store2.clone())
            .run(
                &edited("int f(int x) { if (x + 2 < x) return 1; return 0; }\n"),
                &mut |_| {},
            );
        assert_eq!(outcome.modules_skipped, 0);
        assert_eq!(outcome.functions_skipped, 0);
        let outcome = ScanPipeline::new(&session2, 1).with_scan_store(store2).run(
            &edited("int f(int x) {  /* note */ if (x + 1 < x) return 1; return 0; }\n"),
            &mut |_| {},
        );
        assert_eq!(outcome.modules_skipped, 1);
        assert_eq!(outcome.functions_skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn edited_function_reanalyzes_while_siblings_replay() {
        let path = temp_path("partial");
        let config = CheckerConfig::default();
        let src = |k: u32| {
            format!(
                "int f(int x) {{ if (x + {k} < x) return 1; return 0; }}\n\
                 int g(int a, int b) {{ if (b == 0) return -1; return a / b; }}\n\
                 int h(int x) {{ return x; }}\n"
            )
        };
        let task = |source: String| {
            vec![ScanTask {
                name: "m.c".to_string(),
                source: ScanSource::Inline(source),
            }]
        };
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::new(config);
        let mut cold = Vec::new();
        ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&task(src(1)), &mut |e| cold.push(format!("{e:?}")));
        store.save().unwrap();

        // Edit only f: g and h replay, f re-analyzes; the module is NOT
        // counted skipped, and the stream matches a cold scan of the
        // edited source.
        let cold_session = AnalysisSession::new(config);
        let mut reference = Vec::new();
        ScanPipeline::new(&cold_session, 1)
            .run(&task(src(2)), &mut |e| reference.push(format!("{e:?}")));
        let store2 = Arc::new(ScanStore::open(&path).unwrap());
        let warm_session = AnalysisSession::new(config);
        let mut warm = Vec::new();
        let outcome = ScanPipeline::new(&warm_session, 1)
            .with_scan_store(store2.clone())
            .run(&task(src(2)), &mut |e| warm.push(format!("{e:?}")));
        assert_eq!(reference, warm);
        assert_eq!(outcome.modules_skipped, 0);
        assert_eq!(outcome.functions_skipped, 2, "g and h replayed");
        let stats = warm_session.stats();
        assert_eq!(stats.functions, 3);
        assert_eq!(stats.functions_skipped, 2);
        assert!(
            stats.queries > 0 && stats.queries < cold_session.stats().queries,
            "only the edited function touched the solver: {} vs cold {}",
            stats.queries,
            cold_session.stats().queries
        );
        // The edited f was recorded: a further rescan is a full skip.
        store2.save().unwrap();
        let store3 = Arc::new(ScanStore::open(&path).unwrap());
        let session3 = AnalysisSession::new(config);
        let outcome = ScanPipeline::new(&session3, 1)
            .with_scan_store(store3)
            .run(&task(src(2)), &mut |_| {});
        assert_eq!(outcome.modules_skipped, 1);
        assert_eq!(outcome.functions_skipped, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn module_granularity_discards_partial_hits() {
        let path = temp_path("granular");
        let config = CheckerConfig::default();
        let src = |k: u32| {
            format!(
                "int f(int x) {{ if (x + {k} < x) return 1; return 0; }}\n\
                 int g(int a, int b) {{ if (b == 0) return -1; return a / b; }}\n"
            )
        };
        let task = |source: String| {
            vec![ScanTask {
                name: "m.c".to_string(),
                source: ScanSource::Inline(source),
            }]
        };
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::new(config);
        ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&task(src(1)), &mut |_| {});
        store.save().unwrap();

        // One edited function: module granularity re-analyzes everything.
        let store2 = Arc::new(ScanStore::open(&path).unwrap());
        let session2 = AnalysisSession::new(config);
        let outcome = ScanPipeline::new(&session2, 1)
            .with_scan_store(store2.clone())
            .with_module_granularity()
            .run(&task(src(2)), &mut |_| {});
        assert_eq!(outcome.functions_skipped, 0);
        assert_eq!(session2.stats().functions, 2);
        // An unchanged module still fully replays in this mode.
        let outcome = ScanPipeline::new(&session2, 1)
            .with_scan_store(store2)
            .with_module_granularity()
            .run(&task(src(1)), &mut |_| {});
        assert_eq!(outcome.modules_skipped, 1);
        assert_eq!(outcome.functions_skipped, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_files_share_one_analysis() {
        let path = temp_path("dedup");
        let config = CheckerConfig::default();
        let src = "int f(int x) { if (x + 7 < x) return 1; return 0; }\n";
        let single = vec![ScanTask {
            name: "a/vendored.c".to_string(),
            source: ScanSource::Inline(src.to_string()),
        }];
        let cold_session = AnalysisSession::new(config);
        ScanPipeline::new(&cold_session, 1).run(&single, &mut |_| {});
        let one_file_queries = cold_session.stats().queries;
        assert!(one_file_queries > 0);

        // Two copies under different paths, cold store, jobs 1: the second
        // copy replays the first's record — path-rewritten.
        let both = vec![
            single[0].clone(),
            ScanTask {
                name: "b/deep/copy.c".to_string(),
                source: ScanSource::Inline(src.to_string()),
            },
        ];
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::new(config);
        let mut events = Vec::new();
        let outcome = ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&both, &mut |e| events.push(e));
        assert_eq!(
            session.stats().queries,
            one_file_queries,
            "the duplicate must not issue new queries"
        );
        assert_eq!(outcome.functions_skipped, 1);
        assert_eq!(outcome.modules_skipped, 1);
        assert_eq!(store.stats().entries, 1, "one record serves both paths");
        // Each copy's reports carry its own path.
        let files: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                ScanEvent::Report(r) => Some(r.file.as_str()),
                ScanEvent::Failure { .. } => None,
            })
            .collect();
        assert!(files.contains(&"a/vendored.c"), "{files:?}");
        assert!(files.contains(&"b/deep/copy.c"), "{files:?}");
        // The store was never saved to disk in this test; nothing to clean.
        assert!(!path.exists());
    }

    #[test]
    fn budget_degraded_function_is_not_recorded_but_siblings_are() {
        let path = temp_path("budget");
        // f is query-hungry (several checks), h is trivial; a tiny budget
        // degrades f but leaves h clean.
        let src = "int f(int x, int y) { if (x + 1 < x) return 1; if (y + 2 < y) return 2; \
                   if (x + 3 < x) return 3; return x / y; }\n\
                   int h(int x) { return x; }\n";
        let tasks = vec![ScanTask {
            name: "m.c".to_string(),
            source: ScanSource::Inline(src.to_string()),
        }];
        let config = CheckerConfig {
            query_budget: 1,
            ..CheckerConfig::default()
        };
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::new(config);
        ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&tasks, &mut |_| {});
        assert!(session.stats().timeouts > 0, "budget must actually bite");
        assert_eq!(
            store.stats().entries,
            1,
            "only the clean sibling is recorded"
        );
        store.save().unwrap();

        // Rescan at the same budget: h replays, f re-analyzes (and again
        // fails to record).
        let store2 = Arc::new(ScanStore::open(&path).unwrap());
        let session2 = AnalysisSession::new(config);
        let outcome = ScanPipeline::new(&session2, 1)
            .with_scan_store(store2.clone())
            .run(&tasks, &mut |_| {});
        assert_eq!(outcome.functions_skipped, 1);
        assert_eq!(outcome.modules_skipped, 0);
        assert!(session2.stats().queries > 0);
        assert_eq!(store2.stats().entries, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_panic_degrades_to_a_failure_event_and_is_never_recorded() {
        let path = temp_path("panic");
        let tasks = tasks();
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::default();
        let mut events = Vec::new();
        let outcome = ScanPipeline::new(&session, 2)
            .with_scan_store(store.clone())
            .with_injected_panic("mod3")
            .run(&tasks, &mut |e| events.push(format!("{e:?}")));
        // The parse failure plus the injected panic; everything else scans.
        assert_eq!(outcome.failures, 2);
        assert!(
            events
                .iter()
                .any(|e| e.contains("injected fault: panic while analyzing mod3.c")),
            "{events:?}"
        );
        // The panicking module's functions are never cached: only the
        // clean compiles' are (2 functions per compiling module).
        assert_eq!(store.stats().entries, 2 * (tasks.len() as u64 - 2));
        store.save().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panicking_module_emits_the_same_stream_at_every_jobs_width() {
        let tasks = tasks();
        let stream = |jobs: usize| {
            let session = AnalysisSession::default();
            let mut events = Vec::new();
            ScanPipeline::new(&session, jobs)
                .with_injected_panic("mod2")
                .run(&tasks, &mut |e| events.push(format!("{e:?}")));
            events
        };
        let sequential = stream(1);
        assert!(sequential
            .iter()
            .any(|e| e.contains("panic: injected fault")));
        for jobs in [2, 4] {
            assert_eq!(sequential, stream(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn unreadable_path_fails_only_that_task() {
        let tasks = vec![
            ScanTask {
                name: "missing.mc".to_string(),
                source: ScanSource::Path(PathBuf::from("/nonexistent/missing.mc")),
            },
            ScanTask {
                name: "ok.c".to_string(),
                source: ScanSource::Inline("int f(int x) { return x; }\n".to_string()),
            },
        ];
        let session = AnalysisSession::default();
        let mut events = Vec::new();
        let outcome = ScanPipeline::new(&session, 2).run(&tasks, &mut |e| events.push(e));
        assert_eq!(outcome.failures, 1);
        assert_eq!(outcome.files, 2);
        assert!(matches!(
            &events[0],
            ScanEvent::Failure { name, .. } if name == "missing.mc"
        ));
    }
}
