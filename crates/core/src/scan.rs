//! The file-parallel scan pipeline: the archive-scale driver above
//! [`AnalysisSession`].
//!
//! An archive scan has two levels of available parallelism: *within* a
//! module (the per-function worker pool of
//! [`AnalysisSession::check_module_streaming`]) and *across* modules. The
//! session exploits the first; [`ScanPipeline`] adds the second — `jobs`
//! scoped worker threads draw file indices from a shared atomic counter
//! (the same dynamic self-scheduling the per-function driver uses), so a
//! worker that drew cheap files steals the remaining work of slower ones.
//! Both levels compose: each file-level worker drives the shared session,
//! whose per-module thread knob still applies (the CLI defaults it to 1
//! when `--jobs` > 1 so the two levels don't oversubscribe).
//!
//! **Determinism.** Workers finish out of order, but results are emitted in
//! task order through a small reorder buffer: a finishing worker parks its
//! result and flushes every consecutive ready result from the head. The
//! event stream — reports, failures — is therefore byte-identical to a
//! sequential scan's regardless of `jobs` or scheduling, and the buffer
//! holds only the out-of-order window, preserving the scan's
//! bounded-memory property.
//!
//! **Incremental re-scan.** With a [`ScanStore`] attached, every compiled
//! module is fingerprinted
//! ([`module_fingerprint`]) before
//! any solver work: a hit replays the stored reports without touching the
//! solver and counts the module as skipped
//! ([`CheckStats::modules_skipped`]); a miss analyzes normally and records
//! the result for the next run. Replayed output is byte-identical to
//! re-analysis by construction — the fingerprint guarantees the checker
//! would have seen an identical module under identical semantics.
//!
//! **Panic containment.** Each task's compile-and-analyze body runs under
//! `catch_unwind`: a panic anywhere in the front end, the optimizer, or
//! the checker degrades that one module to a
//! [`ScanEvent::Failure`] carrying the panic payload — the scan, the
//! other workers, and the exit-code semantics continue as if the module
//! had failed to compile. A panicking module is never recorded in the
//! scan store (the insert is unreachable past the panic), and never
//! persisted as a query answer (the unwound query never returned one).
//! Because failures are emitted through the same reorder buffer as
//! reports, a panicking module produces the identical event stream at
//! every `jobs` width.

use crate::checker::CheckStats;
use crate::fingerprint::module_fingerprint;
use crate::report::BugReport;
use crate::scanstore::{ModuleRecord, ScanStore};
use crate::session::AnalysisSession;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where one scan task's source comes from. Paths are read only when their
/// turn comes, so one unreadable file fails that task, not the scan — and a
/// scan never holds the whole archive's text in memory.
#[derive(Clone, Debug)]
pub enum ScanSource {
    /// Read from disk when the task is picked up.
    Path(PathBuf),
    /// Source generated in-process (synthetic archives).
    Inline(String),
}

/// One unit of scan work.
#[derive(Clone, Debug)]
pub struct ScanTask {
    /// The module name reports will carry (usually the source path).
    pub name: String,
    /// Where the source text comes from.
    pub source: ScanSource,
}

/// One event of the (deterministically ordered) scan output stream.
#[derive(Debug)]
pub enum ScanEvent {
    /// A surviving report of the task named. Reports of task *i* are always
    /// emitted before any event of task *i + 1*.
    Report(BugReport),
    /// The named task failed to read or compile; the scan continues.
    Failure { name: String, error: String },
}

/// Aggregate outcome of one pipeline run (per-module statistics are merged
/// into the session as usual; this is the scan-level layer on top).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanOutcome {
    /// Tasks attempted.
    pub files: usize,
    /// Tasks that failed to read or compile.
    pub failures: usize,
    /// Modules replayed from the scan store without solver work.
    pub modules_skipped: usize,
}

/// The file-parallel scan driver. See the module docs for the pipeline
/// shape and the determinism contract.
pub struct ScanPipeline<'s> {
    session: &'s AnalysisSession,
    scan_store: Option<Arc<ScanStore>>,
    jobs: usize,
    /// Fault injection: panic while analyzing any module whose name
    /// contains this fragment (tests of the containment boundary).
    panic_on: Option<String>,
}

/// What one worker produced for one task, parked until its turn to emit.
enum TaskResult {
    Analyzed { reports: Vec<BugReport> },
    Skipped { reports: Vec<BugReport> },
    Failed { error: String },
}

impl<'s> ScanPipeline<'s> {
    /// A pipeline over `session` with `jobs` file-level workers (clamped to
    /// at least 1).
    pub fn new(session: &'s AnalysisSession, jobs: usize) -> ScanPipeline<'s> {
        ScanPipeline {
            session,
            scan_store: None,
            jobs: jobs.max(1),
            panic_on: None,
        }
    }

    /// Attach a persisted report cache: fingerprint hits replay their
    /// recorded reports instead of re-analyzing, misses are recorded.
    pub fn with_scan_store(mut self, store: Arc<ScanStore>) -> ScanPipeline<'s> {
        self.scan_store = Some(store);
        self
    }

    /// Arm fault injection for this pipeline: analyzing any module whose
    /// name contains `fragment` panics on purpose, exercising the
    /// containment boundary. Scoped to this pipeline (unlike the
    /// process-wide [`faultinject::PANIC_ENV`](crate::faultinject::PANIC_ENV)
    /// variable), so concurrent tests never interfere.
    pub fn with_injected_panic(mut self, fragment: impl Into<String>) -> ScanPipeline<'s> {
        self.panic_on = Some(fragment.into());
        self
    }

    /// Run the pipeline over `tasks`, handing every event to `sink` in task
    /// order. `sink` must be `Send` because out-of-order workers take turns
    /// flushing the reorder buffer; it is never called concurrently.
    pub fn run(&self, tasks: &[ScanTask], sink: &mut (dyn FnMut(ScanEvent) + Send)) -> ScanOutcome {
        let outcome = Mutex::new(ScanOutcome {
            files: tasks.len(),
            ..ScanOutcome::default()
        });
        let emitter = Mutex::new(Emitter {
            next: 0,
            pending: HashMap::new(),
            sink,
        });
        let next_task = AtomicUsize::new(0);
        let workers = self.jobs.min(tasks.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let result = self.run_task(task);
                    {
                        let mut outcome = outcome
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        match &result {
                            TaskResult::Failed { .. } => outcome.failures += 1,
                            TaskResult::Skipped { .. } => outcome.modules_skipped += 1,
                            TaskResult::Analyzed { .. } => {}
                        }
                    }
                    emitter
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .emit(i, result, tasks);
                });
            }
        });
        let outcome = outcome.into_inner().unwrap();
        debug_assert_eq!(emitter.into_inner().unwrap().next, tasks.len());
        outcome
    }

    /// Process one task end to end: load, compile, fingerprint, replay or
    /// analyze. Everything past the source read runs under
    /// `catch_unwind`, so a panic anywhere in the stack degrades the task
    /// to a `Failed` result instead of aborting the scan.
    fn run_task(&self, task: &ScanTask) -> TaskResult {
        let read;
        let source: &str = match &task.source {
            ScanSource::Inline(source) => source,
            ScanSource::Path(path) => match std::fs::read_to_string(path) {
                Ok(text) => {
                    read = text;
                    &read
                }
                Err(e) => {
                    return TaskResult::Failed {
                        error: format!("cannot read: {e}"),
                    }
                }
            },
        };
        // AssertUnwindSafe: the shared state the closure touches (session
        // aggregate, caches, scan store) guards every structure behind
        // mutexes whose contents stay structurally valid at any unwind
        // point, and their locks recover from poisoning.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.analyze_task(source, &task.name)
        })) {
            Ok(result) => result,
            Err(payload) => TaskResult::Failed {
                error: format!("panic: {}", panic_message(payload.as_ref())),
            },
        }
    }

    /// The panic-containable body of one task: compile, fingerprint,
    /// replay or analyze, record.
    fn analyze_task(&self, source: &str, name: &str) -> TaskResult {
        if let Some(fragment) = &self.panic_on {
            if name.contains(fragment.as_str()) {
                panic!("injected fault: panic while analyzing {name}");
            }
        }
        crate::faultinject::maybe_injected_panic(name);
        let mut module = match stack_minic::compile(source, name) {
            Ok(module) => module,
            Err(e) => {
                return TaskResult::Failed {
                    error: e.to_string(),
                }
            }
        };
        stack_opt::optimize_for_analysis(&mut module);

        let fp = self
            .scan_store
            .as_ref()
            .map(|_| module_fingerprint(&module, self.session.config()));
        if let (Some(store), Some(fp)) = (&self.scan_store, fp) {
            if let Some(record) = store.lookup(fp) {
                self.session.absorb_stats(&replayed_stats(&record));
                return TaskResult::Skipped {
                    reports: record.reports,
                };
            }
        }

        let mut reports = Vec::new();
        let stats = self
            .session
            .check_module_streaming(&module, &mut |r| reports.push(r));
        // A module with budget-exhausted (degraded) queries is never
        // recorded: its report set reflects the budget, not the module,
        // and a later run with a higher budget must re-analyze it.
        if stats.timeouts == 0 {
            if let (Some(store), Some(fp)) = (&self.scan_store, fp) {
                store.insert(
                    fp,
                    ModuleRecord {
                        functions: module.len(),
                        reports: reports.clone(),
                    },
                );
            }
        }
        TaskResult::Analyzed { reports }
    }
}

/// Render a caught panic payload: `panic!` carries a `String` or `&str`
/// in practice; anything else gets a stable placeholder (payload types
/// must not leak nondeterminism into the event stream).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<opaque panic payload>")
}

/// The statistics a replayed module contributes to the session aggregate:
/// its functions and reports count as covered, `modules_skipped` marks it,
/// and every solver-side counter is zero — no query was issued. Stored
/// reports are the post-suppression stream of the run that recorded them,
/// and the fingerprint bakes in `report_compiler_generated`, so every
/// replayed report counts — no re-filtering.
fn replayed_stats(record: &ModuleRecord) -> CheckStats {
    let start = Instant::now();
    let mut by_algorithm = HashMap::new();
    for report in &record.reports {
        *by_algorithm.entry(report.algorithm).or_insert(0) += 1;
    }
    CheckStats {
        modules: 1,
        modules_skipped: 1,
        functions: record.functions,
        by_algorithm,
        elapsed: start.elapsed(),
        ..CheckStats::default()
    }
}

/// The reorder buffer: workers park finished results under their task index
/// and whoever holds the lock flushes the consecutive ready prefix, so the
/// sink sees events in task order no matter which worker finished first.
struct Emitter<'a> {
    next: usize,
    pending: HashMap<usize, TaskResult>,
    sink: &'a mut (dyn FnMut(ScanEvent) + Send),
}

impl Emitter<'_> {
    fn emit(&mut self, index: usize, result: TaskResult, tasks: &[ScanTask]) {
        self.pending.insert(index, result);
        while let Some(result) = self.pending.remove(&self.next) {
            let name = &tasks[self.next].name;
            match result {
                TaskResult::Analyzed { reports } | TaskResult::Skipped { reports } => {
                    for report in reports {
                        (self.sink)(ScanEvent::Report(report));
                    }
                }
                TaskResult::Failed { error } => (self.sink)(ScanEvent::Failure {
                    name: name.clone(),
                    error,
                }),
            }
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerConfig;
    use std::sync::atomic::AtomicU64;

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "stack-scan-pipeline-{tag}-{}-{}.ss",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// A small mixed task list: unstable, stable, and broken modules.
    fn tasks() -> Vec<ScanTask> {
        let mut out = Vec::new();
        for i in 0..6 {
            out.push(ScanTask {
                name: format!("mod{i}.c"),
                source: ScanSource::Inline(format!(
                    "int f{i}(int x) {{ if (x + {} < x) return 1; return 0; }}\n\
                     int g{i}(int a, int b) {{ if (b == 0) return -1; return a / b; }}\n",
                    i + 1
                )),
            });
        }
        out.push(ScanTask {
            name: "broken.c".to_string(),
            source: ScanSource::Inline("int (((".to_string()),
        });
        out
    }

    fn events_to_strings(
        session: &AnalysisSession,
        jobs: usize,
        tasks: &[ScanTask],
    ) -> Vec<String> {
        let mut events = Vec::new();
        ScanPipeline::new(session, jobs).run(tasks, &mut |e| events.push(format!("{e:?}")));
        events
    }

    #[test]
    fn parallel_jobs_emit_the_sequential_event_stream() {
        let tasks = tasks();
        let sequential = events_to_strings(&AnalysisSession::default(), 1, &tasks);
        assert!(sequential.iter().any(|e| e.starts_with("Report")));
        assert!(sequential.iter().any(|e| e.starts_with("Failure")));
        for jobs in [2, 4, 8] {
            let parallel = events_to_strings(&AnalysisSession::default(), jobs, &tasks);
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn rescan_with_scan_store_skips_every_module_and_replays_reports() {
        let path = temp_path("rescan");
        let tasks = tasks();
        let config = CheckerConfig::default();

        let store = Arc::new(ScanStore::open(&path).unwrap());
        let cold_session = AnalysisSession::new(config);
        let mut cold = Vec::new();
        let outcome = ScanPipeline::new(&cold_session, 2)
            .with_scan_store(store.clone())
            .run(&tasks, &mut |e| cold.push(format!("{e:?}")));
        assert_eq!(outcome.modules_skipped, 0);
        assert_eq!(outcome.failures, 1);
        assert!(store.save().unwrap() > 0);

        let rescan_store = Arc::new(ScanStore::open(&path).unwrap());
        let warm_session = AnalysisSession::new(config);
        let mut warm = Vec::new();
        let outcome = ScanPipeline::new(&warm_session, 2)
            .with_scan_store(rescan_store)
            .run(&tasks, &mut |e| warm.push(format!("{e:?}")));
        assert_eq!(cold, warm, "replayed stream must be byte-identical");
        // Every compiling module is skipped; the broken file still fails.
        assert_eq!(outcome.modules_skipped, tasks.len() - 1);
        assert_eq!(outcome.failures, 1);
        let stats = warm_session.stats();
        assert_eq!(stats.modules_skipped, tasks.len() - 1);
        assert_eq!(
            stats.queries, 0,
            "a full-skip re-scan never touches the solver"
        );
        assert_eq!(stats.functions, 2 * (tasks.len() - 1));
        assert!(stats.by_algorithm.values().sum::<usize>() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn changed_modules_miss_and_reanalyze() {
        let path = temp_path("changed");
        let config = CheckerConfig::default();
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let before = vec![ScanTask {
            name: "m.c".to_string(),
            source: ScanSource::Inline(
                "int f(int x) { if (x + 1 < x) return 1; return 0; }\n".to_string(),
            ),
        }];
        let session = AnalysisSession::new(config);
        ScanPipeline::new(&session, 1)
            .with_scan_store(store.clone())
            .run(&before, &mut |_| {});
        store.save().unwrap();

        // A semantic edit (changed constant) must miss; a cosmetic one hits.
        let edited = |src: &str| {
            vec![ScanTask {
                name: "m.c".to_string(),
                source: ScanSource::Inline(src.to_string()),
            }]
        };
        let store2 = Arc::new(ScanStore::open(&path).unwrap());
        let session2 = AnalysisSession::new(config);
        let outcome = ScanPipeline::new(&session2, 1)
            .with_scan_store(store2.clone())
            .run(
                &edited("int f(int x) { if (x + 2 < x) return 1; return 0; }\n"),
                &mut |_| {},
            );
        assert_eq!(outcome.modules_skipped, 0);
        let outcome = ScanPipeline::new(&session2, 1).with_scan_store(store2).run(
            &edited("int f(int x) {  /* note */ if (x + 1 < x) return 1; return 0; }\n"),
            &mut |_| {},
        );
        assert_eq!(outcome.modules_skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_panic_degrades_to_a_failure_event_and_is_never_recorded() {
        let path = temp_path("panic");
        let tasks = tasks();
        let store = Arc::new(ScanStore::open(&path).unwrap());
        let session = AnalysisSession::default();
        let mut events = Vec::new();
        let outcome = ScanPipeline::new(&session, 2)
            .with_scan_store(store.clone())
            .with_injected_panic("mod3")
            .run(&tasks, &mut |e| events.push(format!("{e:?}")));
        // The parse failure plus the injected panic; everything else scans.
        assert_eq!(outcome.failures, 2);
        assert!(
            events
                .iter()
                .any(|e| e.contains("injected fault: panic while analyzing mod3.c")),
            "{events:?}"
        );
        // The panicking module is never cached: only the clean compiles are.
        assert_eq!(store.stats().entries, tasks.len() as u64 - 2);
        store.save().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panicking_module_emits_the_same_stream_at_every_jobs_width() {
        let tasks = tasks();
        let stream = |jobs: usize| {
            let session = AnalysisSession::default();
            let mut events = Vec::new();
            ScanPipeline::new(&session, jobs)
                .with_injected_panic("mod2")
                .run(&tasks, &mut |e| events.push(format!("{e:?}")));
            events
        };
        let sequential = stream(1);
        assert!(sequential
            .iter()
            .any(|e| e.contains("panic: injected fault")));
        for jobs in [2, 4] {
            assert_eq!(sequential, stream(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn unreadable_path_fails_only_that_task() {
        let tasks = vec![
            ScanTask {
                name: "missing.mc".to_string(),
                source: ScanSource::Path(PathBuf::from("/nonexistent/missing.mc")),
            },
            ScanTask {
                name: "ok.c".to_string(),
                source: ScanSource::Inline("int f(int x) { return x; }\n".to_string()),
            },
        ];
        let session = AnalysisSession::default();
        let mut events = Vec::new();
        let outcome = ScanPipeline::new(&session, 2).run(&tasks, &mut |e| events.push(e));
        assert_eq!(outcome.failures, 1);
        assert_eq!(outcome.files, 2);
        assert!(matches!(
            &events[0],
            ScanEvent::Failure { name, .. } if name == "missing.mc"
        ));
    }
}
