//! `stack-core` — the STACK checker.
//!
//! This crate is the reproduction of the primary contribution of
//! *Towards Optimization-Safe Systems: Analyzing the Impact of Undefined
//! Behavior* (Wang, Zeldovich, Kaashoek, Solar-Lezama; SOSP 2013): a static
//! checker that identifies **optimization-unstable code** — code a compiler
//! may silently discard because it is only relevant on executions that
//! trigger undefined behavior.
//!
//! The pipeline mirrors Figure 7 of the paper:
//!
//! 1. the mini-C frontend (`stack-minic`) lowers source to IR and the
//!    analysis pre-pass (`stack-opt`) promotes locals to SSA;
//! 2. [`ubcond`] computes the undefined-behavior conditions of Figure 3 for
//!    every instruction;
//! 3. [`checker`] runs the solver-based elimination and simplification
//!    algorithms of §3.2 against the `stack-solver` bit-vector solver, using
//!    the per-function approximations of §4.4 (dominator-scoped Δ and
//!    function-local reachability);
//! 4. [`report`] produces bug reports with the minimal UB set of Figure 8,
//!    suppressing macro/inline-generated code, and [`classify`] separates
//!    urgent optimization bugs from time bombs by re-running the surveyed
//!    compiler profiles of `stack-opt`.
//!
//! ```
//! use stack_core::Checker;
//!
//! let src = "int f(int *p) { int v = *p; if (!p) return 1; return v; }";
//! let result = Checker::new().check_source(src, "demo.c").unwrap();
//! assert!(!result.reports.is_empty());
//! ```

pub mod checker;
pub mod classify;
pub mod encoder;
pub mod faultinject;
pub mod fingerprint;
pub mod report;
pub mod scan;
pub mod scanstore;
pub mod session;
pub mod ubcond;

pub use checker::{CheckResult, CheckStats, Checker, CheckerConfig};
pub use classify::{classify_source, BugClass};
pub use encoder::FunctionEncoder;
pub use fingerprint::{
    content_key, function_digest, function_replay_key, module_fingerprint, origin_signature,
    shard_assignment, source_fingerprint, FunctionKey, ModuleFingerprint,
};
pub use report::{Algorithm, BugReport, UbSource};
pub use scan::{ScanEvent, ScanOutcome, ScanPipeline, ScanSource, ScanTask};
pub use scanstore::{FunctionRecord, ScanStore, ScanStoreStats};
pub use session::{AnalysisSession, FunctionCheck};
pub use ubcond::{collect_ub_conditions, UbCondition, UbKind};
