//! Canonical fingerprints: the "unchanged" test of incremental re-scan.
//!
//! The paper's flagship deployment (§6.5) re-scans the Debian archive as it
//! evolves, and between runs almost nothing changes. Skipping unchanged
//! work entirely needs a key for "unchanged" — and raw source bytes are
//! the wrong key: a comment, a reformatting, or a reordering of definitions
//! changes the bytes without changing anything the checker could observe.
//! Following the structural-operational-semantics tradition (a program's
//! meaning is its derived transition structure, not its spelling), the
//! keys hash the **verified, lowered IR** in its pool-independent canonical
//! print instead:
//!
//! * formatting, comments, and macro-expansion spelling vanish during
//!   lexing/lowering, so cosmetic edits keep the keys stable;
//! * any instruction change — including a changed constant, type, or UB
//!   condition carrier — changes the print and therefore the keys.
//!
//! Two granularities are derived from the same per-function digests:
//!
//! * [`module_fingerprint`] — the whole-module key (per-function digests
//!   sorted before mixing, so moving a function within a file keeps the
//!   fingerprint stable; the module *name* participates, so the same bytes
//!   under another path fingerprint differently).
//! * [`function_replay_key`] — the per-function key the
//!   [`ScanStore`](crate::ScanStore) uses, so an edited module replays the
//!   reports of its unchanged functions and only the edited functions hit
//!   the solver. Two deliberate asymmetries against the module key:
//!
//!   - the **path does not participate** — records are stored
//!     path-normalized and rewritten to the scanning file on replay, so
//!     identical vendored files across an archive share one analysis
//!     (cross-path dedup);
//!   - the **origin lines and kinds do participate** (via
//!     [`origin_signature`]: every instruction's source line and
//!     macro/inline provenance, but never its file) — replayed reports
//!     embed line numbers, so a function whose lines shifted must miss and
//!     re-analyze rather than replay stale locations. This closes, at
//!     function granularity, the line-number sharp edge the module
//!     fingerprint documents below.
//!
//! Two non-IR inputs are mixed into both keys, because cached *reports*
//! are only replayable when they would be re-derived identically:
//!
//! * [`ENCODING_REVISION`] — a new encoder/solver revision may decide
//!   queries differently, so every key of the old revision dies;
//! * the semantics-relevant [`CheckerConfig`] knobs (`query_budget`,
//!   `report_compiler_generated`) — they change which reports a function
//!   yields. Pure performance knobs (`threads`, `query_cache`,
//!   `incremental`) deliberately do **not** participate: they change how a
//!   result is computed, never what it is (see the determinism contract in
//!   `session.rs`).
//!
//! One sharp edge of the *module* fingerprint is documented rather than
//! fought: report line numbers come from instruction origins, which the
//! canonical print excludes, so a comment-only edit that shifts later lines
//! still keeps the module fingerprint — by design (reorder-invariance needs
//! origin-free digests). The scan store no longer replays on the module
//! fingerprint, so nothing stale can replay from it; the per-function key
//! hashes origin lines precisely so its replays are always byte-exact.

use crate::checker::CheckerConfig;
use stack_ir::{Function, Module, OriginKind};
use stack_solver::ENCODING_REVISION;

/// A canonical module fingerprint (128 bits).
pub type ModuleFingerprint = u128;

/// A per-function replay key (128 bits): what the scan store is keyed on.
pub type FunctionKey = u128;

/// Revision of the fingerprint *scheme itself* (what is hashed and how).
/// Bump when the canonicalization changes — e.g. new fields mixed in — so
/// persisted scan stores from older schemes self-invalidate. (2: the scan
/// store moved from module fingerprints to per-function replay keys.)
pub const FINGERPRINT_REVISION: u32 = 2;

/// Fingerprint a lowered (and analysis-optimized) module under a
/// configuration. See the module docs for exactly what participates.
pub fn module_fingerprint(module: &Module, config: &CheckerConfig) -> ModuleFingerprint {
    let mut digests: Vec<u128> = module.functions().iter().map(function_digest).collect();
    // Sorting makes the fingerprint invariant under function reordering:
    // functions are checked independently, so order affects only the order
    // reports stream out in.
    digests.sort_unstable();

    let mut h = hash_bytes(module.name.as_bytes());
    h = mix(h, u128::from(ENCODING_REVISION));
    h = mix(h, u128::from(FINGERPRINT_REVISION));
    h = mix(h, u128::from(config.query_budget));
    h = mix(h, u128::from(config.report_compiler_generated));
    h = mix(h, digests.len() as u128);
    for d in digests {
        h = mix(h, d);
    }
    h
}

/// The structural digest of one function: a stable hash of its canonical
/// print, which excludes origins entirely — the same body at any path, or
/// shifted to different lines, digests identically.
pub fn function_digest(func: &Function) -> u128 {
    hash_bytes(stack_ir::print_function(func).as_bytes())
}

/// The origin signature of a function: every instruction's source *line*
/// and macro/inline provenance, in print order — and never its *file*.
/// Reports derive their locations and their suppression flag from exactly
/// these fields, so two functions with equal [`function_digest`]s and equal
/// origin signatures yield byte-identical reports up to the file name.
pub fn origin_signature(func: &Function) -> u128 {
    let mut h = 0x0717_51e6_0002_u128;
    for block in func.block_ids() {
        for &inst in &func.block(block).insts {
            let origin = &func.inst(inst).origin;
            h = mix(h, u128::from(origin.loc.line));
            h = match &origin.kind {
                OriginKind::Programmer => mix(h, 1),
                OriginKind::MacroExpansion { macro_name } => {
                    mix(mix(h, 2), hash_bytes(macro_name.as_bytes()))
                }
                OriginKind::Inlined { callee } => mix(mix(h, 3), hash_bytes(callee.as_bytes())),
            };
        }
    }
    h
}

/// The scan store's per-function replay key: structural digest + origin
/// signature + the revision and config bits that decide what reports the
/// function yields. Path-independent by construction — see the module docs
/// for why that is safe (stored reports are path-normalized) and what it
/// buys (cross-path dedup).
pub fn function_replay_key(func: &Function, config: &CheckerConfig) -> FunctionKey {
    let mut h = function_digest(func);
    h = mix(h, origin_signature(func));
    h = mix(h, u128::from(ENCODING_REVISION));
    h = mix(h, u128::from(FINGERPRINT_REVISION));
    h = mix(h, u128::from(config.query_budget));
    h = mix(h, u128::from(config.report_compiler_generated));
    h
}

/// Fingerprint a mini-C source string: compile, run the analysis pre-pass,
/// fingerprint. This is the exact preparation the checker performs, so a
/// fingerprint hit guarantees the checker would see an identical module.
pub fn source_fingerprint(
    src: &str,
    file: &str,
    config: &CheckerConfig,
) -> Result<ModuleFingerprint, stack_minic::Diag> {
    let mut module = stack_minic::compile(src, file)?;
    stack_opt::optimize_for_analysis(&mut module);
    Ok(module_fingerprint(&module, config))
}

/// The distributed-scan partition key of one scan input: a stable hash of
/// the raw source **content** only. Deliberately path-independent and
/// config-independent — unlike [`module_fingerprint`], which must change
/// when a file moves, the shard key must stay put when the archive around
/// the file grows, shrinks, or renames siblings, so a re-sharded scan
/// reassigns as few modules as possible (the consistent-hashing rationale
/// applied to scan partitioning).
pub fn content_key(source: &[u8]) -> u128 {
    hash_bytes(source)
}

/// Which shard (0-based, `< shard_count`) owns the input with the given
/// [`content_key`]. Deterministic in the key alone — never the position in
/// the module list — so every worker of a fan-out computes the same
/// partition without coordination.
pub fn shard_assignment(key: u128, shard_count: usize) -> usize {
    assert!(shard_count > 0, "shard_count must be positive");
    // Fold both halves so the assignment uses all 128 bits.
    (((key >> 64) as u64 ^ key as u64) % shard_count as u64) as usize
}

/// 128-bit mixing step: a splitmix-style finalizer over the two halves,
/// cross-fed so both halves depend on all inputs. Stable across processes
/// and platforms (no `RandomState`), which is what lets fingerprints live in
/// a file between runs.
#[inline]
fn mix(acc: u128, value: u128) -> u128 {
    let mut lo = (acc as u64) ^ (value as u64);
    let mut hi = ((acc >> 64) as u64) ^ ((value >> 64) as u64);
    lo = lo.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(27);
    hi ^= lo.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hi = hi.rotate_left(31).wrapping_mul(0x94d0_49bb_1331_11eb);
    lo ^= hi >> 29;
    ((hi as u128) << 64) | lo as u128
}

/// Stable 128-bit hash of a byte string (16-byte blocks through [`mix`],
/// length-finalized so prefixes never collide with their extensions).
fn hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = 0x5ca4_f1e6_0001_u128;
    for chunk in bytes.chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u128::from_le_bytes(block));
    }
    mix(h, bytes.len() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(src: &str) -> ModuleFingerprint {
        source_fingerprint(src, "test.c", &CheckerConfig::default()).unwrap()
    }

    /// Per-function replay keys of a compiled source, in definition order.
    fn keys(src: &str, file: &str, config: &CheckerConfig) -> Vec<FunctionKey> {
        let mut module = stack_minic::compile(src, file).unwrap();
        stack_opt::optimize_for_analysis(&mut module);
        module
            .functions()
            .iter()
            .map(|f| function_replay_key(f, config))
            .collect()
    }

    const TWO_FUNCS: &str = "\
        int f(int x) { if (x + 7 < x) return 1; return 0; }\n\
        int g(int *p) { int v = *p; if (!p) return 1; return v; }\n";

    #[test]
    fn cosmetic_edits_keep_the_fingerprint() {
        let base = fp(TWO_FUNCS);
        // Extra whitespace between tokens.
        assert_eq!(
            base,
            fp("int f(int x) {   if (x + 7 < x)   return 1;  return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
    }

    #[test]
    fn function_reordering_keeps_the_fingerprint() {
        let reordered = "\
            int g(int *p) { int v = *p; if (!p) return 1; return v; }\n\
            int f(int x) { if (x + 7 < x) return 1; return 0; }\n";
        assert_eq!(fp(TWO_FUNCS), fp(reordered));
    }

    #[test]
    fn semantic_edits_change_the_fingerprint() {
        let base = fp(TWO_FUNCS);
        // A changed constant.
        assert_ne!(
            base,
            fp("int f(int x) { if (x + 8 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
        // A changed type (removes the signed-overflow UB condition).
        assert_ne!(
            base,
            fp(
                "int f(unsigned int x) { if (x + 7 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n"
            )
        );
        // A renamed function (reports embed the name).
        assert_ne!(
            base,
            fp("int f2(int x) { if (x + 7 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
        // An added function.
        assert_ne!(
            base,
            fp(&format!("{TWO_FUNCS}int h(int x) {{ return x; }}\n"))
        );
    }

    #[test]
    fn module_name_and_config_knobs_participate() {
        let base = fp(TWO_FUNCS);
        let cfg = CheckerConfig::default();
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "other.c", &cfg).unwrap(),
            "the module fingerprint identifies a (path, meaning) pair"
        );
        let budget = CheckerConfig {
            query_budget: cfg.query_budget + 1,
            ..cfg
        };
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &budget).unwrap()
        );
        let macros = CheckerConfig {
            report_compiler_generated: true,
            ..cfg
        };
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &macros).unwrap()
        );
        // Performance knobs never change results, so they never change keys.
        let perf = CheckerConfig {
            threads: Some(7),
            query_cache: false,
            incremental: false,
            ..cfg
        };
        assert_eq!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &perf).unwrap()
        );
    }

    #[test]
    fn function_keys_are_path_independent_but_config_dependent() {
        let cfg = CheckerConfig::default();
        assert_eq!(
            keys(TWO_FUNCS, "a/test.c", &cfg),
            keys(TWO_FUNCS, "b/nested/copy.c", &cfg),
            "the same bytes under any path must share one analysis"
        );
        let budget = CheckerConfig {
            query_budget: cfg.query_budget + 1,
            ..cfg
        };
        assert_ne!(
            keys(TWO_FUNCS, "test.c", &cfg),
            keys(TWO_FUNCS, "test.c", &budget)
        );
        let macros = CheckerConfig {
            report_compiler_generated: true,
            ..cfg
        };
        assert_ne!(
            keys(TWO_FUNCS, "test.c", &cfg),
            keys(TWO_FUNCS, "test.c", &macros)
        );
        let perf = CheckerConfig {
            threads: Some(7),
            query_cache: false,
            incremental: false,
            ..cfg
        };
        assert_eq!(
            keys(TWO_FUNCS, "test.c", &cfg),
            keys(TWO_FUNCS, "test.c", &perf)
        );
    }

    #[test]
    fn function_keys_track_lines_but_not_files() {
        let cfg = CheckerConfig::default();
        let base = keys(TWO_FUNCS, "test.c", &cfg);
        // A same-line cosmetic edit keeps every key.
        assert_eq!(
            base,
            keys(
                "int f(int x) {   if (x + 7 < x)   return 1;  return 0; }\n\
                 int g(int *p) { int v = *p; if (!p) return 1; return v; }\n",
                "test.c",
                &cfg
            )
        );
        // A line-shifting comment moves g to line 3: f's key survives, g's
        // dies — replayed reports embed line numbers, so a shifted function
        // must re-analyze.
        let shifted = keys(
            "int f(int x) { if (x + 7 < x) return 1; return 0; }\n\
             // pushed down\n\
             int g(int *p) { int v = *p; if (!p) return 1; return v; }\n",
            "test.c",
            &cfg,
        );
        assert_eq!(base[0], shifted[0]);
        assert_ne!(base[1], shifted[1]);
        // Editing one function leaves the sibling's key untouched.
        let edited = keys(
            "int f(int x) { if (x + 8 < x) return 1; return 0; }\n\
             int g(int *p) { int v = *p; if (!p) return 1; return v; }\n",
            "test.c",
            &cfg,
        );
        assert_ne!(base[0], edited[0]);
        assert_eq!(base[1], edited[1]);
    }

    #[test]
    fn origin_signature_separates_macro_provenance() {
        let cfg = CheckerConfig::default();
        // The same check spelled directly and via a macro lowers to the same
        // print but different provenance — and different suppression
        // behavior — so the keys must differ.
        let direct = keys(
            "int f(char *p) { long v = *p; if (p != 0) return 1; return 0; }\n",
            "test.c",
            &cfg,
        );
        let via_macro = keys(
            "#define IS_VALID(p) (p != 0)\n\
             int f(char *p) { long v = *p; if (IS_VALID(p)) return 1; return 0; }\n",
            "test.c",
            &cfg,
        );
        assert_ne!(direct, via_macro);
    }

    #[test]
    fn content_key_depends_on_bytes_alone() {
        let a = content_key(TWO_FUNCS.as_bytes());
        assert_eq!(a, content_key(TWO_FUNCS.as_bytes()), "stable");
        assert_ne!(a, content_key(b"int f(void) { return 0; }\n"));
        // Unlike module fingerprints, even a comment changes the key — the
        // shard key partitions *inputs*, not *meanings*, and must be
        // computable without compiling.
        assert_ne!(a, content_key(format!("// c\n{TWO_FUNCS}").as_bytes()));
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        let keys: Vec<u128> = (0u32..64)
            .map(|i| content_key(format!("int f{i}(void) {{ return {i}; }}\n").as_bytes()))
            .collect();
        for n in [1usize, 2, 4, 7] {
            let mut seen = vec![0usize; n];
            for &k in &keys {
                let s = shard_assignment(k, n);
                assert!(s < n);
                assert_eq!(s, shard_assignment(k, n), "deterministic");
                seen[s] += 1;
            }
            if n > 1 {
                assert!(
                    seen.iter().filter(|&&c| c > 0).count() > 1,
                    "64 keys must not all land in one of {n} shards: {seen:?}"
                );
            }
        }
    }
}
