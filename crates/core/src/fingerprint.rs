//! Canonical module fingerprints: the "unchanged" test of incremental
//! re-scan.
//!
//! The paper's flagship deployment (§6.5) re-scans the Debian archive as it
//! evolves, and between runs almost nothing changes. Skipping unchanged
//! modules entirely needs a key for "unchanged" — and raw source bytes are
//! the wrong key: a comment, a reformatting, or a reordering of definitions
//! changes the bytes without changing anything the checker could observe.
//! Following the structural-operational-semantics tradition (a program's
//! meaning is its derived transition structure, not its spelling), the
//! fingerprint hashes the **verified, lowered IR** in its pool-independent
//! canonical print instead:
//!
//! * formatting, comments, and macro-expansion spelling vanish during
//!   lexing/lowering, so cosmetic edits keep the fingerprint stable;
//! * function definition order is canonicalized away (per-function digests
//!   are sorted before mixing), so moving a function within a file keeps the
//!   fingerprint stable;
//! * any instruction change — including a changed constant, type, or UB
//!   condition carrier — changes the print and therefore the fingerprint.
//!
//! Two non-IR inputs are mixed in, because cached *reports* are only
//! replayable when they would be re-derived identically:
//!
//! * [`ENCODING_REVISION`] — a new encoder/solver revision may decide
//!   queries differently, so every fingerprint of the old revision dies;
//! * the semantics-relevant [`CheckerConfig`] knobs (`query_budget`,
//!   `report_compiler_generated`) — they change which reports a module
//!   yields. Pure performance knobs (`threads`, `query_cache`,
//!   `incremental`) deliberately do **not** participate: they change how a
//!   result is computed, never what it is (see the determinism contract in
//!   `session.rs`).
//!
//! The module *name* (its source path) participates too: reports embed the
//! file name, so a byte-identical file under a different path must miss and
//! re-analyze rather than replay reports naming the wrong file.
//!
//! One sharp edge is documented rather than fought: report line numbers come
//! from instruction origins, which the canonical print excludes. A
//! comment-only edit that shifts later lines therefore still *hits* — by
//! design — and replays reports carrying the pre-edit line numbers. The
//! churn generator (`stack_corpus::archive::churn_archive`) keeps its
//! cosmetic edits line-preserving so end-to-end byte-identity holds; real
//! deployments that care should treat replayed locations as "as of last
//! analysis".

use crate::checker::CheckerConfig;
use stack_ir::Module;
use stack_solver::ENCODING_REVISION;

/// A canonical module fingerprint (128 bits).
pub type ModuleFingerprint = u128;

/// Revision of the fingerprint *scheme itself* (what is hashed and how).
/// Bump when the canonicalization changes — e.g. new fields mixed in — so
/// persisted scan stores from older schemes self-invalidate.
pub const FINGERPRINT_REVISION: u32 = 1;

/// Fingerprint a lowered (and analysis-optimized) module under a
/// configuration. See the module docs for exactly what participates.
pub fn module_fingerprint(module: &Module, config: &CheckerConfig) -> ModuleFingerprint {
    let mut digests: Vec<u128> = module
        .functions()
        .iter()
        .map(|f| hash_bytes(stack_ir::print_function(f).as_bytes()))
        .collect();
    // Sorting makes the fingerprint invariant under function reordering:
    // functions are checked independently, so order affects only the order
    // reports stream out in, which the scan store preserves per module.
    digests.sort_unstable();

    let mut h = hash_bytes(module.name.as_bytes());
    h = mix(h, u128::from(ENCODING_REVISION));
    h = mix(h, u128::from(FINGERPRINT_REVISION));
    h = mix(h, u128::from(config.query_budget));
    h = mix(h, u128::from(config.report_compiler_generated));
    h = mix(h, digests.len() as u128);
    for d in digests {
        h = mix(h, d);
    }
    h
}

/// Fingerprint a mini-C source string: compile, run the analysis pre-pass,
/// fingerprint. This is the exact preparation the checker performs, so a
/// fingerprint hit guarantees the checker would see an identical module.
pub fn source_fingerprint(
    src: &str,
    file: &str,
    config: &CheckerConfig,
) -> Result<ModuleFingerprint, stack_minic::Diag> {
    let mut module = stack_minic::compile(src, file)?;
    stack_opt::optimize_for_analysis(&mut module);
    Ok(module_fingerprint(&module, config))
}

/// The distributed-scan partition key of one scan input: a stable hash of
/// the raw source **content** only. Deliberately path-independent and
/// config-independent — unlike [`module_fingerprint`], which must miss
/// when a file moves, the shard key must stay put when the archive around
/// the file grows, shrinks, or renames siblings, so a re-sharded scan
/// reassigns as few modules as possible (the consistent-hashing rationale
/// applied to scan partitioning).
pub fn content_key(source: &[u8]) -> u128 {
    hash_bytes(source)
}

/// Which shard (0-based, `< shard_count`) owns the input with the given
/// [`content_key`]. Deterministic in the key alone — never the position in
/// the module list — so every worker of a fan-out computes the same
/// partition without coordination.
pub fn shard_assignment(key: u128, shard_count: usize) -> usize {
    assert!(shard_count > 0, "shard_count must be positive");
    // Fold both halves so the assignment uses all 128 bits.
    (((key >> 64) as u64 ^ key as u64) % shard_count as u64) as usize
}

/// 128-bit mixing step: a splitmix-style finalizer over the two halves,
/// cross-fed so both halves depend on all inputs. Stable across processes
/// and platforms (no `RandomState`), which is what lets fingerprints live in
/// a file between runs.
#[inline]
fn mix(acc: u128, value: u128) -> u128 {
    let mut lo = (acc as u64) ^ (value as u64);
    let mut hi = ((acc >> 64) as u64) ^ ((value >> 64) as u64);
    lo = lo.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(27);
    hi ^= lo.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hi = hi.rotate_left(31).wrapping_mul(0x94d0_49bb_1331_11eb);
    lo ^= hi >> 29;
    ((hi as u128) << 64) | lo as u128
}

/// Stable 128-bit hash of a byte string (16-byte blocks through [`mix`],
/// length-finalized so prefixes never collide with their extensions).
fn hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = 0x5ca4_f1e6_0001_u128;
    for chunk in bytes.chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u128::from_le_bytes(block));
    }
    mix(h, bytes.len() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(src: &str) -> ModuleFingerprint {
        source_fingerprint(src, "test.c", &CheckerConfig::default()).unwrap()
    }

    const TWO_FUNCS: &str = "\
        int f(int x) { if (x + 7 < x) return 1; return 0; }\n\
        int g(int *p) { int v = *p; if (!p) return 1; return v; }\n";

    #[test]
    fn cosmetic_edits_keep_the_fingerprint() {
        let base = fp(TWO_FUNCS);
        // Extra whitespace between tokens.
        assert_eq!(
            base,
            fp("int f(int x) {   if (x + 7 < x)   return 1;  return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
        // Comments, including line-shifting ones: the print has no origins.
        assert_eq!(
            base,
            fp("// a comment\n\
                int f(int x) { if (x + 7 < x) return 1; return 0; }\n\
                /* block\n comment */\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
    }

    #[test]
    fn function_reordering_keeps_the_fingerprint() {
        let reordered = "\
            int g(int *p) { int v = *p; if (!p) return 1; return v; }\n\
            int f(int x) { if (x + 7 < x) return 1; return 0; }\n";
        assert_eq!(fp(TWO_FUNCS), fp(reordered));
    }

    #[test]
    fn semantic_edits_change_the_fingerprint() {
        let base = fp(TWO_FUNCS);
        // A changed constant.
        assert_ne!(
            base,
            fp("int f(int x) { if (x + 8 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
        // A changed type (removes the signed-overflow UB condition).
        assert_ne!(
            base,
            fp(
                "int f(unsigned int x) { if (x + 7 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n"
            )
        );
        // A renamed function (reports embed the name).
        assert_ne!(
            base,
            fp("int f2(int x) { if (x + 7 < x) return 1; return 0; }\n\
                int g(int *p) { int v = *p; if (!p) return 1; return v; }\n")
        );
        // An added function.
        assert_ne!(
            base,
            fp(&format!("{TWO_FUNCS}int h(int x) {{ return x; }}\n"))
        );
    }

    #[test]
    fn module_name_and_config_knobs_participate() {
        let base = fp(TWO_FUNCS);
        let cfg = CheckerConfig::default();
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "other.c", &cfg).unwrap(),
            "same bytes under a different path must not replay the other file's reports"
        );
        let budget = CheckerConfig {
            query_budget: cfg.query_budget + 1,
            ..cfg
        };
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &budget).unwrap()
        );
        let macros = CheckerConfig {
            report_compiler_generated: true,
            ..cfg
        };
        assert_ne!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &macros).unwrap()
        );
        // Performance knobs never change results, so they never change keys.
        let perf = CheckerConfig {
            threads: Some(7),
            query_cache: false,
            incremental: false,
            ..cfg
        };
        assert_eq!(
            base,
            source_fingerprint(TWO_FUNCS, "test.c", &perf).unwrap()
        );
    }

    #[test]
    fn content_key_depends_on_bytes_alone() {
        let a = content_key(TWO_FUNCS.as_bytes());
        assert_eq!(a, content_key(TWO_FUNCS.as_bytes()), "stable");
        assert_ne!(a, content_key(b"int f(void) { return 0; }\n"));
        // Unlike module fingerprints, even a comment changes the key — the
        // shard key partitions *inputs*, not *meanings*, and must be
        // computable without compiling.
        assert_ne!(a, content_key(format!("// c\n{TWO_FUNCS}").as_bytes()));
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        let keys: Vec<u128> = (0u32..64)
            .map(|i| content_key(format!("int f{i}(void) {{ return {i}; }}\n").as_bytes()))
            .collect();
        for n in [1usize, 2, 4, 7] {
            let mut seen = vec![0usize; n];
            for &k in &keys {
                let s = shard_assignment(k, n);
                assert!(s < n);
                assert_eq!(s, shard_assignment(k, n), "deterministic");
                seen[s] += 1;
            }
            if n > 1 {
                assert!(
                    seen.iter().filter(|&&c| c > 0).count() > 1,
                    "64 keys must not all land in one of {n} shards: {seen:?}"
                );
            }
        }
    }
}
