//! Encoding IR values, reachability conditions, and control flow into
//! bit-vector terms for the solver.
//!
//! This module implements the per-function approximations of §4.4: the
//! reachability condition `R'_e(x)` is computed from the start of the current
//! function using the branch structure (a gated-SSA style path condition in
//! the spirit of Tu and Padua \[48]), and phi nodes are encoded as nested
//! if-then-else over the conditions of their incoming edges. Loops are
//! handled acyclically: back edges contribute unconstrained values, which is
//! part of the approximation the paper accepts (§4.6).
//!
//! One encoder — and therefore one [`TermPool`] — covers a whole function.
//! Everything is memoized against that pool (operand values, reachability
//! conditions, condition negations), which is what lets the incremental
//! solving mode share a single persistent SAT instance across all of the
//! function's fragments: the checker registers each UB-condition negation
//! produced by [`FunctionEncoder::negation`] as an assumption literal once,
//! then drives every elimination, simplification, and Figure 8 minimization
//! query over the same encoding.

use stack_ir::{
    BinOp, BlockId, Cfg, CmpPred, DomTree, Function, InstId, InstKind, Operand, Terminator, Type,
};
use stack_solver::{TermId, TermPool};
use std::collections::HashMap;

/// Per-function encoder: maps IR operands to solver terms and blocks to
/// reachability conditions.
pub struct FunctionEncoder<'f> {
    pub func: &'f Function,
    pub pool: TermPool,
    pub cfg: Cfg,
    pub dom: DomTree,
    value_cache: HashMap<Operand, TermId>,
    reach_cache: HashMap<BlockId, TermId>,
    rpo_index: HashMap<BlockId, usize>,
    fresh: u32,
}

// The parallel checker constructs one encoder — and thus one private
// `TermPool` — per function inside each worker thread; nothing is shared
// mutably across workers. Keep the type `Send` so the driver stays free to
// move encoders into threads, and so a future field can't silently break it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FunctionEncoder<'static>>();
};

impl<'f> FunctionEncoder<'f> {
    /// Create an encoder for a function.
    pub fn new(func: &'f Function) -> FunctionEncoder<'f> {
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(func, &cfg);
        let rpo_index = cfg
            .reverse_post_order()
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i))
            .collect();
        FunctionEncoder {
            func,
            pool: TermPool::new(),
            cfg,
            dom,
            value_cache: HashMap::new(),
            reach_cache: HashMap::new(),
            rpo_index,
            fresh: 0,
        }
    }

    /// The negation of a boolean term.
    ///
    /// The checker calls this once per UB condition to build the Δ conjuncts
    /// (`¬c` for every condition `c`) that its queries assume. The pool
    /// hash-conses, so repeated negations of the same condition return the
    /// *same* `TermId`, which in turn maps to exactly one assumption literal
    /// on the incremental solver instance — this wrapper exists to name that
    /// contract, not to add caching on top of the interning.
    pub fn negation(&mut self, term: TermId) -> TermId {
        self.pool.not(term)
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}_{}", self.fresh)
    }

    /// Bit width used to model an operand in the solver.
    fn width_of(&self, op: Operand) -> u32 {
        match self.func.operand_type(op) {
            Type::Bool => 1,
            Type::Int(w) => w,
            Type::Ptr => 64,
            Type::Void => 1,
        }
    }

    /// Whether an operand is boolean-typed.
    fn is_bool(&self, op: Operand) -> bool {
        self.func.operand_type(op) == Type::Bool
    }

    /// Term for an operand, as a bit-vector (booleans become 1-bit vectors).
    pub fn bv_term(&mut self, op: Operand) -> TermId {
        let t = self.value_term(op);
        if self.pool.sort(t).is_bool() {
            self.pool.bool_to_bv1(t)
        } else {
            t
        }
    }

    /// Term for an operand, as a boolean (non-booleans become `!= 0`).
    pub fn bool_term(&mut self, op: Operand) -> TermId {
        let t = self.value_term(op);
        if self.pool.sort(t).is_bool() {
            t
        } else {
            self.pool.bv_to_bool(t)
        }
    }

    /// Core translation of an operand into a term (memoized).
    pub fn value_term(&mut self, op: Operand) -> TermId {
        if let Some(&t) = self.value_cache.get(&op) {
            return t;
        }
        let term = self.translate(op);
        self.value_cache.insert(op, term);
        term
    }

    fn translate(&mut self, op: Operand) -> TermId {
        match op {
            Operand::Const(c) => {
                if c.ty == Type::Bool {
                    self.pool.bool_const(c.bits != 0)
                } else {
                    let width = self.width_of(op).max(1);
                    self.pool.bv_const(width, c.bits)
                }
            }
            Operand::Param(i) => {
                let name = format!("arg{i}_{}", self.func.params[i as usize].name);
                if self.is_bool(op) {
                    self.pool.bool_var(&name)
                } else {
                    let width = self.width_of(op);
                    self.pool.bv_var(&name, width)
                }
            }
            Operand::Inst(id) => self.translate_inst(id),
        }
    }

    fn translate_inst(&mut self, id: InstId) -> TermId {
        let inst = self.func.inst(id).clone();
        let result_width = match inst.ty {
            Type::Bool => 1,
            Type::Int(w) => w,
            Type::Ptr => 64,
            Type::Void => 1,
        };
        match inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                let a = self.bv_term(lhs);
                let b = self.bv_term(rhs);
                match op {
                    BinOp::Add => self.pool.bv_add(a, b),
                    BinOp::Sub => self.pool.bv_sub(a, b),
                    BinOp::Mul => self.pool.bv_mul(a, b),
                    BinOp::SDiv => self.pool.bv_sdiv(a, b),
                    BinOp::UDiv => self.pool.bv_udiv(a, b),
                    BinOp::SRem => self.pool.bv_srem(a, b),
                    BinOp::URem => self.pool.bv_urem(a, b),
                    BinOp::And => self.pool.bv_and(a, b),
                    BinOp::Or => self.pool.bv_or(a, b),
                    BinOp::Xor => self.pool.bv_xor(a, b),
                    BinOp::Shl => self.pool.bv_shl(a, b),
                    BinOp::LShr => self.pool.bv_lshr(a, b),
                    BinOp::AShr => self.pool.bv_ashr(a, b),
                }
            }
            InstKind::Cmp { pred, lhs, rhs } => {
                let a = self.bv_term(lhs);
                let b = self.bv_term(rhs);
                match pred {
                    CmpPred::Eq => self.pool.eq(a, b),
                    CmpPred::Ne => self.pool.ne(a, b),
                    CmpPred::Ult => self.pool.bv_ult(a, b),
                    CmpPred::Ule => self.pool.bv_ule(a, b),
                    CmpPred::Ugt => self.pool.bv_ugt(a, b),
                    CmpPred::Uge => self.pool.bv_uge(a, b),
                    CmpPred::Slt => self.pool.bv_slt(a, b),
                    CmpPred::Sle => self.pool.bv_sle(a, b),
                    CmpPred::Sgt => self.pool.bv_sgt(a, b),
                    CmpPred::Sge => self.pool.bv_sge(a, b),
                }
            }
            InstKind::PtrAdd {
                ptr,
                offset,
                elem_size,
                ..
            } => {
                let p = self.bv_term(ptr);
                let off = self.scaled_offset(offset, elem_size);
                self.pool.bv_add(p, off)
            }
            InstKind::Load { .. } => {
                let name = self.fresh_name(&format!(
                    "load{}_{}",
                    id.0,
                    inst.name.clone().unwrap_or_default()
                ));
                if inst.ty == Type::Bool {
                    self.pool.bool_var(&name)
                } else {
                    self.pool.bv_var(&name, result_width)
                }
            }
            InstKind::Alloca { .. } => {
                let name = self.fresh_name(&format!("alloca{}", id.0));
                self.pool.bv_var(&name, 64)
            }
            InstKind::Call { callee, args, .. } => {
                // `abs` is modeled precisely so that the `abs(x) < 0` check of
                // §2.2 can be reasoned about; other calls are unknown values.
                if (callee == "abs" || callee == "labs" || callee == "llabs") && args.len() == 1 {
                    let x = self.bv_term(args[0]);
                    let width = self.pool.width(x);
                    let zero = self.pool.bv_const(width, 0);
                    let neg = self.pool.bv_neg(x);
                    let is_neg = self.pool.bv_slt(x, zero);
                    let abs = self.pool.ite(is_neg, neg, x);
                    // Result width may differ from the argument; adjust.
                    if width < result_width {
                        self.pool.sext(abs, result_width)
                    } else if width > result_width {
                        self.pool.trunc(abs, result_width)
                    } else {
                        abs
                    }
                } else {
                    let name = self.fresh_name(&format!("call{}_{}", id.0, callee));
                    if inst.ty == Type::Bool {
                        self.pool.bool_var(&name)
                    } else {
                        self.pool.bv_var(&name, result_width.max(1))
                    }
                }
            }
            InstKind::Select { cond, then, els } => {
                let c = self.bool_term(cond);
                if self.is_bool(then) {
                    let t = self.bool_term(then);
                    let e = self.bool_term(els);
                    self.pool.ite(c, t, e)
                } else {
                    let t = self.bv_term(then);
                    let e = self.bv_term(els);
                    self.pool.ite(c, t, e)
                }
            }
            InstKind::ZExt { value, to } => {
                let v = self.bv_term(value);
                self.pool.zext(v, to.bit_width())
            }
            InstKind::SExt { value, to } => {
                let v = self.bv_term(value);
                self.pool.sext(v, to.bit_width())
            }
            InstKind::Trunc { value, to } => {
                let v = self.bv_term(value);
                self.pool.trunc(v, to.bit_width())
            }
            InstKind::PtrToInt { value } | InstKind::IntToPtr { value } => {
                let v = self.bv_term(value);
                let w = self.pool.width(v);
                if w < 64 {
                    self.pool.zext(v, 64)
                } else {
                    v
                }
            }
            InstKind::Phi { ref incomings } => {
                let block = self.func.block_of(id).expect("phi must belong to a block");
                let my_rpo = self.rpo_index.get(&block).copied().unwrap_or(usize::MAX);
                // Start from an unconstrained value (covers back edges and
                // unreachable predecessors), then layer forward-edge values
                // gated by their edge conditions.
                let base_name = self.fresh_name(&format!("phi{}", id.0));
                let is_bool = self.func.inst(id).ty == Type::Bool;
                let mut acc = if is_bool {
                    self.pool.bool_var(&base_name)
                } else {
                    self.pool.bv_var(&base_name, result_width)
                };
                for (pred, value) in incomings.clone() {
                    let pred_rpo = self.rpo_index.get(&pred).copied();
                    match pred_rpo {
                        Some(p) if p < my_rpo => {
                            let reach = self.reach_term(pred);
                            let edge = self.edge_cond(pred, block);
                            let active = self.pool.and(reach, edge);
                            let v = if is_bool {
                                self.bool_term(value)
                            } else {
                                self.bv_term(value)
                            };
                            acc = self.pool.ite(active, v, acc);
                        }
                        _ => {} // back edge or unreachable predecessor
                    }
                }
                acc
            }
            InstKind::Store { .. } | InstKind::BugOn { .. } => {
                // No value; should not be requested.
                self.pool.bool_const(true)
            }
        }
    }

    /// The byte offset term of a `ptradd`: the element index sign-extended to
    /// 64 bits and scaled by the element size.
    pub fn scaled_offset(&mut self, offset: Operand, elem_size: u64) -> TermId {
        let off = self.bv_term(offset);
        let w = self.pool.width(off);
        let off64 = if w < 64 { self.pool.sext(off, 64) } else { off };
        let size = self.pool.bv_const(64, elem_size);
        self.pool.bv_mul(off64, size)
    }

    /// The element-index term of a `ptradd` offset, sign-extended to 64 bits
    /// (used by the buffer-overflow condition).
    pub fn index_term(&mut self, offset: Operand) -> TermId {
        let off = self.bv_term(offset);
        let w = self.pool.width(off);
        if w < 64 {
            self.pool.sext(off, 64)
        } else {
            off
        }
    }

    /// Reachability condition of a block from the function entry, following
    /// forward edges only.
    pub fn reach_term(&mut self, block: BlockId) -> TermId {
        if let Some(&t) = self.reach_cache.get(&block) {
            return t;
        }
        let term = if block == self.func.entry() {
            self.pool.bool_const(true)
        } else if !self.cfg.is_reachable(block) {
            self.pool.bool_const(false)
        } else {
            let my_rpo = self.rpo_index[&block];
            let preds: Vec<BlockId> = self
                .cfg
                .preds(block)
                .iter()
                .copied()
                .filter(|p| self.rpo_index.get(p).map(|&i| i < my_rpo).unwrap_or(false))
                .collect();
            let mut disjuncts = Vec::new();
            for p in preds {
                let r = self.reach_term(p);
                let e = self.edge_cond(p, block);
                disjuncts.push(self.pool.and(r, e));
            }
            if disjuncts.is_empty() {
                // Only reachable through back edges: approximate as reachable.
                self.pool.bool_const(true)
            } else {
                self.pool.or_many(&disjuncts)
            }
        };
        self.reach_cache.insert(block, term);
        term
    }

    /// Condition under which control flows along the edge `from -> to`.
    pub fn edge_cond(&mut self, from: BlockId, to: BlockId) -> TermId {
        match self.func.block(from).terminator.clone() {
            Terminator::Br { .. } => self.pool.bool_const(true),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                if then_bb == else_bb {
                    self.pool.bool_const(true)
                } else if to == then_bb {
                    self.bool_term(cond)
                } else {
                    let c = self.bool_term(cond);
                    self.pool.not(c)
                }
            }
            Terminator::Ret { .. } | Terminator::Unreachable => self.pool.bool_const(false),
        }
    }

    /// Reachability condition of the instruction at `(block, index)` — the
    /// block's reachability (instructions within a block execute together in
    /// this IR, which has no intra-block exits).
    pub fn reach_of_inst(&mut self, block: BlockId, _index: usize) -> TermId {
        self.reach_term(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_opt::optimize_for_analysis;
    use stack_solver::BvSolver;

    fn encode(src: &str, fname: &str) -> (stack_ir::Module, String) {
        let mut m = stack_minic::compile(src, "t.c").unwrap();
        optimize_for_analysis(&mut m);
        (m, fname.to_string())
    }

    #[test]
    fn reachability_of_branch_targets() {
        let (m, f) = encode("int f(int x) { if (x > 10) return 1; return 0; }", "f");
        let func = m.function(&f).unwrap();
        let mut enc = FunctionEncoder::new(func);
        let mut solver = BvSolver::new();
        // The "then" block is reachable only when x > 10: check that
        // reach(then) ∧ x <= 10 is UNSAT.
        let then_block = func
            .block_ids()
            .find(|&b| func.block(b).name.as_deref() == Some("if.then"))
            .unwrap();
        let reach = enc.reach_term(then_block);
        let x = enc.pool.bv_var("arg0_x", 32);
        let ten = enc.pool.bv_const(32, 10);
        let le10 = enc.pool.bv_sle(x, ten);
        assert!(solver.check(&enc.pool, &[reach, le10]).is_unsat());
        // And reach(then) alone is satisfiable.
        assert!(solver.check(&enc.pool, &[reach]).is_sat());
    }

    #[test]
    fn values_fold_through_ssa() {
        let (m, f) = encode("int f(int x) { int y = x + 1; return y * 2; }", "f");
        let func = m.function(&f).unwrap();
        let mut enc = FunctionEncoder::new(func);
        // The returned value is (x + 1) * 2; check it equals 2x + 2.
        let ret_val = match &func.block(func.entry()).terminator {
            Terminator::Ret { value: Some(v) } => *v,
            _ => panic!("expected a return"),
        };
        let t = enc.bv_term(ret_val);
        let x = enc.pool.bv_var("arg0_x", 32);
        let two = enc.pool.bv_const(32, 2);
        let twox = enc.pool.bv_mul(x, two);
        let expected = enc.pool.bv_add(twox, two);
        let neq = enc.pool.ne(t, expected);
        let mut solver = BvSolver::new();
        assert!(solver.check(&enc.pool, &[neq]).is_unsat());
    }

    #[test]
    fn loads_are_unknown_values() {
        let (m, f) = encode("int f(int *p) { return *p; }", "f");
        let func = m.function(&f).unwrap();
        let mut enc = FunctionEncoder::new(func);
        let ret_val = match &func
            .block_ids()
            .map(|b| func.block(b).terminator.clone())
            .find(|t| matches!(t, Terminator::Ret { value: Some(_) }))
            .unwrap()
        {
            Terminator::Ret { value: Some(v) } => *v,
            _ => unreachable!(),
        };
        let t = enc.bv_term(ret_val);
        // The load is unconstrained: it can be 0 and it can be 1.
        let zero = enc.pool.bv_const(32, 0);
        let one = enc.pool.bv_const(32, 1);
        let eq0 = enc.pool.eq(t, zero);
        let eq1 = enc.pool.eq(t, one);
        let mut solver = BvSolver::new();
        assert!(solver.check(&enc.pool, &[eq0]).is_sat());
        assert!(solver.check(&enc.pool, &[eq1]).is_sat());
    }

    #[test]
    fn phi_nodes_are_gated_by_edge_conditions() {
        let (m, f) = encode(
            "int f(int x) { int y; if (x > 0) y = 7; else y = 9; return y; }",
            "f",
        );
        let func = m.function(&f).unwrap();
        let mut enc = FunctionEncoder::new(func);
        let ret_val = func
            .block_ids()
            .filter_map(|b| match &func.block(b).terminator {
                Terminator::Ret { value: Some(v) } => Some(*v),
                _ => None,
            })
            .next()
            .unwrap();
        let t = enc.bv_term(ret_val);
        let x = enc.pool.bv_var("arg0_x", 32);
        let zero = enc.pool.bv_const(32, 0);
        let pos = enc.pool.bv_sgt(x, zero);
        let seven = enc.pool.bv_const(32, 7);
        let neq7 = enc.pool.ne(t, seven);
        let mut solver = BvSolver::new();
        // x > 0 implies the result is 7.
        assert!(solver.check(&enc.pool, &[pos, neq7]).is_unsat());
        // x <= 0 implies the result is 9.
        let nine = enc.pool.bv_const(32, 9);
        let neg = enc.pool.not(pos);
        let neq9 = enc.pool.ne(t, nine);
        assert!(solver.check(&enc.pool, &[neg, neq9]).is_unsat());
    }
}
