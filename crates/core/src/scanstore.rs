//! The persisted report cache: function replay key → replayable reports.
//!
//! [`ScanStore`] is the second persistence layer of incremental re-scan,
//! sibling to the query-level
//! [`DiskQueryStore`](stack_solver::DiskQueryStore). Where the query store
//! makes a repeated *query* free, the scan store makes a repeated
//! *function* free: a function whose replay key
//! ([`function_replay_key`](crate::fingerprint::function_replay_key)) is
//! already recorded replays its saved raw [`BugReport`]s — in their
//! original discovery order — without issuing a single solver query, and is
//! counted as skipped
//! ([`CheckStats::functions_skipped`](crate::CheckStats)). An edited module
//! therefore pays the solver only for its edited functions; a module whose
//! functions all replay is additionally counted in
//! [`CheckStats::modules_skipped`](crate::CheckStats).
//!
//! **Path normalization.** Replay keys are path-independent, so one record
//! serves the same function under every path — identical vendored files
//! across an archive share one analysis. To make that sound, records are
//! stored *path-normalized*: at insert, every occurrence of the recording
//! module's file name in a report (the `file` field and the `file:line`
//! prefixes of `ub_sources`) is replaced with a reserved placeholder;
//! [`FunctionRecord::replay`] substitutes the scanning module's name back
//! in. Records for one key are thus byte-identical no matter which path
//! recorded them — which is exactly what lets shard scans that saw the
//! same function under different paths merge without conflict.
//!
//! The file discipline is the one the query store established:
//!
//! * **versioned header** — format version,
//!   [`ENCODING_REVISION`](stack_solver::ENCODING_REVISION), and
//!   [`FINGERPRINT_REVISION`]; any mismatch discards the whole file and
//!   [`was_invalidated`] reports it (a v3 module-keyed store
//!   self-invalidates the same way — that *is* the migration). The replay
//!   keys additionally bake both revisions and the semantics-relevant
//!   config knobs into their own bits, so even a same-format file can
//!   never replay reports computed under different semantics.
//! * **atomic saves** — serialize to a pid-suffixed temp file, rename over
//!   the target; a crash mid-save never leaves a truncated store.
//! * **per-line checksums and salvage** — every body line carries a
//!   trailing ` !<crc32>`. A torn, truncated, or bit-flipped body is
//!   salvaged entry by entry at [`open`](ScanStore::open): a function
//!   record survives only if its `F` line and all of its `R` lines verify
//!   and parse; everything else is dropped and counted
//!   ([`salvage`](ScanStore::salvage)), and the next save rewrites the
//!   file canonically. Duplicate keys (a torn write splicing two file
//!   versions) keep the first record.
//! * **byte-determinism** — entries sorted by key, reports kept in their
//!   recorded order; saving the same logical store twice produces
//!   byte-identical files.
//! * **generations and compaction** — every [`open`](ScanStore::open)
//!   starts a new generation (the persisted one plus one); a lookup hit or
//!   an insert stamps its record with it, and with
//!   [`set_compaction`](ScanStore::set_compaction)`(Some(n))` a save drops
//!   records unused for `n` or more generations. Without compaction a
//!   long-lived shared store accumulates the key of every function version
//!   it ever saw; with it, dead keys age out exactly like the query
//!   store's dead entries.
//!
//! ## Format
//!
//! ```text
//! stack-scan-store v4 enc1 fpr2 gen3
//! F g<gen> <key> r<reports> !<crc32>
//! R <alg> <line> <cg> <function> <file> <description> u <kind>@<loc> ... !<crc32>
//! ```
//!
//! `F` opens one function entry (last-used generation stamp, replay key in
//! lower-case hex, report count); exactly `r` `R` lines follow, one per
//! raw report in discovery order; every line ends with its CRC-32. String
//! fields are percent-escaped so they never contain whitespace or `%`; the
//! path placeholder is the (never-graphic) byte `0x01`, escaped as `%01`.
//!
//! ## Merging
//!
//! [`merge`](ScanStore::merge) folds several scan-store files into one —
//! the distributed-scan fan-in: shard scans record disjoint (or, thanks to
//! path normalization, byte-identical) function sets, and the merged store
//! warm-starts the next full scan. Merge semantics match the query
//! store's: strict header compatibility (a revision mismatch is a loud
//! [`MergeError::Incompatible`], never a silent discard), duplicate keys
//! assert record equality, stamps take the max, and the output is written
//! through the same atomic byte-deterministic path.
//!
//! [`was_invalidated`]: ScanStore::was_invalidated

use crate::fingerprint::{FunctionKey, FINGERPRINT_REVISION};
use crate::report::{Algorithm, BugReport, UbSource};
use crate::ubcond::UbKind;
use stack_solver::store::{
    body_lines, check_header_compatible, inspect_text, verify_checksummed_line,
    write_checksummed_line,
};
use stack_solver::{MergeError, MergeStats, SalvageReport, StoreInspection};
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk layout version of the scan-store file. Bump when the syntax
/// changes. (v2 added the header generation and per-record last-used
/// stamps; v3 added the per-line ` !<crc32>` checksum that makes torn or
/// truncated stores salvageable record by record; v4 moved from
/// module-fingerprint entries to per-function replay keys with
/// path-normalized reports. Older files self-invalidate, as any stale
/// cache does.)
pub const SCAN_STORE_FORMAT_VERSION: u32 = 4;

/// The first token of every scan-store header line.
const SCAN_STORE_HEADER_PREFIX: &str = "stack-scan-store";

/// The in-record stand-in for the recording module's file name. A control
/// byte, so it can never collide with a real (percent-escaped, graphic)
/// path, and never survives into user-visible reports — replay always
/// substitutes the scanning module's name.
const PATH_PLACEHOLDER: &str = "\u{1}";

/// The header fields (beyond the format version) that must match the
/// running binary for a file to be loaded or merged.
fn expected_header_fields() -> [(&'static str, u64); 3] {
    [
        ("v", u64::from(SCAN_STORE_FORMAT_VERSION)),
        ("enc", u64::from(stack_solver::ENCODING_REVISION)),
        ("fpr", u64::from(FINGERPRINT_REVISION)),
    ]
}

/// The replayable record of one analyzed function: its raw (pre-filter)
/// reports in discovery order, path-normalized. Build with
/// [`normalized`](FunctionRecord::normalized), read back with
/// [`replay`](FunctionRecord::replay).
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionRecord {
    /// The function's raw reports with the recording path replaced by the
    /// placeholder. Not user-visible as-is — replay rewrites them.
    pub reports: Vec<BugReport>,
}

impl FunctionRecord {
    /// Normalize a function's freshly computed raw reports for storage:
    /// every mention of `file` (the recording module's name) becomes the
    /// placeholder, so the record is identical no matter which path the
    /// function was analyzed under.
    pub fn normalized(reports: &[BugReport], file: &str) -> FunctionRecord {
        FunctionRecord {
            reports: reports
                .iter()
                .map(|r| rewrite_report_path(r, file, PATH_PLACEHOLDER))
                .collect(),
        }
    }

    /// Reconstitute the raw reports for a replay under `file` (the
    /// scanning module's name): the placeholder is substituted back, so
    /// the replayed stream is byte-identical to what a fresh analysis of
    /// this function in that module would produce.
    pub fn replay(&self, file: &str) -> Vec<BugReport> {
        self.reports
            .iter()
            .map(|r| rewrite_report_path(r, PATH_PLACEHOLDER, file))
            .collect()
    }
}

/// Rewrite every mention of file name `from` in a report to `to`: the
/// report's own `file` field and the `from:`-prefixed `ub_sources`
/// locations. Locations naming *other* files (or no file — unknown
/// origins render as `:0`) pass through untouched.
fn rewrite_report_path(report: &BugReport, from: &str, to: &str) -> BugReport {
    if from.is_empty() {
        return report.clone();
    }
    let mut out = report.clone();
    if out.file == from {
        out.file = to.to_string();
    }
    let prefix = format!("{from}:");
    for src in &mut out.ub_sources {
        if let Some(rest) = src.location.strip_prefix(&prefix) {
            src.location = format!("{to}:{rest}");
        }
    }
    out
}

/// Hit/miss counters of a scan store (lifetime of this instance).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStoreStats {
    /// Lookups answered from the store (functions skipped).
    pub hits: u64,
    /// Lookups that missed (functions analyzed and, when clean, recorded).
    pub misses: u64,
    /// Function records currently stored.
    pub entries: u64,
}

/// A disk-backed replay-key → function-record table. Shared across the
/// scan pipeline's file-level workers through an `Arc`, so all methods
/// take `&self`. Each record carries its last-used generation stamp.
#[derive(Debug)]
pub struct ScanStore {
    path: PathBuf,
    records: Mutex<HashMap<FunctionKey, (FunctionRecord, u64)>>,
    generation: u64,
    compact_after: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    loaded: u64,
    invalidated: bool,
    /// Set when `open` had to drop bad lines from a torn or corrupted
    /// body (`None` for a clean or missing file).
    salvage: Option<SalvageReport>,
}

impl ScanStore {
    /// The header line a store written by this binary carries, stamped
    /// with the saving run's generation.
    fn header(generation: u64) -> String {
        format!(
            "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc{} fpr{FINGERPRINT_REVISION} gen{generation}",
            stack_solver::ENCODING_REVISION
        )
    }

    /// Open a store backed by `path`, loading every persisted record and
    /// starting a new generation (the persisted one plus one; 1 for a
    /// fresh store). A missing file yields an empty store; a mismatched
    /// header discards the file wholesale
    /// ([`was_invalidated`](Self::was_invalidated) reports it). A
    /// compatible file with torn or corrupted body lines loads every
    /// record that checksums and parses, drops the rest, and reports the
    /// damage through [`salvage`](Self::salvage). Only I/O failures are
    /// errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<ScanStore> {
        let path = path.into();
        let mut store = ScanStore {
            path,
            records: Mutex::new(HashMap::new()),
            generation: 1,
            compact_after: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loaded: 0,
            invalidated: false,
            salvage: None,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        match parse_store(&text) {
            Some((file_generation, records, salvage)) => {
                store.generation = file_generation + 1;
                store.loaded = records.len() as u64;
                *store.records.get_mut().unwrap() = records;
                if !salvage.is_clean() {
                    store.salvage = Some(salvage);
                }
            }
            None => store.invalidated = true,
        }
        Ok(store)
    }

    /// Look up the record for a replay key, counting a hit or miss. A hit
    /// refreshes the record's last-used stamp to this run's generation.
    pub fn lookup(&self, key: FunctionKey) -> Option<FunctionRecord> {
        let found = match self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&key)
        {
            Some(slot) => {
                slot.1 = self.generation;
                Some(slot.0.clone())
            }
            None => None,
        };
        match found {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a freshly analyzed function, stamped with this run's
    /// generation. First insert wins for the record itself (normalized
    /// records for one key are identical by construction).
    pub fn insert(&self, key: FunctionKey, record: FunctionRecord) {
        match self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
        {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                occupied.get_mut().1 = self.generation;
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert((record, self.generation));
            }
        }
    }

    /// Write every record back to the backing file (temp file + rename, so a
    /// crash never truncates the store; entries sorted by key, so saving
    /// the same logical store twice is byte-identical). When a compaction
    /// horizon is set ([`set_compaction`](Self::set_compaction)), records
    /// unused for that many generations are dropped. Returns the number of
    /// function records written.
    pub fn save(&self) -> io::Result<usize> {
        let compact = self.compact_after.load(Ordering::Relaxed);
        let mut entries: Vec<(FunctionKey, FunctionRecord, u64)> = self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .filter(|(_, (_, stamp))| compact == 0 || self.generation - stamp < compact)
            .map(|(key, (record, stamp))| (*key, record.clone(), *stamp))
            .collect();
        entries.sort_by_key(|(key, _, _)| *key);
        write_scan_store_file(&self.path, self.generation, &entries)?;
        Ok(entries.len())
    }

    /// Merge several scan-store files into one at `out` — the
    /// distributed-scan fan-in. Strict where [`open`](Self::open) is
    /// forgiving: a revision-mismatched or malformed input is a loud
    /// error, duplicate keys must carry byte-identical records (their
    /// stamps take the max — path normalization guarantees this for the
    /// same function recorded by different shards under different paths),
    /// and the output header's generation is the max across inputs. With
    /// `compact_after = Some(n)`, merged records unused for `n` or more
    /// generations are pruned. The output is written through the same
    /// atomic byte-deterministic path as [`save`](Self::save).
    pub fn merge(
        out: impl AsRef<Path>,
        inputs: &[PathBuf],
        compact_after: Option<u64>,
    ) -> Result<MergeStats, MergeError> {
        let mut merged: HashMap<FunctionKey, (FunctionRecord, u64)> = HashMap::new();
        let mut stats = MergeStats {
            inputs: inputs.len(),
            ..MergeStats::default()
        };
        for path in inputs {
            let text = std::fs::read_to_string(path).map_err(|error| MergeError::Io {
                path: path.clone(),
                error,
            })?;
            check_header_compatible(
                text.lines().next().unwrap_or(""),
                SCAN_STORE_HEADER_PREFIX,
                &expected_header_fields(),
            )
            .map_err(|reason| MergeError::Incompatible {
                path: path.clone(),
                reason,
            })?;
            let (file_generation, records, salvage) =
                parse_store(&text).ok_or_else(|| MergeError::Incompatible {
                    path: path.clone(),
                    reason: "malformed store content".to_string(),
                })?;
            // A store that needed salvage may have lost records; a merge
            // must never bake the loss into a fleet-shared artifact.
            if !salvage.is_clean() {
                return Err(MergeError::Incompatible {
                    path: path.clone(),
                    reason: format!(
                        "store needs salvage ({} bad line{}); run fsck --repair before merging",
                        salvage.dropped_lines,
                        if salvage.dropped_lines == 1 { "" } else { "s" }
                    ),
                });
            }
            stats.generation = stats.generation.max(file_generation);
            stats.entries_in += records.len() as u64;
            for (key, (record, stamp)) in records {
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut occupied) => {
                        stats.duplicates += 1;
                        if occupied.get().0 != record {
                            return Err(MergeError::Conflict {
                                path: path.clone(),
                                key: format!("{key:032x}"),
                            });
                        }
                        let slot = occupied.get_mut();
                        slot.1 = slot.1.max(stamp);
                    }
                    std::collections::hash_map::Entry::Vacant(vacant) => {
                        vacant.insert((record, stamp));
                    }
                }
            }
        }
        let compact = compact_after.unwrap_or(0);
        let generation = stats.generation.max(1);
        stats.generation = generation;
        let mut entries: Vec<(FunctionKey, FunctionRecord, u64)> = merged
            .into_iter()
            .filter(|(_, (_, stamp))| compact == 0 || generation - stamp < compact)
            .map(|(key, (record, stamp))| (key, record, stamp))
            .collect();
        entries.sort_by_key(|(key, _, _)| *key);
        stats.entries_out = entries.len() as u64;
        stats.pruned = stats.entries_in - stats.duplicates - stats.entries_out;
        write_scan_store_file(out.as_ref(), generation, &entries).map_err(|error| {
            MergeError::Io {
                path: out.as_ref().to_path_buf(),
                error,
            }
        })?;
        Ok(stats)
    }

    /// Read the store file at `path` for debugging: header revisions,
    /// generation, entry count, and a last-used-stamp histogram — without
    /// the all-or-nothing discard [`open`](Self::open) applies, so a store
    /// a merge rejected can still be examined. Only the header must parse;
    /// a body in an unknown line format reports `malformed` instead of
    /// failing.
    pub fn inspect(path: impl AsRef<Path>) -> Result<StoreInspection, MergeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| MergeError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        inspect_text(
            &text,
            "scan",
            SCAN_STORE_HEADER_PREFIX,
            &expected_header_fields(),
            |text, generation| {
                let body_start = text.lines().next().map_or(0, |l| l.len() + 1);
                let (entries, salvage) = parse_body(text, body_start, generation);
                (
                    entries.into_iter().map(|(_, _, stamp)| stamp).collect(),
                    salvage,
                )
            },
        )
        .ok_or_else(|| MergeError::Incompatible {
            path: path.to_path_buf(),
            reason: format!("not a {SCAN_STORE_HEADER_PREFIX} file"),
        })
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ScanStoreStats {
        ScanStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len() as u64,
        }
    }

    /// Number of function records loaded from disk at [`open`](Self::open).
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// This run's generation: the persisted one plus one (1 for a fresh
    /// store). Every save stamps the header — and every record this run
    /// looked up or inserted — with it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Set (or clear) the compaction horizon: at [`save`](Self::save),
    /// records whose last-used stamp is `n` or more generations old are
    /// pruned. `None` (the default) keeps everything forever.
    pub fn set_compaction(&self, n: Option<u64>) {
        self.compact_after.store(n.unwrap_or(0), Ordering::Relaxed);
    }

    /// Whether `open` found a file it had to discard (written by a different
    /// format/encoding/fingerprint revision — including pre-v4
    /// module-keyed stores).
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// The damage report when `open` had to drop bad lines from a torn or
    /// corrupted body; `None` when the file loaded clean (or was missing
    /// or invalidated wholesale).
    pub fn salvage(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Write a complete scan-store file — header at `generation`, then the
/// given (already sorted) entries — atomically via a pid-suffixed sibling
/// temp file and rename, byte-deterministic in its inputs. Shared by
/// [`ScanStore::save`] and [`ScanStore::merge`].
fn write_scan_store_file(
    path: &Path,
    generation: u64,
    entries: &[(FunctionKey, FunctionRecord, u64)],
) -> io::Result<()> {
    let mut out = ScanStore::header(generation);
    out.push('\n');
    for (key, record, stamp) in entries {
        write_checksummed_line(
            &mut out,
            &format!("F g{stamp} {key:032x} r{}", record.reports.len()),
        );
        for report in &record.reports {
            write_checksummed_line(&mut out, &report_payload(report));
        }
    }
    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Render one report as an `R` line payload (checksummed by the caller).
fn report_payload(report: &BugReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "R {} {} {} {} {} {}",
        algorithm_tag(report.algorithm),
        report.line,
        u8::from(report.compiler_generated),
        escape(&report.function),
        escape(&report.file),
        escape(&report.description)
    );
    for src in &report.ub_sources {
        let _ = write!(
            out,
            " u {}@{}",
            src.kind.short_name(),
            escape(&src.location)
        );
    }
    out
}

/// Parse a whole store file into its header generation, its verifiable
/// records, and the salvage report describing what was dropped. `None`
/// only on a header mismatch — a file written by a different revision
/// cannot be trusted at all; a file with a good header is salvaged record
/// by record.
#[allow(clippy::type_complexity)]
fn parse_store(
    text: &str,
) -> Option<(
    u64,
    HashMap<FunctionKey, (FunctionRecord, u64)>,
    SalvageReport,
)> {
    let first = text.lines().next()?;
    let generation: u64 = first
        .strip_prefix(&format!(
            "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc{} fpr{FINGERPRINT_REVISION} gen",
            stack_solver::ENCODING_REVISION
        ))?
        .parse()
        .ok()?;
    let (entries, salvage) = parse_body(text, first.len() + 1, generation);
    Some((
        generation,
        entries
            .into_iter()
            .map(|(key, record, stamp)| (key, (record, stamp)))
            .collect(),
        salvage,
    ))
}

/// Salvage-parse the function records of a store body (everything from
/// `body_start` on). The salvage unit is one record: an `F` line plus its
/// `r` `R` lines. A record survives only if every one of its lines
/// checksums and parses, its stamp is not from the future, and its key was
/// not already seen (a duplicate is the signature of a torn write — the
/// first record wins). A failed record drops its `F` line and
/// resynchronizes at the next line, so orphaned `R` lines after damage
/// drop individually.
#[allow(clippy::type_complexity)]
fn parse_body(
    text: &str,
    body_start: usize,
    generation: u64,
) -> (Vec<(FunctionKey, FunctionRecord, u64)>, SalvageReport) {
    let mut entries = Vec::new();
    let mut seen = HashSet::new();
    let mut salvage = SalvageReport::default();
    let mut lines = body_lines(text, body_start).peekable();
    while let Some((line, offset, terminated)) = lines.next() {
        let header = if terminated {
            verify_checksummed_line(line).and_then(|payload| parse_entry_line(payload, generation))
        } else {
            None
        };
        let Some((key, stamp, nreports)) = header else {
            salvage.bad(offset);
            continue;
        };
        let mut reports = Vec::with_capacity(nreports);
        while reports.len() < nreports {
            let parsed = match lines.peek() {
                Some(&(rline, _, rterminated)) if rterminated => {
                    verify_checksummed_line(rline).and_then(parse_report)
                }
                _ => None,
            };
            match parsed {
                Some(report) => {
                    lines.next();
                    reports.push(report);
                }
                // Leave the offending line for the outer loop: it is
                // counted (and resynchronized on) as its own bad line.
                None => break,
            }
        }
        if reports.len() < nreports || !seen.insert(key) {
            salvage.bad(offset);
            continue;
        }
        entries.push((key, FunctionRecord { reports }, stamp));
        salvage.entry();
    }
    (entries, salvage)
}

/// Parse one verified `F` line payload into (key, stamp, report count).
/// Stamps from beyond `generation` are malformed.
fn parse_entry_line(payload: &str, generation: u64) -> Option<(u128, u64, usize)> {
    let rest = payload.strip_prefix("F ")?;
    let mut parts = rest.split(' ');
    let stamp: u64 = parts.next()?.strip_prefix('g')?.parse().ok()?;
    if stamp > generation {
        return None;
    }
    let key = u128::from_str_radix(parts.next()?, 16).ok()?;
    let nreports: usize = parts.next()?.strip_prefix('r')?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((key, stamp, nreports))
}

/// Parse one `R` line back into a report.
fn parse_report(line: &str) -> Option<BugReport> {
    let rest = line.strip_prefix("R ")?;
    let mut parts = rest.split(' ');
    let algorithm = parse_algorithm(parts.next()?)?;
    let line_no: u32 = parts.next()?.parse().ok()?;
    let compiler_generated = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let function = unescape(parts.next()?)?;
    let file = unescape(parts.next()?)?;
    let description = unescape(parts.next()?)?;
    let mut ub_sources = Vec::new();
    while let Some(marker) = parts.next() {
        if marker != "u" {
            return None;
        }
        let (kind_text, loc_text) = parts.next()?.split_once('@')?;
        let kind = parse_ub_kind(kind_text)?;
        ub_sources.push(UbSource {
            kind,
            location: unescape(loc_text)?,
        });
    }
    Some(BugReport {
        function,
        file,
        line: line_no,
        algorithm,
        description,
        ub_sources,
        compiler_generated,
    })
}

/// Stable one-word tag per algorithm (round-tripped by
/// [`parse_algorithm`]).
fn algorithm_tag(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Elimination => "elim",
        Algorithm::SimplifyBoolean => "bool",
        Algorithm::SimplifyAlgebra => "algebra",
    }
}

fn parse_algorithm(tag: &str) -> Option<Algorithm> {
    match tag {
        "elim" => Some(Algorithm::Elimination),
        "bool" => Some(Algorithm::SimplifyBoolean),
        "algebra" => Some(Algorithm::SimplifyAlgebra),
        _ => None,
    }
}

/// Invert [`UbKind::short_name`] (the Figure 9 column labels, already
/// unique).
fn parse_ub_kind(tag: &str) -> Option<UbKind> {
    UbKind::all()
        .iter()
        .copied()
        .find(|k| k.short_name() == tag)
}

/// Percent-escape a string so it never contains whitespace, `@`, or `%`
/// (the characters the line format relies on). The path placeholder byte
/// `0x01` is non-graphic, so it always renders as `%01`.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'%' | b'@' => {
                let _ = write!(out, "%{byte:02x}");
            }
            b if b.is_ascii_graphic() => out.push(b as char),
            b => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

/// Invert [`escape`]. `None` on malformed escapes or invalid UTF-8.
fn unescape(text: &str) -> Option<String> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "stack-scan-store-{tag}-{}-{}.ss",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_report(line: u32) -> BugReport {
        BugReport {
            function: "tun chr/poll".to_string(), // space + slash exercise escaping
            file: "drivers/net@tun.c".to_string(),
            line,
            algorithm: Algorithm::Elimination,
            description: "code is reachable only by inputs that trigger UB; 100% gone".to_string(),
            ub_sources: vec![
                UbSource {
                    kind: UbKind::NullPointerDereference,
                    location: "tun.c:3".to_string(),
                },
                UbSource {
                    kind: UbKind::SignedIntegerOverflow,
                    location: "tun.c:9".to_string(),
                },
            ],
            compiler_generated: line.is_multiple_of(2),
        }
    }

    fn record(lines: &[u32]) -> FunctionRecord {
        FunctionRecord {
            reports: lines.iter().map(|&l| sample_report(l)).collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_records_and_report_order() {
        let path = temp_path("roundtrip");
        let store = ScanStore::open(&path).unwrap();
        store.insert(7, record(&[5, 2]));
        store.insert(u128::MAX, record(&[]));
        assert_eq!(store.save().unwrap(), 2);

        let reloaded = ScanStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 2);
        assert!(!reloaded.was_invalidated());
        let found = reloaded.lookup(7).expect("record survives");
        assert_eq!(
            found.reports,
            vec![sample_report(5), sample_report(2)],
            "reports replay in their recorded order"
        );
        assert_eq!(reloaded.lookup(u128::MAX).unwrap().reports.len(), 0);
        assert!(reloaded.lookup(8).is_none());
        let stats = reloaded.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn normalization_makes_records_path_independent_and_replay_rewrites() {
        // The same function analyzed under two paths: reports differ only in
        // the file they name.
        let report_under = |file: &str| BugReport {
            function: "f".to_string(),
            file: file.to_string(),
            line: 2,
            algorithm: Algorithm::SimplifyBoolean,
            description: "check always true".to_string(),
            ub_sources: vec![
                UbSource {
                    kind: UbKind::SignedIntegerOverflow,
                    location: format!("{file}:1"),
                },
                UbSource {
                    kind: UbKind::NullPointerDereference,
                    location: "other.c:9".to_string(), // inlined from elsewhere
                },
            ],
            compiler_generated: false,
        };
        let a = FunctionRecord::normalized(&[report_under("a/vendored.c")], "a/vendored.c");
        let b = FunctionRecord::normalized(&[report_under("b/deep/copy.c")], "b/deep/copy.c");
        assert_eq!(a, b, "normalized records must not depend on the path");
        // Replay under a third path reconstructs exactly what a fresh
        // analysis there would report — including the untouched foreign
        // ub-source location.
        assert_eq!(a.replay("c/new.c"), vec![report_under("c/new.c")]);
        // And the normalized form survives a disk roundtrip (the
        // placeholder byte is escaped).
        let path = temp_path("normalized");
        let store = ScanStore::open(&path).unwrap();
        store.insert(1, a.clone());
        store.save().unwrap();
        let reloaded = ScanStore::open(&path).unwrap();
        assert_eq!(reloaded.lookup(1).unwrap(), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_byte_deterministic() {
        let path = temp_path("deterministic");
        let store = ScanStore::open(&path).unwrap();
        for key in [9u128, 1, 4] {
            store.insert(key, record(&[key as u32]));
        }
        store.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // Saving the same store again (same run, same generation) is
        // byte-identical.
        store.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        // A re-open starts the next generation: an untouched store differs
        // from the previous file only in the header's generation.
        let reloaded = ScanStore::open(&path).unwrap();
        assert_eq!(reloaded.generation(), store.generation() + 1);
        reloaded.save().unwrap();
        let third = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            first.split_once('\n').unwrap().1,
            third.split_once('\n').unwrap().1,
            "record lines (incl. last-used stamps) unchanged when nothing was touched"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// One checksummed body line (payload + valid CRC + newline).
    fn line(payload: &str) -> String {
        let mut out = String::new();
        write_checksummed_line(&mut out, payload);
        out
    }

    #[test]
    fn mismatched_revision_self_invalidates() {
        let bad_headers = [
            // The v3 module-keyed format (its fpr1 keys died with it).
            "stack-scan-store v3 enc1 fpr1 gen1\n".to_string(),
            format!(
                "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc999 fpr{FINGERPRINT_REVISION} gen1\n"
            ),
        ];
        for header in &bad_headers {
            let path = temp_path("stale");
            std::fs::write(&path, format!("{header}{}", line("F g1 1 r0"))).unwrap();
            let store = ScanStore::open(&path).unwrap();
            assert!(store.was_invalidated(), "header {header:?}");
            assert_eq!(store.loaded_entries(), 0);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn bad_records_are_salvaged_not_fatal() {
        for bad in [
            "garbage\n".to_string(),
            line("F 3 r0"),         // stamp missing
            line("F g2 3 r0"),      // stamp beyond the header generation
            line("F g1 nothex r0"), // bad key
            line("F g1 3 r1"),      // missing R line
        ] {
            let path = temp_path("salvaged");
            // One good record on each side of the damage.
            std::fs::write(
                &path,
                format!(
                    "{}\n{}{bad}{}",
                    ScanStore::header(1),
                    line("F g1 1 r0"),
                    line("F g1 2 r0")
                ),
            )
            .unwrap();
            let store = ScanStore::open(&path).unwrap();
            assert!(!store.was_invalidated(), "bad {bad:?}");
            assert_eq!(store.loaded_entries(), 2, "bad {bad:?}");
            assert!(store.lookup(1).is_some());
            assert!(store.lookup(2).is_some());
            let salvage = *store.salvage().expect("damage must be reported");
            assert_eq!(salvage.dropped_lines, 1, "bad {bad:?}");
            assert_eq!(salvage.valid_prefix_entries, 1);
            assert_eq!(salvage.salvaged_entries, 2);
            assert_eq!(
                salvage.first_bad_offset,
                Some((ScanStore::header(1).len() + 1 + line("F g1 1 r0").len()) as u64)
            );
            // A save rewrites the file canonically; the re-open is clean.
            store.save().unwrap();
            let healed = ScanStore::open(&path).unwrap();
            assert_eq!(healed.loaded_entries(), 2);
            assert!(healed.salvage().is_none());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn record_with_bad_report_line_drops_as_a_unit() {
        // The F line verifies but its R line does not: the whole record
        // drops (F counted, then the orphan R line counted on resync) and
        // the following record still loads.
        let path = temp_path("bad-report");
        std::fs::write(
            &path,
            format!(
                "{}\n{}{}{}",
                ScanStore::header(1),
                line("F g1 1 r1"),
                line("R wat 1 0 f g d"),
                line("F g1 2 r0")
            ),
        )
        .unwrap();
        let store = ScanStore::open(&path).unwrap();
        assert!(!store.was_invalidated());
        assert_eq!(store.loaded_entries(), 1);
        assert!(store.lookup(1).is_none());
        assert!(store.lookup(2).is_some());
        let salvage = store.salvage().unwrap();
        assert_eq!(salvage.dropped_lines, 2);
        assert_eq!(salvage.valid_prefix_entries, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_keys_keep_the_first_record() {
        let path = temp_path("dup");
        std::fs::write(
            &path,
            format!(
                "{}\n{}{}{}",
                ScanStore::header(2),
                line("F g2 1 r1"),
                line(&report_payload(&sample_report(3))),
                line("F g1 1 r0")
            ),
        )
        .unwrap();
        let store = ScanStore::open(&path).unwrap();
        assert!(!store.was_invalidated());
        assert_eq!(store.loaded_entries(), 1);
        assert_eq!(
            store.lookup(1).unwrap().reports.len(),
            1,
            "first record wins"
        );
        assert_eq!(store.salvage().unwrap().dropped_lines, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_store_salvages_the_intact_prefix() {
        let path = store_with("truncate", &[(1, 1), (2, 2), (3, 3)]);
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the final record's R line: records 1 and 2
        // survive, the torn record drops.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let store = ScanStore::open(&path).unwrap();
        assert!(!store.was_invalidated());
        assert_eq!(store.loaded_entries(), 2);
        assert!(store.lookup(1).is_some());
        assert!(store.lookup(2).is_some());
        assert!(store.lookup(3).is_none());
        let salvage = store.salvage().unwrap();
        assert_eq!(salvage.valid_prefix_entries, 2);
        assert!(salvage.dropped_lines >= 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_rejects_stores_that_need_salvage() {
        let good = store_with("merge-salvage-good", &[(1, 1)]);
        let torn = temp_path("merge-salvage-torn");
        std::fs::write(
            &torn,
            format!("{}\n{}garbage\n", ScanStore::header(1), line("F g1 2 r0")),
        )
        .unwrap();
        let out = temp_path("merge-salvage-out");
        match ScanStore::merge(&out, &[good.clone(), torn.clone()], None) {
            Err(MergeError::Incompatible { reason, .. }) => {
                assert!(reason.contains("salvage"), "{reason}");
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        assert!(!out.exists());
        for path in [good, torn] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = temp_path("missing");
        let store = ScanStore::open(&path).unwrap();
        assert_eq!(store.loaded_entries(), 0);
        assert_eq!(store.generation(), 1);
        assert!(!store.was_invalidated());
    }

    /// Build a store file at a fresh temp path holding the given
    /// (key, report line number) pairs, each with one sample report.
    fn store_with(tag: &str, entries: &[(u128, u32)]) -> PathBuf {
        let path = temp_path(tag);
        let store = ScanStore::open(&path).unwrap();
        for &(key, report_line) in entries {
            store.insert(key, record(&[report_line]));
        }
        store.save().unwrap();
        path
    }

    #[test]
    fn generations_advance_and_stamps_refresh_on_use() {
        let path = store_with("generations", &[(1, 1), (2, 2)]);
        // Generation 2: touch only key 1.
        let store = ScanStore::open(&path).unwrap();
        assert_eq!(store.generation(), 2);
        assert!(store.lookup(1).is_some());
        store.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(&ScanStore::header(2)), "{text}");
        assert!(
            text.contains("F g2 00000000000000000000000000000001"),
            "{text}"
        );
        assert!(
            text.contains("F g1 00000000000000000000000000000002"),
            "{text}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_prunes_unused_records() {
        let path = store_with("compaction", &[(1, 1), (2, 2)]);
        // Two more generations touching only key 1.
        for expected_gen in [2, 3] {
            let store = ScanStore::open(&path).unwrap();
            assert_eq!(store.generation(), expected_gen);
            assert!(store.lookup(1).is_some());
            store.set_compaction(Some(2));
            store.save().unwrap();
        }
        // Key 2 (last used at generation 1) fell behind the 2-generation
        // horizon at the generation-3 save.
        let reloaded = ScanStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 1);
        assert!(reloaded.lookup(1).is_some());
        assert!(reloaded.lookup(2).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_unions_entries_and_counts_duplicates() {
        let a = store_with("merge-a", &[(1, 1), (2, 2)]);
        let b = store_with("merge-b", &[(2, 2), (3, 3)]);
        let out = temp_path("merge-out");
        let stats = ScanStore::merge(&out, &[a.clone(), b.clone()], None).unwrap();
        // Fan-in must not depend on the order shard stores arrive in.
        let reversed = temp_path("merge-out-rev");
        ScanStore::merge(&reversed, &[b.clone(), a.clone()], None).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            std::fs::read_to_string(&reversed).unwrap(),
            "merge(a, b) and merge(b, a) must coincide byte for byte"
        );
        std::fs::remove_file(&reversed).unwrap();
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.entries_in, 4);
        assert_eq!(stats.entries_out, 3);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.pruned, 0);
        let merged = ScanStore::open(&out).unwrap();
        assert_eq!(merged.loaded_entries(), 3);
        for key in [1u128, 2, 3] {
            assert_eq!(
                merged.lookup(key).expect("merged record").reports[0].line,
                key as u32
            );
        }
        for path in [a, b, out] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn merge_with_itself_is_the_identity() {
        let a = store_with("merge-self", &[(7, 2), (9, 1)]);
        let out = temp_path("merge-self-out");
        ScanStore::merge(&out, &[a.clone(), a.clone()], None).unwrap();
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&out).unwrap(),
            "merging a store with itself must reproduce it byte for byte"
        );
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn merge_rejects_incompatible_and_conflicting_inputs_loudly() {
        let good = store_with("merge-good", &[(1, 1)]);
        let stale = temp_path("merge-stale");
        std::fs::write(
            &stale,
            format!(
                "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc1 fpr{} gen1\n",
                FINGERPRINT_REVISION + 1
            ),
        )
        .unwrap();
        let out = temp_path("merge-reject-out");
        match ScanStore::merge(&out, &[good.clone(), stale.clone()], None) {
            Err(MergeError::Incompatible { reason, .. }) => {
                assert!(
                    reason.contains(&format!("fpr{}", FINGERPRINT_REVISION + 1)),
                    "reason must name the mismatch: {reason}"
                );
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        assert!(!out.exists(), "a failed merge must not write an output");

        // Same key, different record: loud conflict.
        let conflicting = store_with("merge-conflict", &[(1, 5)]);
        match ScanStore::merge(&out, &[good.clone(), conflicting.clone()], None) {
            Err(MergeError::Conflict { key, .. }) => {
                assert!(key.contains('1'), "key names the replay key: {key}");
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
        for path in [good, stale, conflicting] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn merge_takes_max_stamps_and_compacts() {
        // Store a: generation 3, key 1 stamped g3, key 2 stamped g1.
        let a = temp_path("merge-stamps-a");
        std::fs::write(
            &a,
            format!(
                "{}\n{}{}",
                ScanStore::header(3),
                line("F g3 00000000000000000000000000000001 r0"),
                line("F g1 00000000000000000000000000000002 r0")
            ),
        )
        .unwrap();
        // Store b: generation 2, key 1 stamped g2 (older than a's).
        let b = temp_path("merge-stamps-b");
        std::fs::write(
            &b,
            format!(
                "{}\n{}",
                ScanStore::header(2),
                line("F g2 00000000000000000000000000000001 r0")
            ),
        )
        .unwrap();
        let out = temp_path("merge-stamps-out");
        let stats = ScanStore::merge(&out, &[b.clone(), a.clone()], Some(2)).unwrap();
        assert_eq!(stats.generation, 3, "output generation is the max");
        assert_eq!(
            stats.entries_out, 1,
            "the g1 record fell behind the horizon"
        );
        assert_eq!(stats.pruned, 1);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(
            text.contains("F g3 00000000000000000000000000000001"),
            "{text}"
        );
        for path in [a, b, out] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn inspect_reads_headers_even_when_incompatible() {
        let path = store_with("inspect", &[(1, 1), (2, 2)]);
        let info = ScanStore::inspect(&path).unwrap();
        assert_eq!(info.kind, "scan");
        assert_eq!(info.format_version, u64::from(SCAN_STORE_FORMAT_VERSION));
        assert_eq!(
            info.fingerprint_revision,
            Some(u64::from(FINGERPRINT_REVISION))
        );
        assert_eq!(info.generation, 1);
        assert!(info.compatible);
        assert!(!info.malformed);
        assert_eq!(info.entries, 2);
        assert_eq!(info.last_used.get(&1), Some(&2));

        // A future fingerprint revision: still inspectable, flagged
        // incompatible.
        let stale = temp_path("inspect-stale");
        std::fs::write(
            &stale,
            format!(
                "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc1 fpr{} gen4\n{}",
                FINGERPRINT_REVISION + 9,
                line("F g2 1 r0")
            ),
        )
        .unwrap();
        let info = ScanStore::inspect(&stale).unwrap();
        assert!(!info.compatible);
        assert_eq!(info.generation, 4);
        assert_eq!(info.entries, 1);
        assert!(info.render().contains("NO"), "{}", info.render());

        // Not a scan store at all: loud error.
        let other = temp_path("inspect-other");
        std::fs::write(&other, "stack-query-store v2 enc1 gen1\n").unwrap();
        assert!(matches!(
            ScanStore::inspect(&other),
            Err(MergeError::Incompatible { .. })
        ));
        for p in [path, stale, other] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn escape_roundtrip() {
        for text in ["plain", "a b@c%d", "héllo\nworld", "", PATH_PLACEHOLDER] {
            assert_eq!(unescape(&escape(text)).as_deref(), Some(text));
        }
        let escaped = escape("a b@c");
        assert!(!escaped.contains(' '));
        assert!(!escaped.contains('@'));
        assert_eq!(escape(PATH_PLACEHOLDER), "%01");
    }
}
