//! The persisted report cache: fingerprint → replayable module results.
//!
//! [`ScanStore`] is the second persistence layer of incremental re-scan,
//! sibling to the query-level
//! [`DiskQueryStore`](stack_solver::DiskQueryStore). Where the query store
//! makes a repeated *query* free, the scan store makes a repeated *module*
//! free: a module whose canonical fingerprint
//! ([`module_fingerprint`](crate::fingerprint::module_fingerprint)) is
//! already recorded replays its saved [`BugReport`]s — in their original
//! stream order — without issuing a single solver query, and is counted as
//! skipped ([`CheckStats::modules_skipped`](crate::CheckStats)).
//!
//! The file discipline is the one the query store established:
//!
//! * **versioned header** — format version,
//!   [`ENCODING_REVISION`](stack_solver::ENCODING_REVISION), and
//!   [`FINGERPRINT_REVISION`]; any mismatch (or any malformed line)
//!   discards the whole file and [`was_invalidated`] reports it. The
//!   fingerprints additionally bake both revisions and the
//!   semantics-relevant config knobs into their own bits, so even a
//!   same-format file can never replay reports computed under different
//!   semantics.
//! * **atomic saves** — serialize to a pid-suffixed temp file, rename over
//!   the target; a crash mid-save never leaves a truncated store.
//! * **byte-determinism** — entries sorted by fingerprint, reports kept in
//!   their recorded stream order; saving the same logical store twice
//!   produces byte-identical files.
//!
//! ## Format
//!
//! ```text
//! stack-scan-store v1 enc1 fpr1
//! M <fp> f<functions> r<reports>
//! R <alg> <line> <cg> <function> <file> <description> u <kind>@<loc> ...
//! ```
//!
//! `M` opens one module entry (fingerprint in lower-case hex, function
//! count, report count); exactly `r` `R` lines follow, one per report in
//! stream order. String fields are percent-escaped so they never contain
//! whitespace or `%`.
//!
//! [`was_invalidated`]: ScanStore::was_invalidated

use crate::fingerprint::{ModuleFingerprint, FINGERPRINT_REVISION};
use crate::report::{Algorithm, BugReport, UbSource};
use crate::ubcond::UbKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk layout version of the scan-store file. Bump when the syntax
/// changes.
pub const SCAN_STORE_FORMAT_VERSION: u32 = 1;

/// The replayable record of one analyzed module.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleRecord {
    /// Functions the module contained when analyzed (replayed into
    /// [`CheckStats::functions`](crate::CheckStats)).
    pub functions: usize,
    /// The module's surviving reports, in stream order.
    pub reports: Vec<BugReport>,
}

/// Hit/miss counters of a scan store (lifetime of this instance).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStoreStats {
    /// Lookups answered from the store (modules skipped).
    pub hits: u64,
    /// Lookups that missed (modules analyzed and recorded).
    pub misses: u64,
    /// Module records currently stored.
    pub entries: u64,
}

/// A disk-backed fingerprint → module-record table. Shared across the scan
/// pipeline's file-level workers through an `Arc`, so all methods take
/// `&self`.
#[derive(Debug)]
pub struct ScanStore {
    path: PathBuf,
    records: Mutex<HashMap<ModuleFingerprint, ModuleRecord>>,
    hits: AtomicU64,
    misses: AtomicU64,
    loaded: u64,
    invalidated: bool,
}

impl ScanStore {
    /// The header line a store written by this binary carries.
    fn header() -> String {
        format!(
            "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc{} fpr{FINGERPRINT_REVISION}",
            stack_solver::ENCODING_REVISION
        )
    }

    /// Open a store backed by `path`, loading every persisted record. A
    /// missing file yields an empty store; a mismatched header or any
    /// malformed content discards the file wholesale
    /// ([`was_invalidated`](Self::was_invalidated) reports it). Only I/O
    /// failures are errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<ScanStore> {
        let path = path.into();
        let mut store = ScanStore {
            path,
            records: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loaded: 0,
            invalidated: false,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        match parse_store(&text) {
            Some(records) => {
                store.loaded = records.len() as u64;
                *store.records.get_mut().unwrap() = records;
            }
            None => store.invalidated = true,
        }
        Ok(store)
    }

    /// Look up the record for a fingerprint, counting a hit or miss.
    pub fn lookup(&self, fp: ModuleFingerprint) -> Option<ModuleRecord> {
        let found = self.records.lock().unwrap().get(&fp).cloned();
        match found {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a freshly analyzed module. First insert wins (records for one
    /// fingerprint are interchangeable by construction).
    pub fn insert(&self, fp: ModuleFingerprint, record: ModuleRecord) {
        self.records.lock().unwrap().entry(fp).or_insert(record);
    }

    /// Write every record back to the backing file (temp file + rename, so a
    /// crash never truncates the store; entries sorted by fingerprint, so
    /// saving the same logical store twice is byte-identical). Returns the
    /// number of module records written.
    pub fn save(&self) -> io::Result<usize> {
        let mut entries: Vec<(ModuleFingerprint, ModuleRecord)> = self
            .records
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        entries.sort_by_key(|(fp, _)| *fp);
        let mut out = Self::header();
        out.push('\n');
        for (fp, record) in &entries {
            let _ = writeln!(
                out,
                "M {fp:032x} f{} r{}",
                record.functions,
                record.reports.len()
            );
            for report in &record.reports {
                write_report(&mut out, report);
            }
        }
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(entries.len())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ScanStoreStats {
        ScanStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.records.lock().unwrap().len() as u64,
        }
    }

    /// Number of module records loaded from disk at [`open`](Self::open).
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// Whether `open` found a file it had to discard (written by a different
    /// format/encoding/fingerprint revision, or malformed).
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Serialize one report as an `R` line.
fn write_report(out: &mut String, report: &BugReport) {
    let _ = write!(
        out,
        "R {} {} {} {} {} {}",
        algorithm_tag(report.algorithm),
        report.line,
        u8::from(report.compiler_generated),
        escape(&report.function),
        escape(&report.file),
        escape(&report.description)
    );
    for src in &report.ub_sources {
        let _ = write!(
            out,
            " u {}@{}",
            src.kind.short_name(),
            escape(&src.location)
        );
    }
    out.push('\n');
}

/// Parse a whole store file. `None` means "discard everything": wrong
/// header or any malformed line (a partially trusted cache is worse than an
/// empty one).
fn parse_store(text: &str) -> Option<HashMap<ModuleFingerprint, ModuleRecord>> {
    let mut lines = text.lines();
    if lines.next()? != ScanStore::header() {
        return None;
    }
    let mut records = HashMap::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("M ")?;
        let mut parts = rest.split(' ');
        let fp = u128::from_str_radix(parts.next()?, 16).ok()?;
        let functions: usize = parts.next()?.strip_prefix('f')?.parse().ok()?;
        let nreports: usize = parts.next()?.strip_prefix('r')?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        let mut reports = Vec::with_capacity(nreports);
        for _ in 0..nreports {
            reports.push(parse_report(lines.next()?)?);
        }
        records.insert(fp, ModuleRecord { functions, reports });
    }
    Some(records)
}

/// Parse one `R` line back into a report.
fn parse_report(line: &str) -> Option<BugReport> {
    let rest = line.strip_prefix("R ")?;
    let mut parts = rest.split(' ');
    let algorithm = parse_algorithm(parts.next()?)?;
    let line_no: u32 = parts.next()?.parse().ok()?;
    let compiler_generated = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let function = unescape(parts.next()?)?;
    let file = unescape(parts.next()?)?;
    let description = unescape(parts.next()?)?;
    let mut ub_sources = Vec::new();
    while let Some(marker) = parts.next() {
        if marker != "u" {
            return None;
        }
        let (kind_text, loc_text) = parts.next()?.split_once('@')?;
        let kind = parse_ub_kind(kind_text)?;
        ub_sources.push(UbSource {
            kind,
            location: unescape(loc_text)?,
        });
    }
    Some(BugReport {
        function,
        file,
        line: line_no,
        algorithm,
        description,
        ub_sources,
        compiler_generated,
    })
}

/// Stable one-word tag per algorithm (round-tripped by
/// [`parse_algorithm`]).
fn algorithm_tag(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Elimination => "elim",
        Algorithm::SimplifyBoolean => "bool",
        Algorithm::SimplifyAlgebra => "algebra",
    }
}

fn parse_algorithm(tag: &str) -> Option<Algorithm> {
    match tag {
        "elim" => Some(Algorithm::Elimination),
        "bool" => Some(Algorithm::SimplifyBoolean),
        "algebra" => Some(Algorithm::SimplifyAlgebra),
        _ => None,
    }
}

/// Invert [`UbKind::short_name`] (the Figure 9 column labels, already
/// unique).
fn parse_ub_kind(tag: &str) -> Option<UbKind> {
    UbKind::all()
        .iter()
        .copied()
        .find(|k| k.short_name() == tag)
}

/// Percent-escape a string so it never contains whitespace, `@`, or `%`
/// (the characters the line format relies on).
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'%' | b'@' => {
                let _ = write!(out, "%{byte:02x}");
            }
            b if b.is_ascii_graphic() => out.push(b as char),
            b => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

/// Invert [`escape`]. `None` on malformed escapes or invalid UTF-8.
fn unescape(text: &str) -> Option<String> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "stack-scan-store-{tag}-{}-{}.ss",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_report(line: u32) -> BugReport {
        BugReport {
            function: "tun chr/poll".to_string(), // space + slash exercise escaping
            file: "drivers/net@tun.c".to_string(),
            line,
            algorithm: Algorithm::Elimination,
            description: "code is reachable only by inputs that trigger UB; 100% gone".to_string(),
            ub_sources: vec![
                UbSource {
                    kind: UbKind::NullPointerDereference,
                    location: "tun.c:3".to_string(),
                },
                UbSource {
                    kind: UbKind::SignedIntegerOverflow,
                    location: "tun.c:9".to_string(),
                },
            ],
            compiler_generated: line.is_multiple_of(2),
        }
    }

    #[test]
    fn roundtrip_preserves_records_and_report_order() {
        let path = temp_path("roundtrip");
        let store = ScanStore::open(&path).unwrap();
        store.insert(
            7,
            ModuleRecord {
                functions: 3,
                reports: vec![sample_report(5), sample_report(2)],
            },
        );
        store.insert(
            u128::MAX,
            ModuleRecord {
                functions: 1,
                reports: Vec::new(),
            },
        );
        assert_eq!(store.save().unwrap(), 2);

        let reloaded = ScanStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 2);
        assert!(!reloaded.was_invalidated());
        let record = reloaded.lookup(7).expect("record survives");
        assert_eq!(record.functions, 3);
        assert_eq!(
            record.reports,
            vec![sample_report(5), sample_report(2)],
            "reports replay in their recorded stream order"
        );
        assert_eq!(reloaded.lookup(u128::MAX).unwrap().reports.len(), 0);
        assert!(reloaded.lookup(8).is_none());
        let stats = reloaded.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_byte_deterministic() {
        let path = temp_path("deterministic");
        let store = ScanStore::open(&path).unwrap();
        for fp in [9u128, 1, 4] {
            store.insert(
                fp,
                ModuleRecord {
                    functions: fp as usize,
                    reports: vec![sample_report(fp as u32)],
                },
            );
        }
        store.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let reloaded = ScanStore::open(&path).unwrap();
        reloaded.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_revision_and_malformed_content_self_invalidate() {
        let bad_headers = [
            "stack-scan-store v0 enc1 fpr1\n".to_string(),
            format!(
                "stack-scan-store v{SCAN_STORE_FORMAT_VERSION} enc999 fpr{FINGERPRINT_REVISION}\n"
            ),
        ];
        for header in &bad_headers {
            let path = temp_path("stale");
            std::fs::write(&path, format!("{header}M 1 f1 r0\n")).unwrap();
            let store = ScanStore::open(&path).unwrap();
            assert!(store.was_invalidated(), "header {header:?}");
            assert_eq!(store.loaded_entries(), 0);
            std::fs::remove_file(&path).unwrap();
        }
        for body in [
            "garbage\n",
            "M nothex f1 r0\n",
            "M 1 f1 r1\n", // missing R line
            "M 1 f1 r1\nR wat 1 0 f g d\n",
        ] {
            let path = temp_path("malformed");
            std::fs::write(&path, format!("{}\n{body}", ScanStore::header())).unwrap();
            let store = ScanStore::open(&path).unwrap();
            assert!(store.was_invalidated(), "body {body:?}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = temp_path("missing");
        let store = ScanStore::open(&path).unwrap();
        assert_eq!(store.loaded_entries(), 0);
        assert!(!store.was_invalidated());
    }

    #[test]
    fn escape_roundtrip() {
        for text in ["plain", "a b@c%d", "héllo\nworld", ""] {
            assert_eq!(unescape(&escape(text)).as_deref(), Some(text));
        }
        let escaped = escape("a b@c");
        assert!(!escaped.contains(' '));
        assert!(!escaped.contains('@'));
    }
}
