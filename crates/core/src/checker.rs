//! The STACK checker: solver-based identification of unstable code.
//!
//! This implements the paper's two algorithms (§3.2) with the per-function
//! approximations of §4.4:
//!
//! * **Elimination** (Figure 5): a fragment whose reachability condition is
//!   satisfiable on its own but unsatisfiable in conjunction with the
//!   well-defined program assumption Δ over its dominators is unstable — a
//!   compiler may delete it.
//! * **Simplification** (Figure 6): an expression that is not trivially
//!   constant but becomes equal to an oracle-proposed simpler form under Δ is
//!   unstable — a compiler may rewrite it. The boolean oracle proposes
//!   `true`/`false`; the algebra oracle cancels common terms
//!   (`p + x < p  ⇒  x < 0`).
//!
//! Each report carries the minimal set of UB conditions that makes the query
//! unsatisfiable, computed with the greedy algorithm of Figure 8.

use crate::encoder::FunctionEncoder;
use crate::report::{origin_info, Algorithm, BugReport, UbSource};
use crate::ubcond::{collect_ub_conditions, UbCondition};
use stack_ir::{CmpPred, Function, InstKind, Module, Operand, Origin};
use stack_solver::{Budget, BvSolver, CacheStats, QueryCache, QueryResult, SolverStats, TermId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Checker configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Per-query solver budget in propagations (the deterministic analogue of
    /// the paper's 5-second query timeout, §6.4).
    pub query_budget: u64,
    /// Whether to keep reports whose unstable fragment was produced by a
    /// macro expansion or inlining (the paper suppresses them, §4.2).
    pub report_compiler_generated: bool,
    /// Worker threads for [`Checker::check_module`]. `None` uses the
    /// machine's available parallelism; `Some(1)` preserves the sequential
    /// behavior exactly. Per-function checking (§4.4) makes every function's
    /// queries independent, so the driver scales near-linearly.
    pub threads: Option<usize>,
    /// Whether to memoize solver queries in a cache shared across functions,
    /// modules, and worker threads (structurally identical queries are
    /// answered without re-entering the SAT core).
    pub query_cache: bool,
    /// Whether to solve incrementally: one persistent SAT instance per
    /// function (per worker), with every UB-condition negation registered as
    /// an assumption literal, so the Figure 8 minimal-UB-set loop toggles
    /// assumptions on an already-encoded formula instead of re-bit-blasting
    /// each near-identical query. Composes with `query_cache` (the cache
    /// still answers structurally repeated queries across functions; the
    /// instance absorbs the misses) and with `threads` (each worker's solver
    /// owns its own instances).
    pub incremental: bool,
}

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig {
            query_budget: 2_000_000,
            report_compiler_generated: false,
            threads: None,
            query_cache: true,
            incremental: true,
        }
    }
}

/// Aggregate statistics of a checker run (drives the Figure 16 columns).
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Number of functions analyzed.
    pub functions: usize,
    /// Total solver queries issued (merged across worker threads).
    pub queries: u64,
    /// Queries that exhausted their budget (merged across worker threads).
    pub timeouts: u64,
    /// Queries answered from the shared query cache.
    pub cache_hits: u64,
    /// Queries that consulted the cache and missed.
    pub cache_misses: u64,
    /// Queries decided by a persistent incremental solver instance (merged
    /// across worker threads; 0 when `CheckerConfig::incremental` is off).
    pub incremental_queries: u64,
    /// Clause slots reused by incremental queries instead of re-blasted
    /// (summed over queries; the clause-reuse counter of the solver layer).
    pub reused_clauses: u64,
    /// Worker threads the run actually used.
    pub threads: usize,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
    /// Reports per algorithm.
    pub by_algorithm: HashMap<Algorithm, usize>,
}

impl CheckStats {
    /// Fraction of queries answered from the cache (0 when none consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Result of checking a module.
#[derive(Clone, Debug, Default)]
pub struct CheckResult {
    pub reports: Vec<BugReport>,
    pub stats: CheckStats,
}

impl CheckResult {
    /// Reports grouped by the UB kinds they involve (Figure 18's breakdown).
    pub fn reports_by_ub_kind(&self) -> HashMap<crate::ubcond::UbKind, usize> {
        let mut map = HashMap::new();
        for r in &self.reports {
            let kinds: HashSet<_> = r.ub_sources.iter().map(|s| s.kind).collect();
            for k in kinds {
                *map.entry(k).or_insert(0) += 1;
            }
        }
        map
    }
}

/// The checker.
///
/// One `Checker` owns one query cache: every [`check_module`] /
/// [`check_source`] call through the same instance shares it, so repeated
/// idioms are answered from memory across files and modules (the synthetic
/// Debian population re-instantiates the same unstable patterns thousands of
/// times).
///
/// [`check_module`]: Checker::check_module
/// [`check_source`]: Checker::check_source
#[derive(Debug)]
pub struct Checker {
    config: CheckerConfig,
    cache: Arc<QueryCache>,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker::with_config(CheckerConfig::default())
    }
}

impl Checker {
    /// A checker with the default configuration.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckerConfig) -> Checker {
        Checker {
            config,
            cache: Arc::new(QueryCache::new()),
        }
    }

    /// Counters of the checker-owned query cache (lifetime of this instance).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A solver wired to this checker's budget, (if enabled) query cache,
    /// and (if enabled) incremental solving mode.
    fn make_solver(&self) -> BvSolver {
        let mut solver = BvSolver::with_budget(Budget::propagations(self.config.query_budget));
        if self.config.query_cache {
            solver.set_cache(Some(Arc::clone(&self.cache)));
        }
        solver.set_incremental(self.config.incremental);
        solver
    }

    /// Number of worker threads a `check_module` run will use for a module
    /// of `functions` functions.
    fn resolve_threads(&self, functions: usize) -> usize {
        self.config
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .clamp(1, functions.max(1))
    }

    /// Compile a mini-C source string, run the analysis pre-pass, and check it.
    pub fn check_source(&self, src: &str, file: &str) -> Result<CheckResult, stack_minic::Diag> {
        let mut module = stack_minic::compile(src, file)?;
        stack_opt::optimize_for_analysis(&mut module);
        Ok(self.check_module(&module))
    }

    /// Check every function of an (already optimized-for-analysis) module.
    ///
    /// Functions are distributed over [`CheckerConfig::threads`] scoped
    /// worker threads pulling from a shared atomic work index (dynamic
    /// self-scheduling, so a thread that drew cheap functions steals the
    /// remaining work of slower ones). Each worker owns a private solver —
    /// and therefore private `TermPool`s via its per-function encoders —
    /// while sharing the checker-wide query cache. Results are stitched back
    /// in function order, so the report list is identical to a sequential
    /// run's regardless of thread count or scheduling. (On workloads where
    /// queries hit the per-query budget, that guarantee additionally
    /// requires `incremental: false`: an incremental instance's CNF depends
    /// on which of its queries were answered by the shared cache first, so
    /// budget-boundary `Unknown` outcomes can vary with thread timing.)
    pub fn check_module(&self, module: &Module) -> CheckResult {
        let start = Instant::now();
        let functions = module.functions();
        let threads = self.resolve_threads(functions.len());
        let (mut per_function, solver_stats) = if threads <= 1 {
            let mut solver = self.make_solver();
            let per_function: Vec<Vec<BugReport>> = functions
                .iter()
                .map(|func| self.check_function(func, &mut solver))
                .collect();
            (per_function, solver.stats())
        } else {
            self.check_functions_parallel(functions, threads)
        };
        let mut reports: Vec<BugReport> = per_function.drain(..).flatten().collect();
        // Deduplicate identical (location, algorithm) reports.
        let mut seen = HashSet::new();
        reports
            .retain(|r: &BugReport| seen.insert((r.location(), r.function.clone(), r.algorithm)));
        if !self.config.report_compiler_generated {
            reports.retain(|r| !r.compiler_generated);
        }
        let mut by_algorithm: HashMap<Algorithm, usize> = HashMap::new();
        for r in &reports {
            *by_algorithm.entry(r.algorithm).or_insert(0) += 1;
        }
        let stats = CheckStats {
            functions: functions.len(),
            queries: solver_stats.queries,
            timeouts: solver_stats.timeouts,
            cache_hits: solver_stats.cache_hits,
            cache_misses: solver_stats.cache_misses,
            incremental_queries: solver_stats.incremental_queries,
            reused_clauses: solver_stats.reused_clauses,
            threads,
            elapsed: start.elapsed(),
            by_algorithm,
        };
        CheckResult { reports, stats }
    }

    /// The parallel driver: `threads` scoped workers draw function indices
    /// from a shared counter and return `(index, reports)` pairs plus their
    /// private solver's statistics, which are merged field-by-field (so the
    /// aggregate equals what one sequential solver would have counted).
    fn check_functions_parallel(
        &self,
        functions: &[Function],
        threads: usize,
    ) -> (Vec<Vec<BugReport>>, SolverStats) {
        let next = AtomicUsize::new(0);
        let mut per_function: Vec<Vec<BugReport>> = vec![Vec::new(); functions.len()];
        let mut solver_stats = SolverStats::default();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut solver = self.make_solver();
                        let mut local: Vec<(usize, Vec<BugReport>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(func) = functions.get(i) else { break };
                            local.push((i, self.check_function(func, &mut solver)));
                        }
                        (local, solver.stats())
                    })
                })
                .collect();
            for worker in workers {
                let (local, stats) = worker.join().expect("checker worker panicked");
                solver_stats.merge(&stats);
                for (i, reports) in local {
                    per_function[i] = reports;
                }
            }
        });
        (per_function, solver_stats)
    }

    /// Check a single function.
    pub fn check_function(&self, func: &Function, solver: &mut BvSolver) -> Vec<BugReport> {
        let mut enc = FunctionEncoder::new(func);
        let ub_conds = collect_ub_conditions(func, &mut enc);
        let mut reports = Vec::new();

        // Negate each UB condition exactly once, in condition order:
        // `neg_terms[i]` is the Δ conjunct "¬ub_conds[i]" that every query
        // below assumes for the conditions dominating its fragment. In
        // incremental mode each negation becomes an assumption literal on the
        // function's persistent solver instance the first time a query uses
        // it — encoded once (blaster-memoized), then merely toggled by every
        // later fragment query and Figure 8 minimization iteration.
        let neg_terms: Vec<TermId> = ub_conds.iter().map(|c| enc.negation(c.term)).collect();

        // Index UB conditions by the instruction they attach to.
        let mut by_inst: HashMap<stack_ir::InstId, Vec<usize>> = HashMap::new();
        for (i, c) in ub_conds.iter().enumerate() {
            by_inst.entry(c.inst).or_default().push(i);
        }

        // --- Elimination over basic blocks (Figure 5) -------------------------
        for block in func.block_ids() {
            if block == func.entry() || !enc.cfg.is_reachable(block) {
                continue;
            }
            let reach = enc.reach_term(block);
            match solver.check(&enc.pool, &[reach]) {
                QueryResult::Unsat | QueryResult::Unknown => continue, // trivially dead / timeout
                QueryResult::Sat(_) => {}
            }
            // Δ over the dominators of the block (strictly dominating blocks).
            let dom_conds = dominating_conditions(func, &enc, &ub_conds, &by_inst, block, None);
            if dom_conds.is_empty() {
                continue;
            }
            let mut assertions = vec![reach];
            assertions.extend(dom_conds.iter().map(|&ci| neg_terms[ci]));
            if solver.check(&enc.pool, &assertions).is_unsat() {
                let minimal = minimal_ub_set(&enc.pool, solver, &[reach], &dom_conds, &neg_terms);
                let origin = block_report_origin(func, block);
                reports.push(build_report(
                    func,
                    &origin,
                    Algorithm::Elimination,
                    format!(
                        "code in block {} is reachable only by inputs that trigger undefined behavior; \
                         an optimizing compiler may delete it",
                        func.block(block)
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("{block}"))
                    ),
                    &minimal,
                    &ub_conds,
                ));
            }
        }

        // --- Simplification over comparisons (Figure 6) -----------------------
        for (block, inst_id) in func.all_insts() {
            if !enc.cfg.is_reachable(block) {
                continue;
            }
            let InstKind::Cmp { pred, lhs, rhs } = func.inst(inst_id).kind.clone() else {
                continue;
            };
            let index = func.position_in_block(inst_id).map(|(_, i)| i).unwrap_or(0);
            let e_term = enc.bool_term(Operand::Inst(inst_id));
            let reach = enc.reach_term(block);
            let dom_conds =
                dominating_conditions(func, &enc, &ub_conds, &by_inst, block, Some(index));
            if dom_conds.is_empty() {
                continue;
            }
            let negations: Vec<TermId> = dom_conds.iter().map(|&ci| neg_terms[ci]).collect();

            // Boolean oracle: propose `true`, then `false`.
            let mut reported = false;
            for proposed in [true, false] {
                let prop = enc.pool.bool_const(proposed);
                let diff = enc.pool.xor(e_term, prop);
                match solver.check(&enc.pool, &[diff, reach]) {
                    QueryResult::Unsat => break, // trivially constant: not unstable
                    QueryResult::Unknown => break,
                    QueryResult::Sat(_) => {}
                }
                let mut assertions = vec![diff, reach];
                assertions.extend(&negations);
                if solver.check(&enc.pool, &assertions).is_unsat() {
                    let minimal =
                        minimal_ub_set(&enc.pool, solver, &[diff, reach], &dom_conds, &neg_terms);
                    let origin = func.inst(inst_id).origin.clone();
                    reports.push(build_report(
                        func,
                        &origin,
                        Algorithm::SimplifyBoolean,
                        format!(
                            "check always evaluates to {proposed} under the well-defined program \
                             assumption; an optimizing compiler may discard it"
                        ),
                        &minimal,
                        &ub_conds,
                    ));
                    reported = true;
                    break;
                }
            }
            if reported {
                continue;
            }

            // Algebra oracle: cancel a common term on both sides.
            if let Some((proposed_term, description)) =
                algebra_proposal(&mut enc, func, pred, lhs, rhs)
            {
                let diff = enc.pool.xor(e_term, proposed_term);
                if let QueryResult::Sat(_) = solver.check(&enc.pool, &[diff, reach]) {
                    let mut assertions = vec![diff, reach];
                    assertions.extend(&negations);
                    if solver.check(&enc.pool, &assertions).is_unsat() {
                        let minimal = minimal_ub_set(
                            &enc.pool,
                            solver,
                            &[diff, reach],
                            &dom_conds,
                            &neg_terms,
                        );
                        let origin = func.inst(inst_id).origin.clone();
                        reports.push(build_report(
                            func,
                            &origin,
                            Algorithm::SimplifyAlgebra,
                            description,
                            &minimal,
                            &ub_conds,
                        ));
                    }
                }
            }
        }

        reports
    }
}

/// UB-condition indices attached to the dominators of a program point.
/// `index = None` means "the start of the block" (used for block
/// elimination); `Some(i)` means the instruction at position `i`.
fn dominating_conditions(
    func: &Function,
    enc: &FunctionEncoder<'_>,
    ub_conds: &[UbCondition],
    by_inst: &HashMap<stack_ir::InstId, Vec<usize>>,
    block: stack_ir::BlockId,
    index: Option<usize>,
) -> Vec<usize> {
    let mut out = Vec::new();
    let dom_insts = match index {
        Some(i) => enc.dom.dominating_insts(func, block, i),
        None => {
            let mut v = Vec::new();
            for d in enc.dom.dominators(block) {
                if d == block {
                    continue;
                }
                v.extend(func.block(d).insts.iter().copied());
            }
            v
        }
    };
    for inst in dom_insts {
        if let Some(indices) = by_inst.get(&inst) {
            out.extend(indices.iter().copied());
        }
    }
    let _ = ub_conds;
    out
}

/// The greedy minimal-UB-set computation of Figure 8: drop each condition in
/// turn; if the query becomes satisfiable, that condition is essential.
///
/// Every iteration asserts the same `base` fragment encoding plus all but one
/// of the precomputed condition negations (`neg_terms[ci]`, indexed like
/// `dom_conds`). In incremental mode these terms are already registered as
/// assumption literals on the function's persistent solver instance, so each
/// iteration is a `check_assuming` toggle rather than a fresh bit-blast; the
/// query cache still short-circuits iterations repeated across structurally
/// identical functions.
fn minimal_ub_set(
    pool: &stack_solver::TermPool,
    solver: &mut BvSolver,
    base: &[TermId],
    dom_conds: &[usize],
    neg_terms: &[TermId],
) -> Vec<usize> {
    let mut essential = Vec::new();
    for &skip in dom_conds {
        let mut assertions = base.to_vec();
        assertions.extend(
            dom_conds
                .iter()
                .filter(|&&ci| ci != skip)
                .map(|&ci| neg_terms[ci]),
        );
        match solver.check(pool, &assertions) {
            QueryResult::Sat(_) | QueryResult::Unknown => essential.push(skip),
            QueryResult::Unsat => {}
        }
    }
    if essential.is_empty() {
        // Degenerate case (e.g. a single condition): keep everything.
        essential = dom_conds.to_vec();
    }
    essential
}

/// Propose a simpler expression by cancelling a common term on both sides of
/// a comparison (the algebra oracle).
fn algebra_proposal(
    enc: &mut FunctionEncoder<'_>,
    func: &Function,
    pred: CmpPred,
    lhs: Operand,
    rhs: Operand,
) -> Option<(TermId, String)> {
    // Pointer form: (p + x) pred p  ==>  x pred' 0 with signed ordering.
    if let Operand::Inst(id) = lhs {
        if let InstKind::PtrAdd {
            ptr,
            offset,
            elem_size,
            ..
        } = func.inst(id).kind
        {
            if ptr == rhs {
                let off = enc.scaled_offset(offset, elem_size);
                let zero = enc.pool.bv_const(64, 0);
                let term = match pred {
                    CmpPred::Ult | CmpPred::Slt => enc.pool.bv_slt(off, zero),
                    CmpPred::Ule | CmpPred::Sle => enc.pool.bv_sle(off, zero),
                    CmpPred::Ugt | CmpPred::Sgt => enc.pool.bv_sgt(off, zero),
                    CmpPred::Uge | CmpPred::Sge => enc.pool.bv_sge(off, zero),
                    CmpPred::Eq => enc.pool.eq(off, zero),
                    CmpPred::Ne => enc.pool.ne(off, zero),
                };
                return Some((
                    term,
                    "pointer check `p + x < p` can be simplified to a sign test on `x`; \
                     compilers perform the same rewrite"
                        .to_string(),
                ));
            }
        }
        // Integer form: (x + y) pred x  ==>  y pred 0.
        if let InstKind::Bin {
            op: stack_ir::BinOp::Add,
            lhs: a,
            rhs: b,
        } = func.inst(id).kind
        {
            let other = if a == rhs {
                Some(b)
            } else if b == rhs {
                Some(a)
            } else {
                None
            };
            if let Some(y) = other {
                let yt = enc.bv_term(y);
                let width = enc.pool.width(yt);
                let zero = enc.pool.bv_const(width, 0);
                let term = match pred {
                    CmpPred::Slt | CmpPred::Ult => enc.pool.bv_slt(yt, zero),
                    CmpPred::Sle | CmpPred::Ule => enc.pool.bv_sle(yt, zero),
                    CmpPred::Sgt | CmpPred::Ugt => enc.pool.bv_sgt(yt, zero),
                    CmpPred::Sge | CmpPred::Uge => enc.pool.bv_sge(yt, zero),
                    CmpPred::Eq => enc.pool.eq(yt, zero),
                    CmpPred::Ne => enc.pool.ne(yt, zero),
                };
                return Some((
                    term,
                    "comparison `x + y < x` can be simplified to a sign test on `y`".to_string(),
                ));
            }
        }
    }
    None
}

/// Pick a representative origin for a block that may be eliminated: its first
/// instruction, or the condition of the branch that leads to it.
fn block_report_origin(func: &Function, block: stack_ir::BlockId) -> Origin {
    if let Some(&first) = func.block(block).insts.first() {
        return func.inst(first).origin.clone();
    }
    // Empty block (e.g. a lone `return`): walk predecessors until we find the
    // branch condition (or the last instruction) that decides whether this
    // block runs, so the report points at the check being bypassed.
    let mut visited = std::collections::HashSet::new();
    let mut work = vec![block];
    while let Some(cur) = work.pop() {
        if !visited.insert(cur) {
            continue;
        }
        for b in func.block_ids() {
            let term = &func.block(b).terminator;
            if !term.successors().contains(&cur) {
                continue;
            }
            if let stack_ir::Terminator::CondBr {
                cond: Operand::Inst(id),
                ..
            } = term
            {
                return func.inst(*id).origin.clone();
            }
            if let Some(&last) = func.block(b).insts.last() {
                return func.inst(last).origin.clone();
            }
            work.push(b);
        }
    }
    Origin::unknown()
}

fn build_report(
    func: &Function,
    origin: &Origin,
    algorithm: Algorithm,
    description: String,
    minimal: &[usize],
    ub_conds: &[UbCondition],
) -> BugReport {
    let (file, line, compiler_generated) = origin_info(origin);
    let mut ub_sources: Vec<UbSource> = minimal
        .iter()
        .map(|&i| UbSource {
            kind: ub_conds[i].kind,
            location: format!(
                "{}:{}",
                ub_conds[i].origin.loc.file, ub_conds[i].origin.loc.line
            ),
        })
        .collect();
    ub_sources.sort_by(|a, b| (a.kind, &a.location).cmp(&(b.kind, &b.location)));
    ub_sources.dedup();
    BugReport {
        function: func.name.clone(),
        file,
        line,
        algorithm,
        description,
        ub_sources,
        compiler_generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ubcond::UbKind;

    fn check(src: &str) -> CheckResult {
        Checker::new().check_source(src, "test.c").unwrap()
    }

    #[test]
    fn figure2_null_check_is_unstable() {
        let result = check(
            "int tun_chr_poll(struct tun_struct *tun) {\n\
               long sk = tun->sk;\n\
               if (!tun) return 1;\n\
               return 0;\n\
             }",
        );
        assert!(!result.reports.is_empty(), "expected a report");
        assert!(result
            .reports
            .iter()
            .any(|r| r.involves(UbKind::NullPointerDereference)));
        // The elimination algorithm flags the return under the check.
        assert!(result
            .reports
            .iter()
            .any(|r| r.algorithm == Algorithm::Elimination));
    }

    #[test]
    fn figure1_pointer_overflow_check_is_unstable() {
        let result = check(
            "int check(char *buf, char *buf_end, unsigned int len) {\n\
               if (buf + len >= buf_end) return -1;\n\
               if (buf + len < buf) return -1;\n\
               return 0;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::PointerOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn signed_overflow_check_is_unstable_but_unsigned_is_not() {
        let signed_result = check("int f(int x) { if (x + 100 < x) return 1; return 0; }");
        assert!(
            signed_result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::SignedIntegerOverflow)),
            "{:?}",
            signed_result.reports
        );
        let unsigned_result =
            check("int f(unsigned int x) { if (x + 100 < x) return 1; return 0; }");
        assert!(
            unsigned_result.reports.is_empty(),
            "unsigned wraparound is well defined: {:?}",
            unsigned_result.reports
        );
    }

    #[test]
    fn stable_code_produces_no_reports() {
        let result = check(
            "int f(int x, int y) {\n\
               if (y == 0) return -1;\n\
               if (x > 1000) return -2;\n\
               return x / y;\n\
             }",
        );
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert!(result.stats.queries > 0);
    }

    #[test]
    fn macro_generated_checks_are_suppressed() {
        let src = "#define IS_VALID(p) (p != NULL)\n\
                   int f(char *p) {\n\
                     long v = *p;\n\
                     if (IS_VALID(p)) return 1;\n\
                     return 0;\n\
                   }";
        let default_result = check(src);
        assert!(
            default_result.reports.is_empty(),
            "macro-origin reports must be suppressed: {:?}",
            default_result.reports
        );
        let permissive = Checker::with_config(CheckerConfig {
            report_compiler_generated: true,
            ..CheckerConfig::default()
        });
        let all = permissive.check_source(src, "test.c").unwrap();
        assert!(!all.reports.is_empty());
    }

    #[test]
    fn abs_check_is_unstable() {
        let result = check("int f(int x) { if (abs(x) < 0) return 1; return 0; }");
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::AbsoluteValueOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn shift_check_is_unstable() {
        let result = check("int f(int x) { if (!(1 << x)) return 1; return 0; }");
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::OversizedShift)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn ffmpeg_algebra_simplification_is_reported() {
        let result = check(
            "int parse(char *data, char *data_end, int size) {\n\
               if (data + size >= data_end || data + size < data) return -1;\n\
               return 0;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.algorithm == Algorithm::SimplifyAlgebra),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn postgres_division_check_is_unstable() {
        let result = check(
            "int64_t int8div(int64_t arg1, int64_t arg2) {\n\
               if (arg2 == 0) return -1;\n\
               int64_t result = arg1 / arg2;\n\
               if (arg2 == -1 && arg1 < 0 && result <= 0) return -2;\n\
               return result;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::SignedIntegerOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn minimal_ub_set_is_reported() {
        let result = check("int f(int *p) { int v = *p; if (!p) return 1; return v; }");
        let report = result
            .reports
            .iter()
            .find(|r| r.involves(UbKind::NullPointerDereference))
            .expect("expected a null-deref-based report");
        assert_eq!(report.ub_sources.len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let result = check("int f(int x) { if (x + 1 < x) return 1; return 0; }");
        assert_eq!(result.stats.functions, 1);
        assert!(result.stats.queries >= 2);
        assert_eq!(result.stats.timeouts, 0);
        assert!(result.stats.by_algorithm.values().sum::<usize>() >= 1);
        assert!(result.stats.threads >= 1);
    }

    /// A module with several functions, mixing unstable and stable code, so
    /// the parallel driver has real work to distribute.
    const MULTI_FUNCTION_SRC: &str = "\
        int f0(struct s *tun) { long sk = tun->sk; if (!tun) return 1; return 0; }\n\
        int f1(int x) { if (x + 100 < x) return 1; return 0; }\n\
        int f2(int x, int y) { if (y == 0) return -1; return x / y; }\n\
        int f3(char *buf, char *buf_end, unsigned int len) {\n\
          if (buf + len >= buf_end) return -1;\n\
          if (buf + len < buf) return -1;\n\
          return 0;\n\
        }\n\
        int f4(int x) { if (!(1 << x)) return 1; return 0; }\n\
        int f5(int x) { if (x + 100 < x) return 1; return 0; }\n";

    fn check_with(threads: Option<usize>, query_cache: bool) -> CheckResult {
        check_with_inc(threads, query_cache, true)
    }

    fn check_with_inc(threads: Option<usize>, query_cache: bool, incremental: bool) -> CheckResult {
        Checker::with_config(CheckerConfig {
            threads,
            query_cache,
            incremental,
            ..CheckerConfig::default()
        })
        .check_source(MULTI_FUNCTION_SRC, "multi.c")
        .unwrap()
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let sequential = check_with(Some(1), true);
        for threads in [2, 4] {
            let parallel = check_with(Some(threads), true);
            assert_eq!(
                format!("{:?}", sequential.reports),
                format!("{:?}", parallel.reports),
                "threads={threads}"
            );
            assert_eq!(sequential.stats.queries, parallel.stats.queries);
            assert_eq!(sequential.stats.timeouts, parallel.stats.timeouts);
        }
    }

    #[test]
    fn cache_disabled_matches_cache_enabled() {
        let cached = check_with(Some(1), true);
        let uncached = check_with(Some(1), false);
        assert_eq!(
            format!("{:?}", cached.reports),
            format!("{:?}", uncached.reports)
        );
        assert_eq!(uncached.stats.cache_hits, 0);
        assert_eq!(uncached.stats.cache_misses, 0);
        // f1 and f5 are structurally identical, so the cached run must
        // answer at least one query from memory.
        assert!(cached.stats.cache_hits > 0, "{:?}", cached.stats);
    }

    #[test]
    fn incremental_matches_non_incremental() {
        // Same reports and the same query count, with and without the cache,
        // sequential and parallel: incremental solving changes how a query is
        // decided, never what it decides.
        let baseline = check_with_inc(Some(1), false, false);
        for (threads, cache) in [(1, false), (1, true), (4, true)] {
            let incremental = check_with_inc(Some(threads), cache, true);
            assert_eq!(
                format!("{:?}", baseline.reports),
                format!("{:?}", incremental.reports),
                "threads={threads} cache={cache}"
            );
            assert_eq!(baseline.stats.queries, incremental.stats.queries);
        }
    }

    #[test]
    fn incremental_counters_accumulate() {
        let incremental = check_with_inc(Some(1), false, true);
        // Without the cache, every non-trivial query is decided on a
        // persistent instance; later queries against the same function must
        // reuse its clauses.
        assert!(
            incremental.stats.incremental_queries > 0,
            "{:?}",
            incremental.stats
        );
        assert!(
            incremental.stats.reused_clauses > 0,
            "{:?}",
            incremental.stats
        );
        let off = check_with_inc(Some(1), false, false);
        assert_eq!(off.stats.incremental_queries, 0);
        assert_eq!(off.stats.reused_clauses, 0);
    }

    #[test]
    fn cache_is_shared_across_check_calls() {
        let checker = Checker::new();
        let src = "int f(int x) { if (x + 1 < x) return 1; return 0; }";
        let first = checker.check_source(src, "a.c").unwrap();
        let second = checker.check_source(src, "b.c").unwrap();
        assert_eq!(first.reports.len(), second.reports.len());
        // The second pass re-issues structurally identical queries, so every
        // decided query hits the cache built by the first pass.
        assert!(
            second.stats.cache_hits >= first.stats.cache_hits,
            "first={:?} second={:?}",
            first.stats,
            second.stats
        );
        assert!(second.stats.cache_hits > 0);
        let cache = checker.cache_stats();
        assert_eq!(
            cache.hits + cache.misses,
            first.stats.cache_hits
                + first.stats.cache_misses
                + second.stats.cache_hits
                + second.stats.cache_misses
        );
    }
}
