//! The STACK checker: solver-based identification of unstable code.
//!
//! This implements the paper's two algorithms (§3.2) with the per-function
//! approximations of §4.4:
//!
//! * **Elimination** (Figure 5): a fragment whose reachability condition is
//!   satisfiable on its own but unsatisfiable in conjunction with the
//!   well-defined program assumption Δ over its dominators is unstable — a
//!   compiler may delete it.
//! * **Simplification** (Figure 6): an expression that is not trivially
//!   constant but becomes equal to an oracle-proposed simpler form under Δ is
//!   unstable — a compiler may rewrite it. The boolean oracle proposes
//!   `true`/`false`; the algebra oracle cancels common terms
//!   (`p + x < p  ⇒  x < 0`).
//!
//! Each report carries the minimal set of UB conditions that makes the query
//! unsatisfiable, computed with the greedy algorithm of Figure 8.
//!
//! The algorithms themselves live in [`crate::session`]: an
//! [`AnalysisSession`] is the long-lived layer (owning the query store, the
//! configuration, and aggregate statistics across modules), and the
//! [`Checker`] defined here is the historical one-shot wrapper over a
//! session, kept as the convenient entry point for single-file use.

use crate::report::{Algorithm, BugReport};
use crate::session::AnalysisSession;
use stack_ir::{Function, Module};
use stack_solver::{BvSolver, CacheStats};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Checker configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Per-query solver budget in propagations (the deterministic analogue of
    /// the paper's 5-second query timeout, §6.4). `0` means unlimited. A
    /// query that exhausts its budget degrades to `Unknown`, is counted in
    /// [`CheckStats::timeouts`], and is never cached or persisted; its
    /// module is counted in [`CheckStats::degraded_modules`].
    pub query_budget: u64,
    /// Whether to keep reports whose unstable fragment was produced by a
    /// macro expansion or inlining (the paper suppresses them, §4.2).
    pub report_compiler_generated: bool,
    /// Worker threads for [`Checker::check_module`]. `None` uses the
    /// machine's available parallelism; `Some(1)` preserves the sequential
    /// behavior exactly. Per-function checking (§4.4) makes every function's
    /// queries independent, so the driver scales near-linearly.
    pub threads: Option<usize>,
    /// Whether to memoize solver queries in a store shared across functions,
    /// modules, and worker threads (structurally identical queries are
    /// answered without re-entering the SAT core). The store is in-memory by
    /// default; [`AnalysisSession::with_store`] swaps in a disk-backed one.
    pub query_cache: bool,
    /// Whether to solve incrementally: one persistent SAT instance per
    /// function (per worker), with every UB-condition negation registered as
    /// an assumption literal, so the Figure 8 minimal-UB-set loop toggles
    /// assumptions on an already-encoded formula instead of re-bit-blasting
    /// each near-identical query. Composes with `query_cache` (the store
    /// still answers structurally repeated queries across functions; the
    /// instance absorbs the misses) and with `threads` (each worker's solver
    /// owns its own instances).
    pub incremental: bool,
    /// Whether the SAT core runs its pre/inprocessing layer: a one-shot
    /// simplification pass (failed-literal probing, subsumption and
    /// self-subsumption strengthening, and — for throwaway instances —
    /// bounded variable elimination) before solving, plus clause
    /// vivification between restarts and LBD-aware clause-database
    /// reduction during search. All simplification work is charged to
    /// `query_budget`, so degraded verdicts stay deterministic. Decided
    /// verdicts — and therefore reports — are identical with the layer on
    /// or off; off (`--no-preprocess`) restores the pre-LBD solver as the
    /// benchmark baseline.
    pub preprocess: bool,
    /// Incremental-instance granularity: `false` (default) shares one
    /// persistent SAT instance across a whole function; `true` starts a
    /// fresh instance per fragment. Sharing wins on the synthetic
    /// population (see `BENCH_checker.json`, `solver_speed`) because later
    /// fragments reuse the function's encoding and learned clauses;
    /// per-fragment stays reachable for workloads with very large
    /// functions where instance bloat could dominate. No effect unless
    /// `incremental` is on.
    pub fragment_instances: bool,
    /// Whether the SAT core memoizes assumption cores: every `Unsat` answer
    /// under assumptions extracts the final conflict's assumption core, any
    /// later query assuming a superset of a recorded core is answered
    /// `Unsat` in zero propagations, and the Figure 8 minimal-UB-set loop
    /// seeds its greedy search from the extracted core instead of toggling
    /// conditions blindly. Decided verdicts — and therefore reports — are
    /// identical with it on or off; off (`--no-core-cache`) restores the
    /// prior Unsat path as the benchmark baseline.
    pub core_cache: bool,
    /// Whether the SAT core runs hyper-binary resolution during its probing
    /// pass, materializing transitive implications as binary clauses. Off
    /// (`--no-hbr`) restores plain probing.
    pub hbr: bool,
}

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig {
            query_budget: 2_000_000,
            report_compiler_generated: false,
            threads: None,
            query_cache: true,
            incremental: true,
            preprocess: true,
            fragment_instances: false,
            core_cache: true,
            hbr: true,
        }
    }
}

/// Aggregate statistics of a checker run (drives the Figure 16 columns).
/// Also the unit of [`AnalysisSession`]'s cross-module aggregate: see
/// [`CheckStats::merge`].
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Number of modules these statistics cover (1 for a single
    /// `check_module` call; the number of modules checked so far for a
    /// session aggregate).
    pub modules: usize,
    /// Modules whose results were replayed from a persisted scan store
    /// (fingerprint hit) instead of analyzed — the incremental re-scan
    /// counter. Always ≤ `modules`; 0 outside scan-store-backed pipelines.
    pub modules_skipped: usize,
    /// Number of functions covered (analyzed or replayed).
    pub functions: usize,
    /// Functions whose reports were replayed from a persisted scan store
    /// (per-function replay-key hit) instead of analyzed — the
    /// function-granular incremental re-scan counter. Always ≤ `functions`;
    /// 0 outside scan-store-backed pipelines.
    pub functions_skipped: usize,
    /// Total solver queries issued (merged across worker threads).
    pub queries: u64,
    /// Degraded queries: queries that exhausted their propagation budget and
    /// were answered `Unknown` (merged across worker threads). The checker
    /// treats an `Unknown` conservatively — never a report, never cached,
    /// never persisted.
    pub timeouts: u64,
    /// Modules with at least one degraded (budget-exhausted) query. Such a
    /// module's report set reflects the budget, not just the module, so it
    /// is never recorded in the scan store. Always ≤ `modules`.
    pub degraded_modules: usize,
    /// Queries answered from the shared query store.
    pub cache_hits: u64,
    /// Queries that consulted the store and missed.
    pub cache_misses: u64,
    /// Total SAT-core propagations across all queries, including the
    /// propagation-equivalents charged for pre/inprocessing work (merged
    /// across worker threads). This is the deterministic currency solver
    /// budgets are denominated in, and the `solver_speed` benchmark's
    /// measure of raw solver work.
    pub propagations: u64,
    /// SAT-core propagations spent on queries that ended `Unsat` — the
    /// share of `propagations` the Unsat fast path attacks, and the
    /// denominator of the `speedup_unsat_vs_pr9` benchmark ratio.
    pub unsat_propagations: u64,
    /// Total SAT-core conflicts across all queries.
    pub conflicts: u64,
    /// Total SAT-core restarts across all queries.
    pub restarts: u64,
    /// Clauses learned by conflict analysis across all queries.
    pub learned_clauses: u64,
    /// Learned clauses evicted by LBD-aware clause-database reduction.
    pub deleted_clauses: u64,
    /// Sum of learn-time literal-block-distance values over all learned
    /// clauses; `lbd_sum / learned_clauses` is the average glue.
    pub lbd_sum: u64,
    /// Simplification steps performed by the solver's pre/inprocessing
    /// layer: failed literals asserted, clauses subsumed or strengthened,
    /// variables eliminated, learned clauses vivified.
    pub preprocess_eliminations: u64,
    /// Queries decided by a persistent incremental solver instance (merged
    /// across worker threads; 0 when `CheckerConfig::incremental` is off).
    pub incremental_queries: u64,
    /// Clause slots reused by incremental queries instead of re-blasted
    /// (summed over queries; the clause-reuse counter of the solver layer).
    pub reused_clauses: u64,
    /// Queries answered `Sat` (merged across worker threads). Together with
    /// `unsat_queries`, `timeouts`, and the cache/core counters this is the
    /// per-scan verdict breakdown.
    pub sat_queries: u64,
    /// Queries answered `Unsat` (merged across worker threads).
    pub unsat_queries: u64,
    /// `Sat` answers the SAT core served from its model cache in zero
    /// propagations.
    pub model_cache_hits: u64,
    /// `Unsat` answers the SAT core served from its assumption-core cache in
    /// zero propagations.
    pub core_cache_hits: u64,
    /// Assumption cores extracted and recorded after `Unsat` answers.
    pub cores_recorded: u64,
    /// Sum of literal counts over recorded cores (`core_size_sum /
    /// cores_recorded` is the average core size).
    pub core_size_sum: u64,
    /// Binary clauses added by hyper-binary resolution during probing.
    pub hbr_binaries_added: u64,
    /// Learned clauses evicted from the mid (tier2) clause-database tier.
    pub deleted_tier2: u64,
    /// Learned clauses evicted from the local (high-LBD) tier.
    pub deleted_local: u64,
    /// Minimal-UB-set queries skipped because an extracted assumption core
    /// already proved them `Unsat`.
    pub minimization_queries_saved: u64,
    /// Worker threads the run actually used (maximum across modules for an
    /// aggregate).
    pub threads: usize,
    /// Wall-clock analysis time (summed across modules for an aggregate).
    pub elapsed: Duration,
    /// Reports per algorithm.
    pub by_algorithm: HashMap<Algorithm, usize>,
}

impl CheckStats {
    /// Fraction of queries answered from the store (0 when none consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Average learn-time literal-block-distance across all learned clauses
    /// (0 when nothing was learned).
    pub fn avg_lbd(&self) -> f64 {
        if self.learned_clauses == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.learned_clauses as f64
        }
    }

    /// Average literal count of recorded assumption cores (0 when none were
    /// recorded).
    pub fn avg_core_size(&self) -> f64 {
        if self.cores_recorded == 0 {
            0.0
        } else {
            self.core_size_sum as f64 / self.cores_recorded as f64
        }
    }

    /// Fold another run's counters into this one (the session aggregate):
    /// counts and times add, `threads` takes the maximum, and the
    /// per-algorithm report counts merge keywise.
    pub fn merge(&mut self, other: &CheckStats) {
        self.modules += other.modules;
        self.modules_skipped += other.modules_skipped;
        self.functions += other.functions;
        self.functions_skipped += other.functions_skipped;
        self.queries += other.queries;
        self.timeouts += other.timeouts;
        self.degraded_modules += other.degraded_modules;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.propagations += other.propagations;
        self.unsat_propagations += other.unsat_propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned_clauses += other.learned_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.lbd_sum += other.lbd_sum;
        self.preprocess_eliminations += other.preprocess_eliminations;
        self.incremental_queries += other.incremental_queries;
        self.reused_clauses += other.reused_clauses;
        self.sat_queries += other.sat_queries;
        self.unsat_queries += other.unsat_queries;
        self.model_cache_hits += other.model_cache_hits;
        self.core_cache_hits += other.core_cache_hits;
        self.cores_recorded += other.cores_recorded;
        self.core_size_sum += other.core_size_sum;
        self.hbr_binaries_added += other.hbr_binaries_added;
        self.deleted_tier2 += other.deleted_tier2;
        self.deleted_local += other.deleted_local;
        self.minimization_queries_saved += other.minimization_queries_saved;
        self.threads = self.threads.max(other.threads);
        self.elapsed += other.elapsed;
        for (algorithm, count) in &other.by_algorithm {
            *self.by_algorithm.entry(*algorithm).or_insert(0) += count;
        }
    }
}

/// Result of checking a module.
#[derive(Clone, Debug, Default)]
pub struct CheckResult {
    pub reports: Vec<BugReport>,
    pub stats: CheckStats,
}

impl CheckResult {
    /// Reports grouped by the UB kinds they involve (Figure 18's breakdown).
    pub fn reports_by_ub_kind(&self) -> HashMap<crate::ubcond::UbKind, usize> {
        let mut map = HashMap::new();
        for r in &self.reports {
            let kinds: HashSet<_> = r.ub_sources.iter().map(|s| s.kind).collect();
            for k in kinds {
                *map.entry(k).or_insert(0) += 1;
            }
        }
        map
    }
}

/// The one-shot checker: a thin wrapper over an [`AnalysisSession`].
///
/// One `Checker` owns one session — and therefore one query store: every
/// [`check_module`] / [`check_source`] call through the same instance shares
/// it, so repeated idioms are answered from memory across files and modules
/// (the synthetic Debian population re-instantiates the same unstable
/// patterns thousands of times). For archive-scale work — disk-backed
/// stores, streaming reports, aggregate statistics — use the session
/// directly.
///
/// [`check_module`]: Checker::check_module
/// [`check_source`]: Checker::check_source
#[derive(Debug, Default)]
pub struct Checker {
    session: AnalysisSession,
}

impl Checker {
    /// A checker with the default configuration.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckerConfig) -> Checker {
        Checker {
            session: AnalysisSession::new(config),
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// Counters of the checker-owned query store (lifetime of this instance).
    pub fn cache_stats(&self) -> CacheStats {
        self.session.store_stats()
    }

    /// Compile a mini-C source string, run the analysis pre-pass, and check it.
    pub fn check_source(&self, src: &str, file: &str) -> Result<CheckResult, stack_minic::Diag> {
        self.session.check_source(src, file)
    }

    /// Check every function of an (already optimized-for-analysis) module.
    /// See [`AnalysisSession::check_module_streaming`] for the driver's
    /// parallelism and determinism contract.
    pub fn check_module(&self, module: &Module) -> CheckResult {
        self.session.check_module(module)
    }

    /// Check a single function.
    pub fn check_function(&self, func: &Function, solver: &mut BvSolver) -> Vec<BugReport> {
        self.session.check_function(func, solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ubcond::UbKind;

    fn check(src: &str) -> CheckResult {
        Checker::new().check_source(src, "test.c").unwrap()
    }

    #[test]
    fn figure2_null_check_is_unstable() {
        let result = check(
            "int tun_chr_poll(struct tun_struct *tun) {\n\
               long sk = tun->sk;\n\
               if (!tun) return 1;\n\
               return 0;\n\
             }",
        );
        assert!(!result.reports.is_empty(), "expected a report");
        assert!(result
            .reports
            .iter()
            .any(|r| r.involves(UbKind::NullPointerDereference)));
        // The elimination algorithm flags the return under the check.
        assert!(result
            .reports
            .iter()
            .any(|r| r.algorithm == Algorithm::Elimination));
    }

    #[test]
    fn figure1_pointer_overflow_check_is_unstable() {
        let result = check(
            "int check(char *buf, char *buf_end, unsigned int len) {\n\
               if (buf + len >= buf_end) return -1;\n\
               if (buf + len < buf) return -1;\n\
               return 0;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::PointerOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn signed_overflow_check_is_unstable_but_unsigned_is_not() {
        let signed_result = check("int f(int x) { if (x + 100 < x) return 1; return 0; }");
        assert!(
            signed_result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::SignedIntegerOverflow)),
            "{:?}",
            signed_result.reports
        );
        let unsigned_result =
            check("int f(unsigned int x) { if (x + 100 < x) return 1; return 0; }");
        assert!(
            unsigned_result.reports.is_empty(),
            "unsigned wraparound is well defined: {:?}",
            unsigned_result.reports
        );
    }

    #[test]
    fn stable_code_produces_no_reports() {
        let result = check(
            "int f(int x, int y) {\n\
               if (y == 0) return -1;\n\
               if (x > 1000) return -2;\n\
               return x / y;\n\
             }",
        );
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert!(result.stats.queries > 0);
    }

    #[test]
    fn macro_generated_checks_are_suppressed() {
        let src = "#define IS_VALID(p) (p != NULL)\n\
                   int f(char *p) {\n\
                     long v = *p;\n\
                     if (IS_VALID(p)) return 1;\n\
                     return 0;\n\
                   }";
        let default_result = check(src);
        assert!(
            default_result.reports.is_empty(),
            "macro-origin reports must be suppressed: {:?}",
            default_result.reports
        );
        let permissive = Checker::with_config(CheckerConfig {
            report_compiler_generated: true,
            ..CheckerConfig::default()
        });
        let all = permissive.check_source(src, "test.c").unwrap();
        assert!(!all.reports.is_empty());
    }

    #[test]
    fn abs_check_is_unstable() {
        let result = check("int f(int x) { if (abs(x) < 0) return 1; return 0; }");
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::AbsoluteValueOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn shift_check_is_unstable() {
        let result = check("int f(int x) { if (!(1 << x)) return 1; return 0; }");
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::OversizedShift)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn ffmpeg_algebra_simplification_is_reported() {
        let result = check(
            "int parse(char *data, char *data_end, int size) {\n\
               if (data + size >= data_end || data + size < data) return -1;\n\
               return 0;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.algorithm == Algorithm::SimplifyAlgebra),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn postgres_division_check_is_unstable() {
        let result = check(
            "int64_t int8div(int64_t arg1, int64_t arg2) {\n\
               if (arg2 == 0) return -1;\n\
               int64_t result = arg1 / arg2;\n\
               if (arg2 == -1 && arg1 < 0 && result <= 0) return -2;\n\
               return result;\n\
             }",
        );
        assert!(
            result
                .reports
                .iter()
                .any(|r| r.involves(UbKind::SignedIntegerOverflow)),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn minimal_ub_set_is_reported() {
        let result = check("int f(int *p) { int v = *p; if (!p) return 1; return v; }");
        let report = result
            .reports
            .iter()
            .find(|r| r.involves(UbKind::NullPointerDereference))
            .expect("expected a null-deref-based report");
        assert_eq!(report.ub_sources.len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let result = check("int f(int x) { if (x + 1 < x) return 1; return 0; }");
        assert_eq!(result.stats.modules, 1);
        assert_eq!(result.stats.functions, 1);
        assert!(result.stats.queries >= 2);
        assert_eq!(result.stats.timeouts, 0);
        assert!(result.stats.by_algorithm.values().sum::<usize>() >= 1);
        assert!(result.stats.threads >= 1);
    }

    #[test]
    fn stats_merge_adds_counts_and_merges_algorithms() {
        let a = check("int f(int x) { if (x + 1 < x) return 1; return 0; }");
        let b = check("int g(int *p) { int v = *p; if (!p) return 1; return v; }");
        let mut merged = a.stats.clone();
        merged.merge(&b.stats);
        assert_eq!(merged.modules, 2);
        assert_eq!(merged.functions, 2);
        assert_eq!(merged.queries, a.stats.queries + b.stats.queries);
        assert_eq!(
            merged.by_algorithm.values().sum::<usize>(),
            a.stats.by_algorithm.values().sum::<usize>()
                + b.stats.by_algorithm.values().sum::<usize>()
        );
        assert!(merged.elapsed >= a.stats.elapsed.max(b.stats.elapsed));
    }

    /// A module with several functions, mixing unstable and stable code, so
    /// the parallel driver has real work to distribute.
    const MULTI_FUNCTION_SRC: &str = "\
        int f0(struct s *tun) { long sk = tun->sk; if (!tun) return 1; return 0; }\n\
        int f1(int x) { if (x + 100 < x) return 1; return 0; }\n\
        int f2(int x, int y) { if (y == 0) return -1; return x / y; }\n\
        int f3(char *buf, char *buf_end, unsigned int len) {\n\
          if (buf + len >= buf_end) return -1;\n\
          if (buf + len < buf) return -1;\n\
          return 0;\n\
        }\n\
        int f4(int x) { if (!(1 << x)) return 1; return 0; }\n\
        int f5(int x) { if (x + 100 < x) return 1; return 0; }\n";

    fn check_with(threads: Option<usize>, query_cache: bool) -> CheckResult {
        check_with_inc(threads, query_cache, true)
    }

    fn check_with_inc(threads: Option<usize>, query_cache: bool, incremental: bool) -> CheckResult {
        Checker::with_config(CheckerConfig {
            threads,
            query_cache,
            incremental,
            ..CheckerConfig::default()
        })
        .check_source(MULTI_FUNCTION_SRC, "multi.c")
        .unwrap()
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let sequential = check_with(Some(1), true);
        for threads in [2, 4] {
            let parallel = check_with(Some(threads), true);
            assert_eq!(
                format!("{:?}", sequential.reports),
                format!("{:?}", parallel.reports),
                "threads={threads}"
            );
            assert_eq!(sequential.stats.queries, parallel.stats.queries);
            assert_eq!(sequential.stats.timeouts, parallel.stats.timeouts);
        }
    }

    #[test]
    fn cache_disabled_matches_cache_enabled() {
        let cached = check_with(Some(1), true);
        let uncached = check_with(Some(1), false);
        assert_eq!(
            format!("{:?}", cached.reports),
            format!("{:?}", uncached.reports)
        );
        assert_eq!(uncached.stats.cache_hits, 0);
        assert_eq!(uncached.stats.cache_misses, 0);
        // f1 and f5 are structurally identical, so the cached run must
        // answer at least one query from memory.
        assert!(cached.stats.cache_hits > 0, "{:?}", cached.stats);
    }

    #[test]
    fn incremental_matches_non_incremental() {
        // Same reports and the same query count, with and without the cache,
        // sequential and parallel: incremental solving changes how a query is
        // decided, never what it decides.
        let baseline = check_with_inc(Some(1), false, false);
        for (threads, cache) in [(1, false), (1, true), (4, true)] {
            let incremental = check_with_inc(Some(threads), cache, true);
            assert_eq!(
                format!("{:?}", baseline.reports),
                format!("{:?}", incremental.reports),
                "threads={threads} cache={cache}"
            );
            assert_eq!(baseline.stats.queries, incremental.stats.queries);
        }
    }

    #[test]
    fn preprocessing_off_and_granularity_match_defaults() {
        // Every simplification the solver's pre/inprocessing layer performs
        // preserves satisfiability, and instance granularity only changes
        // which persistent instance decides a query — so reports must be
        // identical with the layer off, with per-fragment instances, across
        // thread counts.
        let baseline = Checker::new()
            .check_source(MULTI_FUNCTION_SRC, "multi.c")
            .unwrap();
        for (threads, preprocess, fragment_instances) in [
            (1, false, false),
            (4, false, false),
            (1, true, true),
            (4, true, true),
        ] {
            let variant = Checker::with_config(CheckerConfig {
                threads: Some(threads),
                preprocess,
                fragment_instances,
                ..CheckerConfig::default()
            })
            .check_source(MULTI_FUNCTION_SRC, "multi.c")
            .unwrap();
            assert_eq!(
                format!("{:?}", baseline.reports),
                format!("{:?}", variant.reports),
                "threads={threads} preprocess={preprocess} fragments={fragment_instances}"
            );
            assert_eq!(baseline.stats.queries, variant.stats.queries);
        }
    }

    #[test]
    fn solver_counters_surface_in_check_stats() {
        let result = check_with_inc(Some(1), false, true);
        assert!(result.stats.propagations > 0, "{:?}", result.stats);
        assert!(result.stats.conflicts > 0, "{:?}", result.stats);
        assert!(result.stats.learned_clauses > 0, "{:?}", result.stats);
        assert!(result.stats.avg_lbd() > 0.0, "{:?}", result.stats);
        assert!(
            result.stats.preprocess_eliminations > 0,
            "{:?}",
            result.stats
        );
        let off = Checker::with_config(CheckerConfig {
            threads: Some(1),
            query_cache: false,
            preprocess: false,
            ..CheckerConfig::default()
        })
        .check_source(MULTI_FUNCTION_SRC, "multi.c")
        .unwrap();
        assert_eq!(off.stats.preprocess_eliminations, 0, "{:?}", off.stats);
        assert!(off.stats.propagations > 0);
    }

    #[test]
    fn budget_exhausted_during_preprocessing_degrades_and_never_persists() {
        // A one-propagation budget is exhausted by the preprocessing pass
        // itself, before any CDCL search: the query must degrade to
        // `Unknown`, be counted as a timeout and a degraded module, and
        // leave nothing behind in the query store.
        let checker = Checker::with_config(CheckerConfig {
            threads: Some(1),
            query_budget: 1,
            ..CheckerConfig::default()
        });
        let src = "int f(int x, int y) { if (x * y + 1 < x * y) return 1; return 0; }";
        let first = checker.check_source(src, "deg.c").unwrap();
        assert!(first.stats.timeouts > 0, "{:?}", first.stats);
        assert_eq!(first.stats.degraded_modules, 1);
        assert!(
            first.reports.is_empty(),
            "Unknown must never become a report"
        );
        assert_eq!(
            checker.cache_stats().entries,
            0,
            "degraded verdicts must never be persisted"
        );
        // Re-running reproduces the same degradation — nothing was cached.
        let second = checker.check_source(src, "deg.c").unwrap();
        assert_eq!(first.stats.timeouts, second.stats.timeouts);
        assert_eq!(checker.cache_stats().hits, 0);
    }

    #[test]
    fn incremental_counters_accumulate() {
        let incremental = check_with_inc(Some(1), false, true);
        // Without the cache, every non-trivial query is decided on a
        // persistent instance; later queries against the same function must
        // reuse its clauses.
        assert!(
            incremental.stats.incremental_queries > 0,
            "{:?}",
            incremental.stats
        );
        assert!(
            incremental.stats.reused_clauses > 0,
            "{:?}",
            incremental.stats
        );
        let off = check_with_inc(Some(1), false, false);
        assert_eq!(off.stats.incremental_queries, 0);
        assert_eq!(off.stats.reused_clauses, 0);
    }

    #[test]
    fn cache_is_shared_across_check_calls() {
        let checker = Checker::new();
        let src = "int f(int x) { if (x + 1 < x) return 1; return 0; }";
        let first = checker.check_source(src, "a.c").unwrap();
        let second = checker.check_source(src, "b.c").unwrap();
        assert_eq!(first.reports.len(), second.reports.len());
        // The second pass re-issues structurally identical queries, so every
        // decided query hits the cache built by the first pass.
        assert!(
            second.stats.cache_hits >= first.stats.cache_hits,
            "first={:?} second={:?}",
            first.stats,
            second.stats
        );
        assert!(second.stats.cache_hits > 0);
        let cache = checker.cache_stats();
        assert_eq!(
            cache.hits + cache.misses,
            first.stats.cache_hits
                + first.stats.cache_misses
                + second.stats.cache_hits
                + second.stats.cache_misses
        );
    }
}
