//! Undefined-behavior conditions (Figure 3 of the paper).
//!
//! For every IR instruction that can exhibit undefined behavior, this module
//! produces a [`UbCondition`]: the kind of UB, the instruction it attaches
//! to, and a solver term that is true exactly when that UB is triggered
//! (under the C semantics of the construct). The checker's well-defined
//! program assumption Δ is the conjunction of the negations of these terms
//! over the dominators of the fragment under analysis.

use crate::encoder::FunctionEncoder;
use serde::Serialize;
use stack_ir::{BinOp, BlockId, Function, InstId, InstKind, Operand, Origin};
use stack_solver::TermId;

/// The kinds of undefined behavior modeled by the checker, matching the rows
/// of Figure 3 (plus the breakdown used in Figures 9 and 18).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize)]
pub enum UbKind {
    PointerOverflow,
    NullPointerDereference,
    SignedIntegerOverflow,
    DivisionByZero,
    OversizedShift,
    BufferOverflow,
    AbsoluteValueOverflow,
    OverlappingMemcpy,
    UseAfterFree,
    UseAfterRealloc,
}

impl UbKind {
    /// All kinds, in the order the paper's tables list them.
    pub fn all() -> &'static [UbKind] {
        &[
            UbKind::PointerOverflow,
            UbKind::NullPointerDereference,
            UbKind::SignedIntegerOverflow,
            UbKind::DivisionByZero,
            UbKind::OversizedShift,
            UbKind::BufferOverflow,
            UbKind::AbsoluteValueOverflow,
            UbKind::OverlappingMemcpy,
            UbKind::UseAfterFree,
            UbKind::UseAfterRealloc,
        ]
    }

    /// Short column label as used in Figure 9.
    pub fn short_name(self) -> &'static str {
        match self {
            UbKind::PointerOverflow => "pointer",
            UbKind::NullPointerDereference => "null",
            UbKind::SignedIntegerOverflow => "integer",
            UbKind::DivisionByZero => "div",
            UbKind::OversizedShift => "shift",
            UbKind::BufferOverflow => "buffer",
            UbKind::AbsoluteValueOverflow => "abs",
            UbKind::OverlappingMemcpy => "memcpy",
            UbKind::UseAfterFree => "free",
            UbKind::UseAfterRealloc => "realloc",
        }
    }

    /// Human-readable description.
    pub fn description(self) -> &'static str {
        match self {
            UbKind::PointerOverflow => "pointer overflow",
            UbKind::NullPointerDereference => "null pointer dereference",
            UbKind::SignedIntegerOverflow => "signed integer overflow",
            UbKind::DivisionByZero => "division by zero",
            UbKind::OversizedShift => "oversized shift",
            UbKind::BufferOverflow => "buffer overflow",
            UbKind::AbsoluteValueOverflow => "absolute value overflow",
            UbKind::OverlappingMemcpy => "overlapping memory copy",
            UbKind::UseAfterFree => "use after free",
            UbKind::UseAfterRealloc => "use after realloc",
        }
    }
}

/// One undefined-behavior condition attached to an instruction.
#[derive(Clone, Debug)]
pub struct UbCondition {
    pub kind: UbKind,
    pub inst: InstId,
    pub block: BlockId,
    pub origin: Origin,
    /// Term that is true iff executing the instruction triggers this UB.
    pub term: TermId,
}

/// Collect the UB conditions of every instruction in a function, in the
/// spirit of the paper's `bug_on` insertion stage (§4.3).
pub fn collect_ub_conditions(func: &Function, enc: &mut FunctionEncoder<'_>) -> Vec<UbCondition> {
    let mut out = Vec::new();
    // Pointers already passed to free()/realloc(), with the instruction that
    // released them, for the use-after-free/realloc conditions.
    let mut freed: Vec<(Operand, InstId)> = Vec::new();
    let mut reallocated: Vec<(Operand, InstId)> = Vec::new();

    for (block, inst_id) in func.all_insts() {
        if !enc.cfg.is_reachable(block) {
            continue;
        }
        let inst = func.inst(inst_id).clone();
        let origin = inst.origin.clone();
        let push = |kind: UbKind, term: TermId, out: &mut Vec<UbCondition>| {
            out.push(UbCondition {
                kind,
                inst: inst_id,
                block,
                origin: origin.clone(),
                term,
            });
        };
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                let lhs_term = enc.bv_term(*lhs);
                let width = enc.pool.width(lhs_term).max(1);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul if inst.nsw => {
                        let term = signed_overflow_term(enc, *op, *lhs, *rhs);
                        push(UbKind::SignedIntegerOverflow, term, &mut out);
                    }
                    BinOp::UDiv | BinOp::URem => {
                        let y = enc.bv_term(*rhs);
                        let zero = enc.pool.bv_const(width, 0);
                        let term = enc.pool.eq(y, zero);
                        push(UbKind::DivisionByZero, term, &mut out);
                    }
                    BinOp::SDiv | BinOp::SRem => {
                        let x = enc.bv_term(*lhs);
                        let y = enc.bv_term(*rhs);
                        let zero = enc.pool.bv_const(width, 0);
                        let div0 = enc.pool.eq(y, zero);
                        push(UbKind::DivisionByZero, div0, &mut out);
                        // INT_MIN / -1 overflows (the Figure 10 Postgres bug).
                        let int_min = enc.pool.bv_const(width, 1u64 << (width - 1));
                        let minus1 = enc.pool.bv_const(width, u64::MAX);
                        let x_min = enc.pool.eq(x, int_min);
                        let y_m1 = enc.pool.eq(y, minus1);
                        let ovf = enc.pool.and(x_min, y_m1);
                        push(UbKind::SignedIntegerOverflow, ovf, &mut out);
                    }
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        let y = enc.bv_term(*rhs);
                        let zero = enc.pool.bv_const(width, 0);
                        let n = enc.pool.bv_const(width, u64::from(width));
                        let neg = enc.pool.bv_slt(y, zero);
                        let big = enc.pool.bv_uge(y, n);
                        let term = enc.pool.or(neg, big);
                        push(UbKind::OversizedShift, term, &mut out);
                    }
                    _ => {}
                }
            }
            InstKind::PtrAdd {
                ptr,
                offset,
                elem_size,
                bound,
            } => {
                // Pointer overflow: p + off wraps past either end of the
                // address space (Figure 3's p∞ + x∞ ∉ [0, 2^n - 1]).
                let p = enc.bv_term(*ptr);
                let off = enc.scaled_offset(*offset, *elem_size);
                let sum = enc.pool.bv_add(p, off);
                let zero64 = enc.pool.bv_const(64, 0);
                let nonneg = enc.pool.bv_sge(off, zero64);
                let wrap_up = enc.pool.bv_ult(sum, p);
                let wrap_down = enc.pool.bv_ugt(sum, p);
                let term = enc.pool.ite(nonneg, wrap_up, wrap_down);
                push(UbKind::PointerOverflow, term, &mut out);
                // Buffer overflow for indexing into an array of known bound.
                if let Some(b) = bound {
                    let idx = enc.index_term(*offset);
                    let zero = enc.pool.bv_const(64, 0);
                    let limit = enc.pool.bv_const(64, *b);
                    let neg = enc.pool.bv_slt(idx, zero);
                    let over = enc.pool.bv_sge(idx, limit);
                    let term = enc.pool.or(neg, over);
                    push(UbKind::BufferOverflow, term, &mut out);
                }
            }
            InstKind::Load { ptr, .. } | InstKind::Store { ptr, .. } => {
                let p = enc.bv_term(*ptr);
                let null = enc.pool.bv_const(64, 0);
                let term = enc.pool.eq(p, null);
                push(UbKind::NullPointerDereference, term, &mut out);
                // Use after free / realloc: a dominating release of the same
                // pointer value makes this access undefined.
                for (released, rel_inst) in &freed {
                    if released == ptr && dominates_inst(func, enc, *rel_inst, inst_id) {
                        let term = enc.pool.bool_const(true);
                        push(UbKind::UseAfterFree, term, &mut out);
                    }
                }
                for (released, rel_inst) in &reallocated {
                    if released == ptr && dominates_inst(func, enc, *rel_inst, inst_id) {
                        // Undefined only if realloc succeeded (returned non-null).
                        let result = enc.bv_term(Operand::Inst(*rel_inst));
                        let null = enc.pool.bv_const(64, 0);
                        let term = enc.pool.ne(result, null);
                        push(UbKind::UseAfterRealloc, term, &mut out);
                    }
                }
            }
            InstKind::Call { callee, args, .. } => match callee.as_str() {
                "abs" | "labs" | "llabs" if args.len() == 1 => {
                    let x = enc.bv_term(args[0]);
                    let width = enc.pool.width(x);
                    let int_min = enc.pool.bv_const(width, 1u64 << (width - 1));
                    let term = enc.pool.eq(x, int_min);
                    push(UbKind::AbsoluteValueOverflow, term, &mut out);
                }
                "memcpy" if args.len() == 3 => {
                    let dst = enc.bv_term(args[0]);
                    let src = enc.bv_term(args[1]);
                    let len = enc.bv_term(args[2]);
                    let len64 = if enc.pool.width(len) < 64 {
                        enc.pool.zext(len, 64)
                    } else {
                        len
                    };
                    let d1 = enc.pool.bv_sub(dst, src);
                    let d2 = enc.pool.bv_sub(src, dst);
                    let ge = enc.pool.bv_uge(dst, src);
                    let dist = enc.pool.ite(ge, d1, d2);
                    let term = enc.pool.bv_ult(dist, len64);
                    push(UbKind::OverlappingMemcpy, term, &mut out);
                }
                "memset" if args.len() == 3 => {
                    // Passing a null pointer to memset is undefined even
                    // though no dereference is visible at the call site — the
                    // e1000e idiom (paper Table 1): `memset(es, 0, n)`
                    // followed by `if (!es)` lets the compiler delete the
                    // null check.
                    let dst = enc.bv_term(args[0]);
                    let null = enc.pool.bv_const(64, 0);
                    let term = enc.pool.eq(dst, null);
                    push(UbKind::NullPointerDereference, term, &mut out);
                }
                "free" if args.len() == 1 => freed.push((args[0], inst_id)),
                "realloc" if args.len() == 2 => reallocated.push((args[0], inst_id)),
                _ => {}
            },
            _ => {}
        }
    }
    out
}

/// Signed-overflow condition for `x op y` at the operand width, encoded
/// without widening (sign-comparison identities).
fn signed_overflow_term(
    enc: &mut FunctionEncoder<'_>,
    op: BinOp,
    lhs: Operand,
    rhs: Operand,
) -> TermId {
    let x = enc.bv_term(lhs);
    let y = enc.bv_term(rhs);
    let width = enc.pool.width(x);
    let zero = enc.pool.bv_const(width, 0);
    match op {
        BinOp::Add => {
            // Overflow iff x and y have the same sign and the result differs.
            let sum = enc.pool.bv_add(x, y);
            let sx = enc.pool.bv_slt(x, zero);
            let sy = enc.pool.bv_slt(y, zero);
            let sr = enc.pool.bv_slt(sum, zero);
            let same = enc.pool.iff(sx, sy);
            let diff = enc.pool.xor(sx, sr);
            enc.pool.and(same, diff)
        }
        BinOp::Sub => {
            // Overflow iff x and y have different signs and the result's sign
            // differs from x's.
            let diff_v = enc.pool.bv_sub(x, y);
            let sx = enc.pool.bv_slt(x, zero);
            let sy = enc.pool.bv_slt(y, zero);
            let sr = enc.pool.bv_slt(diff_v, zero);
            let signs_differ = enc.pool.xor(sx, sy);
            let result_differs = enc.pool.xor(sx, sr);
            enc.pool.and(signs_differ, result_differs)
        }
        BinOp::Mul => {
            // y != 0 and (x*y)/y != x (division-based check; exact except for
            // a corner case involving INT_MIN which it conservatively flags).
            let prod = enc.pool.bv_mul(x, y);
            let y_nonzero = enc.pool.ne(y, zero);
            let q = enc.pool.bv_sdiv(prod, y);
            let mismatch = enc.pool.ne(q, x);
            enc.pool.and(y_nonzero, mismatch)
        }
        _ => enc.pool.bool_const(false),
    }
}

/// Whether instruction `a` dominates instruction `b`.
fn dominates_inst(func: &Function, enc: &FunctionEncoder<'_>, a: InstId, b: InstId) -> bool {
    let (ba, pa) = match func.position_in_block(a) {
        Some(p) => p,
        None => return false,
    };
    let (bb, pb) = match func.position_in_block(b) {
        Some(p) => p,
        None => return false,
    };
    if ba == bb {
        pa < pb
    } else {
        enc.dom.dominates(ba, bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_opt::optimize_for_analysis;

    fn conditions(src: &str, fname: &str) -> Vec<UbKind> {
        let mut m = stack_minic::compile(src, "t.c").unwrap();
        optimize_for_analysis(&mut m);
        let func = m.function(fname).unwrap();
        let mut enc = FunctionEncoder::new(func);
        collect_ub_conditions(func, &mut enc)
            .into_iter()
            .map(|c| c.kind)
            .collect()
    }

    #[test]
    fn division_conditions() {
        let kinds = conditions("int f(int a, int b) { return a / b; }", "f");
        assert!(kinds.contains(&UbKind::DivisionByZero));
        assert!(kinds.contains(&UbKind::SignedIntegerOverflow));
        let kinds = conditions("unsigned f(unsigned a, unsigned b) { return a % b; }", "f");
        assert_eq!(kinds, vec![UbKind::DivisionByZero]);
    }

    #[test]
    fn signed_vs_unsigned_addition() {
        let signed_kinds = conditions("int f(int a, int b) { return a + b; }", "f");
        assert!(signed_kinds.contains(&UbKind::SignedIntegerOverflow));
        let unsigned_kinds =
            conditions("unsigned f(unsigned a, unsigned b) { return a + b; }", "f");
        assert!(!unsigned_kinds.contains(&UbKind::SignedIntegerOverflow));
    }

    #[test]
    fn shift_pointer_and_memory_conditions() {
        let kinds = conditions("int f(int x, int s) { return x << s; }", "f");
        assert!(kinds.contains(&UbKind::OversizedShift));
        let kinds = conditions(
            "int f(char *p, int n) { if (p + n < p) return 1; return 0; }",
            "f",
        );
        assert!(kinds.contains(&UbKind::PointerOverflow));
        let kinds = conditions("int f(int *p) { return *p; }", "f");
        assert!(kinds.contains(&UbKind::NullPointerDereference));
        let kinds = conditions("int f(int i) { char buf[15]; return buf[i]; }", "f");
        assert!(kinds.contains(&UbKind::BufferOverflow));
    }

    #[test]
    fn library_conditions() {
        let kinds = conditions("int f(int x) { return abs(x); }", "f");
        assert!(kinds.contains(&UbKind::AbsoluteValueOverflow));
        let kinds = conditions(
            "void f(char *d, char *s, unsigned long n) { memcpy(d, s, n); }",
            "f",
        );
        assert!(kinds.contains(&UbKind::OverlappingMemcpy));
        let kinds = conditions("void f(char *d, unsigned long n) { memset(d, 0, n); }", "f");
        assert!(kinds.contains(&UbKind::NullPointerDereference));
    }

    #[test]
    fn use_after_free_and_realloc() {
        let kinds = conditions("int f(int *p) { free(p); return *p; }", "f");
        assert!(kinds.contains(&UbKind::UseAfterFree));
        let kinds = conditions(
            "int f(char *p, unsigned long n) { char *q = realloc(p, n); if (!q) return -1; return *p; }",
            "f",
        );
        assert!(kinds.contains(&UbKind::UseAfterRealloc));
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(UbKind::all().len(), 10);
        assert_eq!(UbKind::PointerOverflow.short_name(), "pointer");
        assert_eq!(
            UbKind::NullPointerDereference.description(),
            "null pointer dereference"
        );
    }
}
