//! Archive-population generator for the cross-run persistence workload.
//!
//! The §6.5 deployment mode scans a whole package archive, and the payoff of
//! a disk-backed query store comes from *structural overlap*: the same
//! unstable idioms re-instantiated across packages, so their queries hit the
//! store instead of the SAT core. The [`synth`](crate::synth) population
//! deliberately varies constants per instance (every injected bug is
//! distinguishable); this module generates the opposite shape — every
//! function body is drawn from a fixed pool of (template, constant-variant)
//! idioms with fixed parameter names, so instantiating the same pool slot in
//! different packages encodes to structurally identical solver queries.
//! Only function names differ, and names of functions never appear in query
//! terms.
//!
//! That makes the archive the right workload for measuring both layers of
//! reuse: a cold scan solves each pool slot once (the
//! [`ArchiveConfig::variants`] knob controls how many such first-sightings
//! it must pay for, and the pool includes deliberately expensive
//! multiplication/division circuits) and answers every repeat from the
//! in-memory table; a warm re-run against the saved store answers every
//! decided query from disk without entering the SAT core at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::{Path, PathBuf};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ArchiveConfig {
    /// Number of packages.
    pub packages: usize,
    /// Files per package (exact).
    pub files_per_package: usize,
    /// Functions per file (exact).
    pub functions_per_file: usize,
    /// Probability that a function is an unstable idiom rather than a
    /// stable one.
    pub unstable_fraction: f64,
    /// Constant variants per unstable template. Each variant embeds a
    /// different literal, so it encodes to a *distinct* solver query: a cold
    /// scan must solve each (template, variant) pair once, while a warm
    /// re-run answers all of them from the persisted store. Raising this
    /// widens the cold/warm gap; 1 collapses every template to a single
    /// shape.
    pub variants: usize,
    /// RNG seed (the population is deterministic given the seed).
    pub seed: u64,
}

impl Default for ArchiveConfig {
    fn default() -> ArchiveConfig {
        ArchiveConfig {
            packages: 24,
            files_per_package: 2,
            functions_per_file: 5,
            unstable_fraction: 0.4,
            variants: 8,
            seed: 0xa2c41,
        }
    }
}

/// One generated source file of the archive.
#[derive(Clone, Debug)]
pub struct ArchiveFile {
    /// Owning package (`archive-0007`).
    pub package: String,
    /// File name (`archive-0007_1.mc`).
    pub name: String,
    /// Mini-C source.
    pub source: String,
    /// Number of unstable idioms instantiated (ground truth for calibration
    /// tests; the checker never sees this).
    pub injected: usize,
}

/// Number of unstable templates [`unstable_body`] instantiates.
const UNSTABLE_TEMPLATES: usize = 7;

/// One unstable idiom body (everything after the function name). Parameter
/// names are fixed per template, and the embedded constant is a pure
/// function of `variant`, so instantiating the same (template, variant)
/// pair anywhere in the archive yields structurally identical solver
/// queries — while distinct variants yield distinct ones. The mix spans
/// cheap queries (null checks) and expensive ones (the multiplication
/// overflow guard, whose division-based encoding is the costliest circuit
/// the blaster builds here), so a cold scan pays real solver time on every
/// first-seen variant.
fn unstable_body(template: usize, variant: usize) -> String {
    // Distinct, deterministic small constants per variant.
    let k = 3 + 13 * (variant as u64);
    match template % UNSTABLE_TEMPLATES {
        0 => {
            format!("(struct pkt *p) {{ long seq = p->seq; if (!p) return {k}; return (int)seq; }}")
        }
        1 => format!("(int x) {{ if (x + {k} < x) return 1; return x; }}"),
        2 => format!(
            "(char *buf, unsigned int len) {{ if (buf + len < buf) return -{k}; return 0; }}"
        ),
        3 => format!(
            "(unsigned int v, int s) {{ unsigned int r = v << s; if (s >= 32) return {k}; \
             return (int)r; }}"
        ),
        4 => {
            format!("(int a, int b) {{ int q = (a + {k}) / b; if (b == 0) return -1; return q; }}")
        }
        5 => format!("(int x) {{ if (abs(x) < -{k}) return 1; return abs(x); }}"),
        // The classic multiplication overflow guard: under the well-defined
        // assumption `a * b` never overflows, so `p / b != a` is always
        // false and the whole check is unstable.
        _ => format!(
            "(int a, int b) {{ int p = a * {k}; int q = p / {k}; if (q != a) return -1; \
             return p + b; }}"
        ),
    }
}

/// One stable idiom body (well-defined filler; must stay report-free).
fn stable_body(template: usize) -> String {
    const STABLE_BODIES: &[&str] = &[
        "(int a, int b) { if (b == 0) return -1; return a / b; }",
        "(unsigned int v, int s) { if (s < 0 || s >= 32) return 0; return (int)(v << s); }",
        "(int a, int b) { int m = a < b ? a : b; return m * 2 + 1; }",
        "(char *p, int n) { if (!p) return -1; if (n < 0) return -2; return *p + n; }",
    ];
    STABLE_BODIES[template % STABLE_BODIES.len()].to_string()
}

/// Number of stable templates [`stable_body`] instantiates.
const STABLE_TEMPLATES: usize = 4;

/// Generate the archive population.
pub fn generate_archive(config: &ArchiveConfig) -> Vec<ArchiveFile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut files = Vec::new();
    let mut uid = 0usize;
    for p in 0..config.packages {
        let package = format!("archive-{p:04}");
        for f in 0..config.files_per_package {
            let mut source = String::new();
            let mut injected = 0usize;
            for _ in 0..config.functions_per_file.max(1) {
                uid += 1;
                let unstable = rng.gen_bool(config.unstable_fraction);
                let body = if unstable {
                    injected += 1;
                    let template = rng.gen_range(0..UNSTABLE_TEMPLATES);
                    let variant = rng.gen_range(0..config.variants.max(1));
                    unstable_body(template, variant)
                } else {
                    stable_body(rng.gen_range(0..STABLE_TEMPLATES))
                };
                source.push_str(&format!("int fn_{uid}{body}\n"));
            }
            files.push(ArchiveFile {
                package: package.clone(),
                name: format!("{package}_{f}.mc"),
                source,
                injected,
            });
        }
    }
    files
}

/// One churned archive: the edited file population plus the ground truth of
/// what was edited, so incremental-rescan measurements know exactly how
/// many modules a perfect fingerprint should skip.
#[derive(Clone, Debug)]
pub struct ChurnedArchive {
    /// The edited copy of the population, in the original file order.
    pub files: Vec<ArchiveFile>,
    /// Files whose *semantics* changed (a function was added): a correct
    /// fingerprint must re-analyze exactly these.
    pub semantic_edits: usize,
    /// Files that received only comment/whitespace edits: a correct
    /// fingerprint must still skip these.
    pub cosmetic_edits: usize,
}

impl ChurnedArchive {
    /// The fraction of modules an incremental re-scan should skip:
    /// everything except the semantic edits.
    pub fn expected_skip_rate(&self) -> f64 {
        if self.files.is_empty() {
            return 0.0;
        }
        (self.files.len() - self.semantic_edits) as f64 / self.files.len() as f64
    }
}

/// Produce an edited copy of `base`, the "archive evolved between scans"
/// workload of incremental re-scan: exactly `round(pct * len)` files change
/// semantically (a new unstable function is appended, so both the
/// fingerprint and the report set must change), and a quarter of the
/// untouched remainder receives comment/whitespace-only edits (which the
/// canonical fingerprint must see through). Deterministic given `seed`.
///
/// Cosmetic edits are deliberately line-preserving (appended trailing
/// comment lines, doubled inter-token spacing on existing lines) so the
/// replayed reports' line numbers stay exact and end-to-end byte-identity
/// between a re-scan and a fresh scan holds even for edited files.
pub fn churn_archive(base: &[ArchiveFile], seed: u64, pct: f64) -> ChurnedArchive {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4_B217);
    // Exact counts, not per-file coin flips: a "5% churn" measurement over a
    // small archive must actually contain round(0.05 * n) changed files.
    // Fisher–Yates over the index set picks which files change.
    let n = base.len();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let semantic_count = ((pct.clamp(0.0, 1.0) * n as f64).round() as usize).min(n);
    let cosmetic_count = (n - semantic_count).div_ceil(4).min(n - semantic_count);
    let semantic: std::collections::HashSet<usize> =
        order[..semantic_count].iter().copied().collect();
    let cosmetic: std::collections::HashSet<usize> = order[semantic_count..]
        .iter()
        .take(cosmetic_count)
        .copied()
        .collect();
    let mut files = Vec::with_capacity(n);
    let mut semantic_edits = 0usize;
    let mut cosmetic_edits = 0usize;
    for (i, file) in base.iter().enumerate() {
        let mut edited = file.clone();
        if semantic.contains(&i) {
            // Semantic churn: a fresh unstable function with a constant no
            // generated variant uses, so the module gains a report and a
            // first-sighting solver query.
            let k = 1_000 + i as u64;
            edited.source.push_str(&format!(
                "int churn_{i}(int x) {{ if (x + {k} < x) return 1; return x; }}\n"
            ));
            edited.injected += 1;
            semantic_edits += 1;
        } else if cosmetic.contains(&i) {
            // Cosmetic churn: double some spacing on the first line and
            // append comment lines; the lowered IR — and every origin line
            // number — is unchanged.
            if let Some(nl) = edited.source.find('\n') {
                let (head, tail) = edited.source.split_at(nl);
                edited.source = format!("{}{tail}", head.replace(" { ", "  {  "));
            }
            edited
                .source
                .push_str("// churn: comment-only edit\n/* second\n   line */\n");
            cosmetic_edits += 1;
        }
        files.push(edited);
    }
    ChurnedArchive {
        files,
        semantic_edits,
        cosmetic_edits,
    }
}

/// One function-granular churned archive: the edited population plus the
/// exact ground truth a per-function incremental re-scan is measured
/// against — [`edited_functions`](FunctionChurn::edited_functions) is the
/// number of functions whose replay key must miss, and every other
/// function must replay.
#[derive(Clone, Debug)]
pub struct FunctionChurn {
    /// The edited copy of the population, in the original file order.
    pub files: Vec<ArchiveFile>,
    /// Total functions across the population (unchanged by the churn).
    pub total_functions: usize,
    /// Functions whose body was edited in place: a function-granular
    /// re-scan must re-analyze exactly these.
    pub edited_functions: usize,
    /// Files containing at least one edited function: a *module*-granular
    /// re-scan must re-analyze every function of these, which is the gap
    /// the `function_rescan` bench section measures.
    pub edited_files: usize,
}

impl FunctionChurn {
    /// The fraction of functions a function-granular re-scan should
    /// replay: everything except the edited ones.
    pub fn expected_function_skip_rate(&self) -> f64 {
        if self.total_functions == 0 {
            return 0.0;
        }
        (self.total_functions - self.edited_functions) as f64 / self.total_functions as f64
    }
}

/// Whether `line` holds one generated function definition (the archive
/// emits one function per line; churned files may also carry appended
/// comment lines, which are not slots).
fn is_function_line(line: &str) -> bool {
    line.starts_with("int ") && line.contains('{')
}

/// Edit one generated function line in place: the first digit run after
/// the opening brace (every template body embeds at least one literal)
/// becomes the fresh constant `k`. The edit is line-preserving and keeps
/// the source compiling, but changes the lowered IR — so the function's
/// digest (and only its digest) changes, exercising exactly the
/// "developer touched one function" shape. The function *name* is never
/// edited (its digits precede the brace).
fn edit_function_line(line: &str, k: u64) -> String {
    let brace = line.find('{').expect("function line has a body");
    let body = &line[brace..];
    let start = body
        .find(|c: char| c.is_ascii_digit())
        .expect("every template body embeds a literal");
    let end = start
        + body[start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(body.len() - start);
    format!("{}{}{k}{}", &line[..brace], &body[..start], &body[end..])
}

/// Produce a copy of `base` with exactly `count` functions (archive-wide,
/// chosen by Fisher–Yates over every function slot) edited in place, each
/// receiving a distinct fresh constant in its body. This
/// is the function-granular sibling of [`churn_archive`]: instead of
/// *appending* a function (which edits the module but no existing
/// function), it mutates existing bodies — the workload where
/// per-function replay keying pays off. Deterministic given `seed`.
pub fn churn_functions_count(base: &[ArchiveFile], seed: u64, count: usize) -> FunctionChurn {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_57C4);
    // Every (file, line) function slot, archive-wide.
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in base.iter().enumerate() {
        for (li, line) in file.source.lines().enumerate() {
            if is_function_line(line) {
                slots.push((fi, li));
            }
        }
    }
    let total_functions = slots.len();
    let count = count.min(total_functions);
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.gen_range(0..=i));
    }
    let mut chosen: Vec<(usize, usize)> = slots[..count].to_vec();
    // Assign fresh constants in (file, line) order so the edit is a pure
    // function of the chosen set, not of the shuffle order.
    chosen.sort_unstable();
    let edited: std::collections::HashMap<(usize, usize), u64> = chosen
        .iter()
        .enumerate()
        // 20_000 + i: disjoint from every generated variant constant
        // (3 + 13·v), from churn_archive's 1_000 + i, and from each other.
        .map(|(i, &slot)| (slot, 20_000 + i as u64))
        .collect();
    let mut files = Vec::with_capacity(base.len());
    let mut edited_files = 0usize;
    for (fi, file) in base.iter().enumerate() {
        let mut touched = false;
        let mut source = String::with_capacity(file.source.len());
        for (li, line) in file.source.lines().enumerate() {
            match edited.get(&(fi, li)) {
                Some(&k) => {
                    source.push_str(&edit_function_line(line, k));
                    touched = true;
                }
                None => source.push_str(line),
            }
            source.push('\n');
        }
        if touched {
            edited_files += 1;
        }
        files.push(ArchiveFile {
            source,
            ..file.clone()
        });
    }
    FunctionChurn {
        files,
        total_functions,
        edited_functions: count,
        edited_files,
    }
}

/// [`churn_functions_count`] with the count derived from a fraction:
/// exactly `round(pct * total_functions)` functions change.
pub fn churn_functions(base: &[ArchiveFile], seed: u64, pct: f64) -> FunctionChurn {
    let total: usize = base
        .iter()
        .map(|f| f.source.lines().filter(|l| is_function_line(l)).count())
        .sum();
    let count = ((pct.clamp(0.0, 1.0) * total as f64).round() as usize).min(total);
    churn_functions_count(base, seed, count)
}

/// Extend `base` with `copies` duplicates of randomly chosen files under
/// new vendored paths (`vendor{j}/<original name>`): byte-identical
/// sources whose every function the path-independent replay key should
/// serve from the original's analysis — the cross-path dedup workload.
/// Deterministic given `seed`; the duplicates keep their source file's
/// `injected` ground truth.
pub fn duplicate_files(base: &[ArchiveFile], seed: u64, copies: usize) -> Vec<ArchiveFile> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD0_9B1E);
    let mut files = base.to_vec();
    for j in 0..copies {
        if base.is_empty() {
            break;
        }
        let original = &base[rng.gen_range(0..base.len())];
        files.push(ArchiveFile {
            package: format!("vendor{j}"),
            name: format!("vendor{j}/{}", original.name),
            source: original.source.clone(),
            injected: original.injected,
        });
    }
    files
}

/// Materialize the archive population as `.mc` files under `dir` (created
/// if needed), returning the written paths in generation order. This is
/// what `stack gen-archive` uses to give the `scan` subcommand a real
/// directory to walk. With `edit_functions > 0`, the written population is
/// the [`churn_functions_count`] edit of the generated one (the CLI's
/// "touch K functions, then re-scan" smoke workload); file names and
/// counts are unchanged either way.
pub fn write_archive_edited(
    config: &ArchiveConfig,
    dir: &Path,
    edit_functions: usize,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut files = generate_archive(config);
    if edit_functions > 0 {
        files = churn_functions_count(&files, config.seed, edit_functions).files;
    }
    let mut paths = Vec::new();
    for file in files {
        let path = dir.join(&file.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &file.source)?;
        paths.push(path);
    }
    Ok(paths)
}

/// [`write_archive_edited`] with no function edits.
pub fn write_archive(config: &ArchiveConfig, dir: &Path) -> io::Result<Vec<PathBuf>> {
    write_archive_edited(config, dir, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ArchiveConfig::default();
        let a = generate_archive(&cfg);
        let b = generate_archive(&cfg);
        assert_eq!(a.len(), cfg.packages * cfg.files_per_package);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
            assert_eq!(x.injected, y.injected);
        }
    }

    #[test]
    fn generated_files_compile() {
        let cfg = ArchiveConfig {
            packages: 6,
            ..ArchiveConfig::default()
        };
        let files = generate_archive(&cfg);
        let checked = crate::validate_sources(
            files.iter().map(|f| (f.name.as_str(), f.source.as_str())),
            |name, source| stack_minic::compile(source, name).map(|_| ()),
        )
        .unwrap();
        assert_eq!(checked, files.len());
    }

    #[test]
    fn bodies_overlap_across_modules() {
        // Strip the unique function names: the remaining bodies must come
        // from the fixed (template, variant) pool, so the whole archive uses
        // at most `UNSTABLE_TEMPLATES * variants + STABLE_TEMPLATES`
        // distinct shapes — far fewer than the function count, which is what
        // makes repeated instances hit the query store.
        let cfg = ArchiveConfig::default();
        let mut bodies: HashSet<String> = HashSet::new();
        let mut functions = 0usize;
        for file in generate_archive(&cfg) {
            for line in file.source.lines() {
                let body = line
                    .split_once('(')
                    .map(|(_, rest)| rest.to_string())
                    .expect("every line is a function definition");
                bodies.insert(body);
                functions += 1;
            }
        }
        assert!(functions > 100, "population too small to measure overlap");
        let pool = UNSTABLE_TEMPLATES * cfg.variants + STABLE_TEMPLATES;
        assert!(
            bodies.len() <= pool,
            "expected at most {pool} shapes, got {} distinct bodies",
            bodies.len()
        );
        assert!(
            functions > 2 * bodies.len(),
            "population must re-instantiate shapes ({} functions, {} shapes)",
            functions,
            bodies.len()
        );
    }

    #[test]
    fn roughly_the_configured_fraction_is_unstable() {
        let cfg = ArchiveConfig {
            packages: 50,
            ..ArchiveConfig::default()
        };
        let files = generate_archive(&cfg);
        let injected: usize = files.iter().map(|f| f.injected).sum();
        let total: usize = files.len() * cfg.functions_per_file;
        let fraction = injected as f64 / total as f64;
        assert!(
            (0.25..0.55).contains(&fraction),
            "expected ~{} unstable, got {fraction}",
            cfg.unstable_fraction
        );
    }

    #[test]
    fn churn_is_deterministic_and_honors_the_rate() {
        let base = generate_archive(&ArchiveConfig::default());
        let a = churn_archive(&base, 7, 0.2);
        let b = churn_archive(&base, 7, 0.2);
        assert_eq!(a.semantic_edits, b.semantic_edits);
        assert_eq!(a.cosmetic_edits, b.cosmetic_edits);
        for (x, y) in a.files.iter().zip(b.files.iter()) {
            assert_eq!(x.source, y.source);
        }
        // Roughly the configured fraction changes semantically.
        let rate = a.semantic_edits as f64 / base.len() as f64;
        assert!((0.05..0.45).contains(&rate), "semantic rate {rate}");
        assert!(a.cosmetic_edits > 0, "some cosmetic edits expected");
        assert!((a.expected_skip_rate() - (1.0 - rate)).abs() < 1e-9);
    }

    #[test]
    fn zero_churn_means_no_semantic_edits() {
        let base = generate_archive(&ArchiveConfig::default());
        let churned = churn_archive(&base, 3, 0.0);
        assert_eq!(churned.semantic_edits, 0);
        assert!((churned.expected_skip_rate() - 1.0).abs() < 1e-9);
        // Cosmetic edits still happen — that is the point of a 0%-churn
        // measurement: the fingerprint must see through them.
        assert!(churned.cosmetic_edits > 0);
    }

    #[test]
    fn churned_files_compile_and_cosmetic_edits_preserve_lines() {
        let base = generate_archive(&ArchiveConfig {
            packages: 6,
            ..ArchiveConfig::default()
        });
        let churned = churn_archive(&base, 11, 0.3);
        crate::validate_sources(
            churned
                .files
                .iter()
                .map(|f| (f.name.as_str(), f.source.as_str())),
            |name, source| stack_minic::compile(source, name).map(|_| ()),
        )
        .unwrap();
        for (before, after) in base.iter().zip(churned.files.iter()) {
            if after.injected == before.injected && after.source != before.source {
                // Cosmetic edit: every original code line keeps its line
                // number (edits only append or stay within a line).
                for (i, line) in before.source.lines().enumerate() {
                    let edited = after.source.lines().nth(i).unwrap();
                    assert_eq!(
                        edited.split_whitespace().collect::<Vec<_>>(),
                        line.split_whitespace().collect::<Vec<_>>(),
                        "{}: line {i} changed beyond whitespace",
                        after.name
                    );
                }
            }
        }
    }

    #[test]
    fn function_churn_edits_exactly_the_requested_count_in_place() {
        let base = generate_archive(&ArchiveConfig {
            packages: 6,
            ..ArchiveConfig::default()
        });
        let total: usize = base.iter().map(|f| f.source.lines().count()).sum();
        let churned = churn_functions(&base, 9, 0.05);
        assert_eq!(churned.total_functions, total);
        assert_eq!(
            churned.edited_functions,
            ((0.05 * total as f64).round() as usize),
            "count must be exact, not a per-function coin flip"
        );
        assert!(churned.edited_files >= 1);
        assert!(
            (churned.expected_function_skip_rate() - 0.95).abs() < 0.01,
            "{}",
            churned.expected_function_skip_rate()
        );
        // Determinism.
        let again = churn_functions(&base, 9, 0.05);
        for (x, y) in churned.files.iter().zip(again.files.iter()) {
            assert_eq!(x.source, y.source);
        }
        // Every edit is line-preserving and touches only the chosen lines.
        let mut changed_lines = 0usize;
        for (before, after) in base.iter().zip(churned.files.iter()) {
            assert_eq!(before.source.lines().count(), after.source.lines().count());
            for (a, b) in before.source.lines().zip(after.source.lines()) {
                if a != b {
                    changed_lines += 1;
                    // The function name (everything before '(') is intact.
                    assert_eq!(a.split_once('(').unwrap().0, b.split_once('(').unwrap().0);
                }
            }
        }
        assert_eq!(changed_lines, churned.edited_functions);
        // And the edited population still compiles.
        crate::validate_sources(
            churned
                .files
                .iter()
                .map(|f| (f.name.as_str(), f.source.as_str())),
            |name, source| stack_minic::compile(source, name).map(|_| ()),
        )
        .unwrap();
    }

    #[test]
    fn function_churn_count_zero_is_the_identity() {
        let base = generate_archive(&ArchiveConfig::default());
        let churned = churn_functions_count(&base, 5, 0);
        assert_eq!(churned.edited_functions, 0);
        assert_eq!(churned.edited_files, 0);
        for (x, y) in base.iter().zip(churned.files.iter()) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn duplicate_files_append_byte_identical_copies_under_new_paths() {
        let base = generate_archive(&ArchiveConfig {
            packages: 4,
            ..ArchiveConfig::default()
        });
        let extended = duplicate_files(&base, 3, 5);
        assert_eq!(extended.len(), base.len() + 5);
        let names: HashSet<&str> = extended.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names.len(), extended.len(), "paths must be unique");
        for copy in &extended[base.len()..] {
            assert!(copy.name.starts_with("vendor"), "{}", copy.name);
            let original = base
                .iter()
                .find(|f| copy.name.ends_with(&f.name))
                .expect("every duplicate names its source file");
            assert_eq!(copy.source, original.source, "copies are byte-identical");
        }
        // Determinism.
        let again = duplicate_files(&base, 3, 5);
        for (x, y) in extended.iter().zip(again.iter()) {
            assert_eq!(
                (x.name.as_str(), x.source.as_str()),
                (y.name.as_str(), y.source.as_str())
            );
        }
    }

    #[test]
    fn write_archive_materializes_the_population() {
        let dir = std::env::temp_dir().join(format!("stack-archive-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ArchiveConfig {
            packages: 2,
            ..ArchiveConfig::default()
        };
        let paths = write_archive(&cfg, &dir).unwrap();
        assert_eq!(paths.len(), cfg.packages * cfg.files_per_package);
        for path in &paths {
            assert!(path.exists(), "{path:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
