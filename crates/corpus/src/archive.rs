//! Archive-population generator for the cross-run persistence workload.
//!
//! The §6.5 deployment mode scans a whole package archive, and the payoff of
//! a disk-backed query store comes from *structural overlap*: the same
//! unstable idioms re-instantiated across packages, so their queries hit the
//! store instead of the SAT core. The [`synth`](crate::synth) population
//! deliberately varies constants per instance (every injected bug is
//! distinguishable); this module generates the opposite shape — every
//! function body is drawn from a fixed pool of (template, constant-variant)
//! idioms with fixed parameter names, so instantiating the same pool slot in
//! different packages encodes to structurally identical solver queries.
//! Only function names differ, and names of functions never appear in query
//! terms.
//!
//! That makes the archive the right workload for measuring both layers of
//! reuse: a cold scan solves each pool slot once (the
//! [`ArchiveConfig::variants`] knob controls how many such first-sightings
//! it must pay for, and the pool includes deliberately expensive
//! multiplication/division circuits) and answers every repeat from the
//! in-memory table; a warm re-run against the saved store answers every
//! decided query from disk without entering the SAT core at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::{Path, PathBuf};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ArchiveConfig {
    /// Number of packages.
    pub packages: usize,
    /// Files per package (exact).
    pub files_per_package: usize,
    /// Functions per file (exact).
    pub functions_per_file: usize,
    /// Probability that a function is an unstable idiom rather than a
    /// stable one.
    pub unstable_fraction: f64,
    /// Constant variants per unstable template. Each variant embeds a
    /// different literal, so it encodes to a *distinct* solver query: a cold
    /// scan must solve each (template, variant) pair once, while a warm
    /// re-run answers all of them from the persisted store. Raising this
    /// widens the cold/warm gap; 1 collapses every template to a single
    /// shape.
    pub variants: usize,
    /// RNG seed (the population is deterministic given the seed).
    pub seed: u64,
}

impl Default for ArchiveConfig {
    fn default() -> ArchiveConfig {
        ArchiveConfig {
            packages: 24,
            files_per_package: 2,
            functions_per_file: 5,
            unstable_fraction: 0.4,
            variants: 8,
            seed: 0xa2c41,
        }
    }
}

/// One generated source file of the archive.
#[derive(Clone, Debug)]
pub struct ArchiveFile {
    /// Owning package (`archive-0007`).
    pub package: String,
    /// File name (`archive-0007_1.mc`).
    pub name: String,
    /// Mini-C source.
    pub source: String,
    /// Number of unstable idioms instantiated (ground truth for calibration
    /// tests; the checker never sees this).
    pub injected: usize,
}

/// Number of unstable templates [`unstable_body`] instantiates.
const UNSTABLE_TEMPLATES: usize = 7;

/// One unstable idiom body (everything after the function name). Parameter
/// names are fixed per template, and the embedded constant is a pure
/// function of `variant`, so instantiating the same (template, variant)
/// pair anywhere in the archive yields structurally identical solver
/// queries — while distinct variants yield distinct ones. The mix spans
/// cheap queries (null checks) and expensive ones (the multiplication
/// overflow guard, whose division-based encoding is the costliest circuit
/// the blaster builds here), so a cold scan pays real solver time on every
/// first-seen variant.
fn unstable_body(template: usize, variant: usize) -> String {
    // Distinct, deterministic small constants per variant.
    let k = 3 + 13 * (variant as u64);
    match template % UNSTABLE_TEMPLATES {
        0 => {
            format!("(struct pkt *p) {{ long seq = p->seq; if (!p) return {k}; return (int)seq; }}")
        }
        1 => format!("(int x) {{ if (x + {k} < x) return 1; return x; }}"),
        2 => format!(
            "(char *buf, unsigned int len) {{ if (buf + len < buf) return -{k}; return 0; }}"
        ),
        3 => format!(
            "(unsigned int v, int s) {{ unsigned int r = v << s; if (s >= 32) return {k}; \
             return (int)r; }}"
        ),
        4 => {
            format!("(int a, int b) {{ int q = (a + {k}) / b; if (b == 0) return -1; return q; }}")
        }
        5 => format!("(int x) {{ if (abs(x) < -{k}) return 1; return abs(x); }}"),
        // The classic multiplication overflow guard: under the well-defined
        // assumption `a * b` never overflows, so `p / b != a` is always
        // false and the whole check is unstable.
        _ => format!(
            "(int a, int b) {{ int p = a * {k}; int q = p / {k}; if (q != a) return -1; \
             return p + b; }}"
        ),
    }
}

/// One stable idiom body (well-defined filler; must stay report-free).
fn stable_body(template: usize) -> String {
    const STABLE_BODIES: &[&str] = &[
        "(int a, int b) { if (b == 0) return -1; return a / b; }",
        "(unsigned int v, int s) { if (s < 0 || s >= 32) return 0; return (int)(v << s); }",
        "(int a, int b) { int m = a < b ? a : b; return m * 2 + 1; }",
        "(char *p, int n) { if (!p) return -1; if (n < 0) return -2; return *p + n; }",
    ];
    STABLE_BODIES[template % STABLE_BODIES.len()].to_string()
}

/// Number of stable templates [`stable_body`] instantiates.
const STABLE_TEMPLATES: usize = 4;

/// Generate the archive population.
pub fn generate_archive(config: &ArchiveConfig) -> Vec<ArchiveFile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut files = Vec::new();
    let mut uid = 0usize;
    for p in 0..config.packages {
        let package = format!("archive-{p:04}");
        for f in 0..config.files_per_package {
            let mut source = String::new();
            let mut injected = 0usize;
            for _ in 0..config.functions_per_file.max(1) {
                uid += 1;
                let unstable = rng.gen_bool(config.unstable_fraction);
                let body = if unstable {
                    injected += 1;
                    let template = rng.gen_range(0..UNSTABLE_TEMPLATES);
                    let variant = rng.gen_range(0..config.variants.max(1));
                    unstable_body(template, variant)
                } else {
                    stable_body(rng.gen_range(0..STABLE_TEMPLATES))
                };
                source.push_str(&format!("int fn_{uid}{body}\n"));
            }
            files.push(ArchiveFile {
                package: package.clone(),
                name: format!("{package}_{f}.mc"),
                source,
                injected,
            });
        }
    }
    files
}

/// Materialize the archive population as `.mc` files under `dir` (created
/// if needed), returning the written paths in generation order. This is
/// what `stack gen-archive` uses to give the `scan` subcommand a real
/// directory to walk.
pub fn write_archive(config: &ArchiveConfig, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for file in generate_archive(config) {
        let path = dir.join(&file.name);
        std::fs::write(&path, &file.source)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ArchiveConfig::default();
        let a = generate_archive(&cfg);
        let b = generate_archive(&cfg);
        assert_eq!(a.len(), cfg.packages * cfg.files_per_package);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
            assert_eq!(x.injected, y.injected);
        }
    }

    #[test]
    fn generated_files_compile() {
        let cfg = ArchiveConfig {
            packages: 6,
            ..ArchiveConfig::default()
        };
        for file in generate_archive(&cfg) {
            stack_minic::compile(&file.source, &file.name)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", file.name, file.source));
        }
    }

    #[test]
    fn bodies_overlap_across_modules() {
        // Strip the unique function names: the remaining bodies must come
        // from the fixed (template, variant) pool, so the whole archive uses
        // at most `UNSTABLE_TEMPLATES * variants + STABLE_TEMPLATES`
        // distinct shapes — far fewer than the function count, which is what
        // makes repeated instances hit the query store.
        let cfg = ArchiveConfig::default();
        let mut bodies: HashSet<String> = HashSet::new();
        let mut functions = 0usize;
        for file in generate_archive(&cfg) {
            for line in file.source.lines() {
                let body = line
                    .split_once('(')
                    .map(|(_, rest)| rest.to_string())
                    .expect("every line is a function definition");
                bodies.insert(body);
                functions += 1;
            }
        }
        assert!(functions > 100, "population too small to measure overlap");
        let pool = UNSTABLE_TEMPLATES * cfg.variants + STABLE_TEMPLATES;
        assert!(
            bodies.len() <= pool,
            "expected at most {pool} shapes, got {} distinct bodies",
            bodies.len()
        );
        assert!(
            functions > 2 * bodies.len(),
            "population must re-instantiate shapes ({} functions, {} shapes)",
            functions,
            bodies.len()
        );
    }

    #[test]
    fn roughly_the_configured_fraction_is_unstable() {
        let cfg = ArchiveConfig {
            packages: 50,
            ..ArchiveConfig::default()
        };
        let files = generate_archive(&cfg);
        let injected: usize = files.iter().map(|f| f.injected).sum();
        let total: usize = files.len() * cfg.functions_per_file;
        let fraction = injected as f64 / total as f64;
        assert!(
            (0.25..0.55).contains(&fraction),
            "expected ~{} unstable, got {fraction}",
            cfg.unstable_fraction
        );
    }

    #[test]
    fn write_archive_materializes_the_population() {
        let dir = std::env::temp_dir().join(format!("stack-archive-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ArchiveConfig {
            packages: 2,
            ..ArchiveConfig::default()
        };
        let paths = write_archive(&cfg, &dir).unwrap();
        assert_eq!(paths.len(), cfg.packages * cfg.files_per_package);
        for path in &paths {
            assert!(path.exists(), "{path:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
