//! The unstable-code pattern library.
//!
//! Each pattern is a mini-C program reproducing one of the paper's examples
//! (Figures 1, 2, 10–15 and the six §2.2 idioms), annotated with the
//! undefined behavior involved and whether the checker is expected to report
//! it. The §6.6 completeness benchmark — ten tests of which STACK finds
//! seven — is also defined here.

/// The undefined-behavior class a pattern exercises, as a short label
/// matching the Figure 9 / Figure 18 column names.
pub type UbLabel = &'static str;

/// One corpus program.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// Stable identifier (used by tests and the experiment index).
    pub id: &'static str,
    /// Where in the paper the pattern comes from.
    pub paper_ref: &'static str,
    /// Mini-C source code.
    pub source: &'static str,
    /// Name of the function under analysis.
    pub function: &'static str,
    /// UB classes involved (short labels: "pointer", "null", ...).
    pub ub: &'static [UbLabel],
    /// Whether STACK is expected to produce a report for it.
    pub expect_report: bool,
}

/// Figure 1: the pointer overflow check `buf + len < buf` with unsigned len.
pub const FIG1_POINTER_OVERFLOW: Pattern = Pattern {
    id: "fig1_pointer_overflow",
    paper_ref: "Figure 1",
    source: "int check_access(char *buf, char *buf_end, unsigned int len) {\n\
               if (buf + len >= buf_end) return -1;\n\
               if (buf + len < buf) return -1;\n\
               return 0;\n\
             }",
    function: "check_access",
    ub: &["pointer"],
    expect_report: true,
};

/// Figure 2: the Linux TUN driver null-check-after-dereference (CVE-2009-1897).
pub const FIG2_TUN_NULL_CHECK: Pattern = Pattern {
    id: "fig2_tun_null_check",
    paper_ref: "Figure 2",
    source: "int tun_chr_poll(struct tun_struct *tun) {\n\
               long sk = tun->sk;\n\
               if (!tun) return 1;\n\
               return 0;\n\
             }",
    function: "tun_chr_poll",
    ub: &["null"],
    expect_report: true,
};

/// Figure 10: the Postgres 64-bit signed division overflow check placed after
/// the division itself.
pub const FIG10_POSTGRES_DIVISION: Pattern = Pattern {
    id: "fig10_postgres_division",
    paper_ref: "Figure 10",
    source: "int64_t int8div(int64_t arg1, int64_t arg2) {\n\
               if (arg2 == 0) return -1;\n\
               int64_t result = arg1 / arg2;\n\
               if (arg2 == -1 && arg1 < 0 && result <= 0) return -2;\n\
               return result;\n\
             }",
    function: "int8div",
    ub: &["integer", "div"],
    expect_report: true,
};

/// Figure 11: the Linux sysctl `strchr(...) + 1` null check.
pub const FIG11_STRCHR_NULL_CHECK: Pattern = Pattern {
    id: "fig11_strchr_null_check",
    paper_ref: "Figure 11",
    source: "int parse_node_address(char *buf) {\n\
               char *nodep = strchr(buf, '.') + 1;\n\
               if (!nodep) return -5;\n\
               return (int)simple_strtoul(nodep, NULL, 10);\n\
             }",
    function: "parse_node_address",
    ub: &["pointer"],
    expect_report: true,
};

/// Figure 12: the FFmpeg/Libav AMF parser bounds checks `data + x < data`.
pub const FIG12_FFMPEG_BOUNDS: Pattern = Pattern {
    id: "fig12_ffmpeg_bounds",
    paper_ref: "Figure 12",
    source: "int amf_parse(char *data, char *data_end) {\n\
               int size = bytestream_get_be16(data);\n\
               if (data + size >= data_end || data + size < data) return -1;\n\
               data = data + size;\n\
               int len = ff_amf_tag_size(data, data_end);\n\
               if (len < 0 || data + len >= data_end || data + len < data) return -1;\n\
               return 0;\n\
             }",
    function: "amf_parse",
    ub: &["pointer"],
    expect_report: true,
};

/// Figure 13: the plan9port `pdec` negation check `-k >= 0` under `k < 0`.
pub const FIG13_PLAN9_PDEC: Pattern = Pattern {
    id: "fig13_plan9_pdec",
    paper_ref: "Figure 13",
    source: "int pdec_sign(int k) {\n\
               if (k < 0) {\n\
                 if (-k >= 0) return 1;\n\
                 return 2;\n\
               }\n\
               return 0;\n\
             }",
    function: "pdec_sign",
    ub: &["integer"],
    expect_report: true,
};

/// Figure 14: the Postgres time bomb `arg1 != 0 && (-arg1 < 0) == (arg1 < 0)`.
pub const FIG14_POSTGRES_TIMEBOMB: Pattern = Pattern {
    id: "fig14_postgres_timebomb",
    paper_ref: "Figure 14",
    source: "int check_int_min(int64_t arg1) {\n\
               if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0))) return 1;\n\
               return 0;\n\
             }",
    function: "check_int_min",
    ub: &["integer"],
    expect_report: true,
};

/// Figure 15: redundant null check (caller guarantees non-null) — a false
/// warning the paper counts as redundant code.
pub const FIG15_REDUNDANT_NULL: Pattern = Pattern {
    id: "fig15_redundant_null",
    paper_ref: "Figure 15",
    source: "int disconnect(struct p9_client *c) {\n\
               long rdma = c->trans;\n\
               if (c) { return 1; }\n\
               return 0;\n\
             }",
    function: "disconnect",
    ub: &["null"],
    expect_report: true,
};

/// The six unstable sanity checks of §2.2 / Figure 4.
pub const SEC22_EXAMPLES: &[Pattern] = &[
    Pattern {
        id: "sec22_ptr_overflow_const",
        paper_ref: "§2.2 example 1",
        source: "int f(char *p) { if (p + 100 < p) return 1; return 0; }",
        function: "f",
        ub: &["pointer"],
        expect_report: true,
    },
    Pattern {
        id: "sec22_null_after_deref",
        paper_ref: "§2.2 example 2",
        source: "int f(int *p) { int v = *p; if (!p) return 1; return v; }",
        function: "f",
        ub: &["null"],
        expect_report: true,
    },
    Pattern {
        id: "sec22_signed_overflow",
        paper_ref: "§2.2 example 3",
        source: "int f(int x) { if (x + 100 < x) return 1; return 0; }",
        function: "f",
        ub: &["integer"],
        expect_report: true,
    },
    Pattern {
        id: "sec22_signed_overflow_positive",
        paper_ref: "§2.2 example 4",
        source: "int f(int x) { if (x > 0) { if (x + 100 < 0) return 1; } return 0; }",
        function: "f",
        ub: &["integer"],
        expect_report: true,
    },
    Pattern {
        id: "sec22_shift",
        paper_ref: "§2.2 example 5",
        source: "int f(int x) { if (!(1 << x)) return 1; return 0; }",
        function: "f",
        ub: &["shift"],
        expect_report: true,
    },
    Pattern {
        id: "sec22_abs",
        paper_ref: "§2.2 example 6",
        source: "int f(int x) { if (abs(x) < 0) return 1; return 0; }",
        function: "f",
        ub: &["abs"],
        expect_report: true,
    },
];

/// Stable control programs: well-defined checks the checker must NOT flag.
pub const STABLE_CONTROLS: &[Pattern] = &[
    Pattern {
        id: "stable_unsigned_wrap",
        paper_ref: "§2.2 (unsigned variant)",
        source: "int f(unsigned int x) { if (x + 100 < x) return 1; return 0; }",
        function: "f",
        ub: &[],
        expect_report: false,
    },
    Pattern {
        id: "stable_guarded_division",
        paper_ref: "§6.2.1 (correct fix)",
        source: "int f(int x, int y) { if (y == 0) return -1; return x / y; }",
        function: "f",
        ub: &[],
        expect_report: false,
    },
    Pattern {
        id: "stable_checked_pointer",
        paper_ref: "§6.2.2 (correct fix)",
        source: "int f(char *data, char *data_end, int x) {\n\
                   if (x < 0) return -1;\n\
                   if (x >= data_end - data) return -1;\n\
                   return 0;\n\
                 }",
        function: "f",
        ub: &[],
        expect_report: false,
    },
    Pattern {
        id: "stable_null_check_before_deref",
        paper_ref: "Figure 2 (corrected order)",
        source: "int f(struct tun_struct *tun) {\n\
                   if (!tun) return 1;\n\
                   long sk = tun->sk;\n\
                   return (int)sk;\n\
                 }",
        function: "f",
        ub: &[],
        expect_report: false,
    },
];

/// One entry of the §6.6 completeness benchmark.
#[derive(Clone, Debug)]
pub struct CompletenessTest {
    pub pattern: Pattern,
    /// Whether STACK is expected to identify it (7 of the 10 tests).
    pub expected_found: bool,
    /// Why STACK misses it, when it does.
    pub miss_reason: Option<&'static str>,
}

/// The ten-test completeness benchmark of §6.6: seven detectable cases plus
/// three that STACK misses by design (strict aliasing, uninitialized use, and
/// a case lost to approximate reachability conditions).
pub fn completeness_benchmark() -> Vec<CompletenessTest> {
    let found = |p: Pattern| CompletenessTest {
        pattern: p,
        expected_found: true,
        miss_reason: None,
    };
    vec![
        found(FIG1_POINTER_OVERFLOW),
        found(FIG2_TUN_NULL_CHECK),
        found(SEC22_EXAMPLES[2].clone()),
        found(SEC22_EXAMPLES[4].clone()),
        found(SEC22_EXAMPLES[5].clone()),
        found(FIG10_POSTGRES_DIVISION),
        found(FIG13_PLAN9_PDEC),
        CompletenessTest {
            pattern: Pattern {
                id: "miss_strict_aliasing",
                paper_ref: "§4.6 / §6.6 (strict aliasing violation)",
                source: "int f(int *ip, long l) {\n\
                           long *lp = (long *)ip;\n\
                           *lp = l;\n\
                           return *ip;\n\
                         }",
                function: "f",
                ub: &[],
                expect_report: false,
            },
            expected_found: false,
            miss_reason: Some("strict aliasing violations are not modeled (gcc already warns)"),
        },
        CompletenessTest {
            pattern: Pattern {
                id: "miss_uninitialized_use",
                paper_ref: "§4.6 / §6.6 (uninitialized variable)",
                source: "int f(int flag) {\n\
                           int x;\n\
                           if (flag) x = 1;\n\
                           return x;\n\
                         }",
                function: "f",
                ub: &[],
                expect_report: false,
            },
            expected_found: false,
            miss_reason: Some(
                "uses of uninitialized variables are not modeled (gcc already warns)",
            ),
        },
        CompletenessTest {
            pattern: Pattern {
                id: "miss_interprocedural_reachability",
                paper_ref: "§4.6 / §6.6 (approximate reachability)",
                source: "int helper(int *p);\n\
                         int f(int *p, int use_helper) {\n\
                           int v = 0;\n\
                           if (use_helper) v = helper(p);\n\
                           if (!p) return v;\n\
                           return *p + v;\n\
                         }",
                function: "f",
                ub: &[],
                expect_report: false,
            },
            expected_found: false,
            miss_reason: Some(
                "the dereference follows the check here; the cross-function evidence that would \
                 make it unstable is lost to the per-function approximation",
            ),
        },
    ]
}

/// Every named pattern (paper figures, §2.2 idioms, and stable controls).
pub fn all_patterns() -> Vec<Pattern> {
    let mut v = vec![
        FIG1_POINTER_OVERFLOW,
        FIG2_TUN_NULL_CHECK,
        FIG10_POSTGRES_DIVISION,
        FIG11_STRCHR_NULL_CHECK,
        FIG12_FFMPEG_BOUNDS,
        FIG13_PLAN9_PDEC,
        FIG14_POSTGRES_TIMEBOMB,
        FIG15_REDUNDANT_NULL,
    ];
    v.extend(SEC22_EXAMPLES.iter().cloned());
    v.extend(STABLE_CONTROLS.iter().cloned());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_compile_to_ir() {
        for p in all_patterns() {
            let module = stack_minic::compile(p.source, &format!("{}.c", p.id))
                .unwrap_or_else(|e| panic!("{}: {e}", p.id));
            assert!(
                module.function(p.function).is_some(),
                "{}: function {} missing",
                p.id,
                p.function
            );
            stack_ir::verify_module(&module).unwrap_or_else(|e| panic!("{}: {e:?}", p.id));
        }
    }

    #[test]
    fn completeness_benchmark_has_ten_tests_seven_found() {
        let tests = completeness_benchmark();
        assert_eq!(tests.len(), 10);
        assert_eq!(tests.iter().filter(|t| t.expected_found).count(), 7);
        for t in &tests {
            assert!(
                stack_minic::compile(t.pattern.source, "c.c").is_ok(),
                "{}",
                t.pattern.id
            );
            if !t.expected_found {
                assert!(t.miss_reason.is_some());
            }
        }
    }

    #[test]
    fn pattern_ids_are_unique() {
        let mut ids: Vec<&str> = all_patterns().iter().map(|p| p.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
