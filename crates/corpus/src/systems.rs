//! Per-system bug corpora mirroring Figure 9.
//!
//! The paper reports 160 new bugs across 23 systems (plus an "others" bucket),
//! broken down by the undefined behavior involved. Since the original code
//! bases are not available here, each cell of that table is instantiated as a
//! mini-C program exercising the corresponding UB class, generated from the
//! pattern templates below. The row totals (bugs per system) and the column
//! totals (bugs per UB class) match the paper exactly; the individual cell
//! assignment is an approximation where the paper's layout is ambiguous,
//! which DESIGN.md documents.

use crate::patterns::UbLabel;

/// Order of the UB columns in Figure 9.
pub const UB_COLUMNS: &[UbLabel] = &[
    "pointer", "null", "integer", "div", "shift", "buffer", "abs", "memcpy", "free", "realloc",
];

/// One row of Figure 9: a system and its bug counts per UB class.
#[derive(Clone, Debug)]
pub struct SystemRow {
    pub system: &'static str,
    pub total: usize,
    /// Counts in `UB_COLUMNS` order.
    pub by_ub: [usize; 10],
}

/// The Figure 9 table. Row and column totals match the paper (160 bugs).
pub fn figure9_rows() -> Vec<SystemRow> {
    let row = |system, total, by_ub| SystemRow {
        system,
        total,
        by_ub,
    };
    vec![
        row("Binutils", 8, [7, 1, 0, 0, 0, 0, 0, 0, 0, 0]),
        row("e2fsprogs", 3, [0, 3, 0, 0, 0, 0, 0, 0, 0, 0]),
        row("FFmpeg+Libav", 21, [9, 10, 2, 0, 0, 0, 0, 0, 0, 0]),
        row("FreeType", 3, [0, 0, 3, 0, 0, 0, 0, 0, 0, 0]),
        row("GRUB", 2, [0, 2, 0, 0, 0, 0, 0, 0, 0, 0]),
        row("HiStar", 3, [0, 0, 3, 0, 0, 0, 0, 0, 0, 0]),
        row("Kerberos", 11, [0, 9, 2, 0, 0, 0, 0, 0, 0, 0]),
        row("libX11", 2, [0, 0, 2, 0, 0, 0, 0, 0, 0, 0]),
        row("libarchive", 2, [0, 2, 0, 0, 0, 0, 0, 0, 0, 0]),
        row("libgcrypt", 2, [0, 0, 0, 0, 2, 0, 0, 0, 0, 0]),
        row("Linux kernel", 32, [0, 6, 1, 5, 10, 5, 0, 5, 0, 0]),
        row("Mozilla", 3, [0, 2, 0, 1, 0, 0, 0, 0, 0, 0]),
        row("OpenAFS", 11, [0, 6, 0, 1, 4, 0, 0, 0, 0, 0]),
        row("plan9port", 3, [0, 0, 1, 0, 2, 0, 0, 0, 0, 0]),
        row("Postgres", 9, [0, 0, 7, 0, 2, 0, 0, 0, 0, 0]),
        row("Python", 5, [5, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        row("QEMU", 4, [0, 3, 0, 0, 1, 0, 0, 0, 0, 0]),
        row("Ruby+Rubinius", 2, [0, 0, 0, 0, 2, 0, 0, 0, 0, 0]),
        row("Sane", 8, [0, 0, 0, 0, 0, 8, 0, 0, 0, 0]),
        row("uClibc", 2, [0, 0, 2, 0, 0, 0, 0, 0, 0, 0]),
        row("VLC", 2, [0, 0, 0, 0, 0, 0, 0, 0, 2, 0]),
        row("Xen", 3, [0, 0, 0, 0, 0, 1, 1, 1, 0, 0]),
        row("Xpdf", 9, [8, 0, 0, 0, 0, 0, 0, 1, 0, 0]),
        row("others", 10, [0, 0, 0, 0, 0, 0, 0, 0, 7, 3]),
    ]
}

/// A bug instance: a generated program expected to yield one unstable-code
/// report of the given UB class.
#[derive(Clone, Debug)]
pub struct BugInstance {
    pub system: &'static str,
    pub ub: UbLabel,
    pub file: String,
    pub function: String,
    pub source: String,
}

/// Template program for one UB class; `n` makes names unique.
pub fn bug_template(ub: UbLabel, function: &str, n: usize) -> String {
    match ub {
        // Alternate between the Figure 1 form (unsigned length, folded by the
        // boolean oracle) and the Figure 12 form (signed offset, rewritten by
        // the algebra oracle) so both algorithms are exercised at scale.
        "pointer" if n.is_multiple_of(2) => format!(
            "int {function}(char *data, char *data_end, int size) {{\n\
               if (data + size >= data_end || data + size < data) return -{n};\n\
               return 0;\n\
             }}"
        ),
        "pointer" => format!(
            "int {function}(char *buf, unsigned int len) {{\n\
               if (buf + len < buf) return -{n};\n\
               return 0;\n\
             }}"
        ),
        "null" => format!(
            "int {function}(struct dev *d) {{\n\
               long state = d->state;\n\
               if (!d) return -{n};\n\
               return (int)state;\n\
             }}"
        ),
        "integer" => format!(
            "int {function}(int x) {{\n\
               if (x + {k} < x) return -{n};\n\
               return x;\n\
             }}",
            k = n + 1
        ),
        "div" => format!(
            "int {function}(int x, int y) {{\n\
               int q = x / y;\n\
               if (y == 0) return -{n};\n\
               return q;\n\
             }}"
        ),
        "shift" => format!(
            "int {function}(unsigned int x, int s) {{\n\
               unsigned int v = x << s;\n\
               if (s >= 32) return -{n};\n\
               return (int)v;\n\
             }}"
        ),
        "buffer" => format!(
            "int {function}(int i) {{\n\
               char tbl[{size}];\n\
               char v = tbl[i];\n\
               if (i >= {size}) return -{n};\n\
               return v;\n\
             }}",
            size = 8 + (n % 8)
        ),
        "abs" => format!(
            "int {function}(int x) {{\n\
               if (abs(x) < 0) return -{n};\n\
               return abs(x);\n\
             }}"
        ),
        "memcpy" => format!(
            "int {function}(char *dst, char *src, unsigned long len) {{\n\
               memcpy(dst, src, len);\n\
               if (len > 0 && dst == src) return -{n};\n\
               return 0;\n\
             }}"
        ),
        "free" => format!(
            "int {function}(int *p) {{\n\
               free(p);\n\
               if (*p == 0) return -{n};\n\
               return 0;\n\
             }}"
        ),
        "realloc" => format!(
            "int {function}(char *p, unsigned long len) {{\n\
               char *q = realloc(p, len);\n\
               if (!q) return -1;\n\
               if (*p == 0) return -{n};\n\
               return 0;\n\
             }}"
        ),
        other => panic!("unknown UB label {other}"),
    }
}

/// A real-world unstable-code idiom from one of the paper's Table 1
/// systems, transcribed as a mini-C program.
#[derive(Clone, Copy, Debug)]
pub struct SystemIdiom {
    /// Stable identifier (usable as a file name).
    pub id: &'static str,
    /// The system the idiom was found in.
    pub system: &'static str,
    /// Where the paper discusses it.
    pub paper_ref: &'static str,
    /// The transcribed program.
    pub source: &'static str,
    /// The UB class a report must involve.
    pub ub: UbLabel,
}

/// Real-world idioms from the paper's Table 1 systems, beyond the Figure 9
/// cell templates: each is a distinct hand-transcribed shape (not a
/// generated template instance) that the checker must flag with the given
/// UB class.
pub fn table1_idioms() -> Vec<SystemIdiom> {
    vec![
        SystemIdiom {
            id: "libtool_null_check",
            system: "libtool-2.4.2",
            paper_ref: "Table 1: null check after dereference",
            // lt__memdup-style helper: the entry length is read before the
            // argument is validated, so the later null check is unstable.
            source: "int lt_argz_insert(char *argz, char *entry) {\n\
                       long len = *entry;\n\
                       if (!entry) return -22;\n\
                       if (!argz) return -22;\n\
                       return (int)len;\n\
                     }",
            ub: "null",
        },
        SystemIdiom {
            id: "e1000e_memset_null",
            system: "Linux e1000e",
            paper_ref: "Table 1: memset of possibly-null pointer",
            // e1000_clean_rx_irq-style reset: the buffer is cleared with
            // memset before the driver checks whether the allocation
            // succeeded; memset's null-argument UB makes the check dead.
            source: "int e1000_configure_rx(char *rx_ring, unsigned long size) {\n\
                       memset(rx_ring, 0, size);\n\
                       if (!rx_ring) return -12;\n\
                       return 0;\n\
                     }",
            ub: "null",
        },
        SystemIdiom {
            id: "ext2fs_rec_len_overflow",
            system: "e2fsprogs",
            paper_ref: "Table 1: signed offset-overflow check",
            // Directory-entry iteration guard: `offset + rec_len < offset`
            // relies on signed wraparound, which the compiler may assume
            // never happens.
            source: "int ext2fs_process_dir(int offset, int rec_len) {\n\
                       if (offset + rec_len < offset) return -1;\n\
                       if (rec_len < 8) return -1;\n\
                       return offset + rec_len;\n\
                     }",
            ub: "integer",
        },
    ]
}

/// Instantiate the whole Figure 9 corpus: one program per reported bug.
pub fn figure9_corpus() -> Vec<BugInstance> {
    let mut out = Vec::new();
    let mut counter = 0usize;
    for row in figure9_rows() {
        for (col, &count) in UB_COLUMNS.iter().zip(row.by_ub.iter()) {
            for k in 0..count {
                counter += 1;
                let function = format!(
                    "{}_{}_{k}",
                    row.system.to_lowercase().replace(['+', ' ', '-'], "_"),
                    col
                );
                out.push(BugInstance {
                    system: row.system,
                    ub: col,
                    file: format!("{}_{counter}.c", col),
                    function: function.clone(),
                    source: bug_template(col, &function, counter),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let rows = figure9_rows();
        let total: usize = rows.iter().map(|r| r.total).sum();
        assert_eq!(total, 160);
        for r in &rows {
            assert_eq!(r.by_ub.iter().sum::<usize>(), r.total, "{}", r.system);
        }
        // Column totals from the "all" row of Figure 9.
        let expected = [29, 44, 23, 7, 23, 14, 1, 7, 9, 3];
        for (i, &e) in expected.iter().enumerate() {
            let got: usize = rows.iter().map(|r| r.by_ub[i]).sum();
            assert_eq!(got, e, "column {}", UB_COLUMNS[i]);
        }
    }

    #[test]
    fn corpus_has_one_program_per_bug() {
        let corpus = figure9_corpus();
        assert_eq!(corpus.len(), 160);
        // All programs must compile.
        for bug in corpus.iter().step_by(13) {
            stack_minic::compile(&bug.source, &bug.file)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", bug.file, bug.source));
        }
    }

    #[test]
    fn table1_idioms_compile_and_are_distinct() {
        let idioms = table1_idioms();
        assert!(idioms.len() >= 3);
        let mut ids: Vec<&str> = idioms.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), idioms.len(), "idiom ids must be unique");
        for idiom in &idioms {
            stack_minic::compile(idiom.source, &format!("{}.c", idiom.id))
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", idiom.id, idiom.source));
            assert!(UB_COLUMNS.contains(&idiom.ub), "{}", idiom.id);
        }
    }

    #[test]
    fn templates_cover_every_ub_class() {
        for (i, &ub) in UB_COLUMNS.iter().enumerate() {
            let src = bug_template(ub, "probe", i + 1);
            stack_minic::compile(&src, "probe.c").unwrap_or_else(|e| panic!("{ub}: {e}\n{src}"));
        }
    }
}
