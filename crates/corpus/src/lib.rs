//! `stack-corpus` — unstable-code corpora for the STACK reproduction.
//!
//! The paper evaluates STACK on real systems (Figure 9), on six hand-picked
//! compiler-survey idioms (Figure 4 / §2.2), on a ten-test completeness
//! benchmark (§6.6), and on the whole Debian Wheezy archive (§6.5, Figures
//! 17–18). None of those code bases ship with this reproduction, so this
//! crate provides their stand-ins:
//!
//! * [`patterns`] — the paper's own examples, transcribed as mini-C programs
//!   (Figures 1, 2, 10–15; the §2.2 idioms; stable control programs; and the
//!   completeness benchmark);
//! * [`systems`] — one generated program per bug of Figure 9, with row and
//!   column totals matching the paper;
//! * [`synth`] — a seeded synthetic "Debian archive" whose population-level
//!   statistics are calibrated to §6.5;
//! * [`archive`] — an overlap-heavy archive population (a fixed idiom pool
//!   re-instantiated across packages) for the cross-run persistence
//!   workload: repeated scans of it exercise the disk-backed query store.

pub mod archive;
pub mod patterns;
pub mod synth;
pub mod systems;

pub use archive::{
    churn_archive, generate_archive, write_archive, ArchiveConfig, ArchiveFile, ChurnedArchive,
};
pub use patterns::{
    all_patterns, completeness_benchmark, CompletenessTest, Pattern, FIG10_POSTGRES_DIVISION,
    FIG11_STRCHR_NULL_CHECK, FIG12_FFMPEG_BOUNDS, FIG13_PLAN9_PDEC, FIG14_POSTGRES_TIMEBOMB,
    FIG15_REDUNDANT_NULL, FIG1_POINTER_OVERFLOW, FIG2_TUN_NULL_CHECK, SEC22_EXAMPLES,
    STABLE_CONTROLS,
};
pub use synth::{generate, SynthConfig, SynthFile, SynthPackage};
pub use systems::{
    bug_template, figure9_corpus, figure9_rows, table1_idioms, BugInstance, SystemIdiom, SystemRow,
    UB_COLUMNS,
};
