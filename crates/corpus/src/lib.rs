//! `stack-corpus` — unstable-code corpora for the STACK reproduction.
//!
//! The paper evaluates STACK on real systems (Figure 9), on six hand-picked
//! compiler-survey idioms (Figure 4 / §2.2), on a ten-test completeness
//! benchmark (§6.6), and on the whole Debian Wheezy archive (§6.5, Figures
//! 17–18). None of those code bases ship with this reproduction, so this
//! crate provides their stand-ins:
//!
//! * [`patterns`] — the paper's own examples, transcribed as mini-C programs
//!   (Figures 1, 2, 10–15; the §2.2 idioms; stable control programs; and the
//!   completeness benchmark);
//! * [`systems`] — one generated program per bug of Figure 9, with row and
//!   column totals matching the paper;
//! * [`synth`] — a seeded synthetic "Debian archive" whose population-level
//!   statistics are calibrated to §6.5;
//! * [`archive`] — an overlap-heavy archive population (a fixed idiom pool
//!   re-instantiated across packages) for the cross-run persistence
//!   workload: repeated scans of it exercise the disk-backed query store.

pub mod archive;
pub mod patterns;
pub mod synth;
pub mod systems;

/// Compile-check a generated population with a caller-supplied front end,
/// stopping at the first failure and rendering it as a `file: error`
/// string. The generators are seeded and deterministic, so a failure here
/// means a generator bug; drivers (`stack gen-archive`, this crate's own
/// tests) surface it as a clean user-facing error instead of panicking
/// mid-write. Returns how many files validated.
pub fn validate_sources<'a, E: std::fmt::Display>(
    files: impl IntoIterator<Item = (&'a str, &'a str)>,
    mut compile: impl FnMut(&'a str, &'a str) -> Result<(), E>,
) -> Result<usize, String> {
    let mut checked = 0;
    for (name, source) in files {
        compile(name, source).map_err(|e| format!("{name}: {e}"))?;
        checked += 1;
    }
    Ok(checked)
}

pub use archive::{
    churn_archive, churn_functions, churn_functions_count, duplicate_files, generate_archive,
    write_archive, write_archive_edited, ArchiveConfig, ArchiveFile, ChurnedArchive, FunctionChurn,
};
pub use patterns::{
    all_patterns, completeness_benchmark, CompletenessTest, Pattern, FIG10_POSTGRES_DIVISION,
    FIG11_STRCHR_NULL_CHECK, FIG12_FFMPEG_BOUNDS, FIG13_PLAN9_PDEC, FIG14_POSTGRES_TIMEBOMB,
    FIG15_REDUNDANT_NULL, FIG1_POINTER_OVERFLOW, FIG2_TUN_NULL_CHECK, SEC22_EXAMPLES,
    STABLE_CONTROLS,
};
pub use synth::{generate, SynthConfig, SynthFile, SynthPackage};
pub use systems::{
    bug_template, figure9_corpus, figure9_rows, table1_idioms, BugInstance, SystemIdiom, SystemRow,
    UB_COLUMNS,
};
