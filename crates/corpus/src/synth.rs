//! Synthetic package generator for the Debian-scale prevalence experiment.
//!
//! Figures 16–18 and §6.5 of the paper measure STACK over the Debian Wheezy
//! archive (8,575 C/C++ packages, ~40% of which contain unstable code). The
//! archive is not available here, so this module generates a seeded synthetic
//! population: each "package" is a set of mini-C files mixing stable code
//! with unstable fragments drawn from the bug templates, calibrated so the
//! population-level proportions (fraction of packages with at least one
//! report, mix of UB classes, mix of algorithms) resemble the paper's. The
//! checker still has to find every instance — nothing in the generated code
//! is labeled.

use crate::systems::{bug_template, UB_COLUMNS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated source file.
#[derive(Clone, Debug)]
pub struct SynthFile {
    pub name: String,
    pub source: String,
    /// Number of unstable fragments injected (ground truth for calibration
    /// tests; the checker never sees this).
    pub injected: usize,
}

/// A generated package.
#[derive(Clone, Debug)]
pub struct SynthPackage {
    pub name: String,
    pub files: Vec<SynthFile>,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of packages to generate.
    pub packages: usize,
    /// Files per package (upper bound; at least 1).
    pub max_files_per_package: usize,
    /// Functions per file (upper bound; at least 1).
    pub max_functions_per_file: usize,
    /// Probability that a package contains any unstable code at all
    /// (the paper found 3,471 / 8,575 ≈ 40%).
    pub unstable_package_fraction: f64,
    /// Probability that a function in an "unstable" package is itself
    /// unstable.
    pub unstable_function_fraction: f64,
    /// RNG seed (the whole population is deterministic given the seed).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            packages: 50,
            max_files_per_package: 4,
            max_functions_per_file: 6,
            unstable_package_fraction: 0.405,
            unstable_function_fraction: 0.25,
            seed: 0x57ac4,
        }
    }
}

/// Weights over UB classes used when injecting unstable fragments, shaped
/// after the Figure 18 report distribution (null dereference dominates,
/// followed by buffer/integer/pointer, with a long tail).
const UB_WEIGHTS: &[(usize, u32)] = &[
    (1, 47), // null
    (5, 8),  // buffer
    (2, 7),  // integer
    (0, 6),  // pointer
    (4, 2),  // shift
    (7, 1),  // memcpy
    (3, 1),  // div
    (8, 1),  // free
    (6, 1),  // abs
    (9, 1),  // realloc
];

/// Stable (well-defined) function templates used as filler code.
fn stable_template(function: &str, n: usize) -> String {
    match n % 5 {
        0 => format!(
            "int {function}(int x, int y) {{\n\
               if (y == 0) return -1;\n\
               return x / y;\n\
             }}"
        ),
        1 => format!(
            "int {function}(unsigned int x) {{\n\
               unsigned int acc = 0;\n\
               for (unsigned int i = 0; i < x; i = i + 1) acc += i;\n\
               return (int)acc;\n\
             }}"
        ),
        2 => format!(
            "int {function}(char *p, int n) {{\n\
               if (!p) return -1;\n\
               if (n < 0) return -2;\n\
               return *p + n;\n\
             }}"
        ),
        3 => format!(
            "int {function}(int a, int b) {{\n\
               int m = a < b ? a : b;\n\
               return m * 2 + 1;\n\
             }}"
        ),
        _ => format!(
            "unsigned int {function}(unsigned int v, int s) {{\n\
               if (s < 0 || s >= 32) return 0;\n\
               return v << s;\n\
             }}"
        ),
    }
}

/// Pick a UB class index according to the Figure 18-shaped weights.
fn pick_ub(rng: &mut StdRng) -> usize {
    let total: u32 = UB_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(idx, w) in UB_WEIGHTS {
        if roll < w {
            return idx;
        }
        roll -= w;
    }
    1
}

/// Generate a package population.
pub fn generate(config: &SynthConfig) -> Vec<SynthPackage> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut packages = Vec::with_capacity(config.packages);
    let mut uid = 0usize;
    for p in 0..config.packages {
        let unstable_pkg = rng.gen_bool(config.unstable_package_fraction);
        let nfiles = rng.gen_range(1..=config.max_files_per_package);
        let mut files = Vec::new();
        for f in 0..nfiles {
            let nfuncs = rng.gen_range(1..=config.max_functions_per_file);
            let mut source = String::new();
            let mut injected = 0usize;
            for _ in 0..nfuncs {
                uid += 1;
                let fname = format!("fn_{uid}");
                let unstable = unstable_pkg && rng.gen_bool(config.unstable_function_fraction);
                let snippet = if unstable {
                    injected += 1;
                    let ub = UB_COLUMNS[pick_ub(&mut rng)];
                    bug_template(ub, &fname, uid)
                } else {
                    stable_template(&fname, uid)
                };
                source.push_str(&snippet);
                source.push('\n');
            }
            files.push(SynthFile {
                name: format!("pkg{p}_file{f}.c"),
                source,
                injected,
            });
        }
        packages.push(SynthPackage {
            name: format!("package-{p:04}"),
            files,
        });
    }
    packages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            packages: 10,
            ..SynthConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.files.len(), y.files.len());
            for (fx, fy) in x.files.iter().zip(y.files.iter()) {
                assert_eq!(fx.source, fy.source);
            }
        }
    }

    #[test]
    fn generated_files_compile() {
        let cfg = SynthConfig {
            packages: 8,
            seed: 7,
            ..SynthConfig::default()
        };
        let packages = generate(&cfg);
        let checked = crate::validate_sources(
            packages
                .iter()
                .flat_map(|pkg| &pkg.files)
                .map(|f| (f.name.as_str(), f.source.as_str())),
            |name, source| stack_minic::compile(source, name).map(|_| ()),
        )
        .unwrap();
        assert_eq!(
            checked,
            packages.iter().map(|p| p.files.len()).sum::<usize>()
        );
    }

    #[test]
    fn roughly_forty_percent_of_packages_have_injections() {
        let cfg = SynthConfig {
            packages: 200,
            seed: 99,
            ..SynthConfig::default()
        };
        let pkgs = generate(&cfg);
        let with_injection = pkgs
            .iter()
            .filter(|p| p.files.iter().any(|f| f.injected > 0))
            .count();
        let fraction = with_injection as f64 / pkgs.len() as f64;
        assert!(
            (0.25..0.55).contains(&fraction),
            "expected roughly 40% of packages to contain unstable code, got {fraction}"
        );
    }
}
