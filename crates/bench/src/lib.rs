//! `stack-bench` — experiment harnesses that regenerate every table and
//! figure of the paper's evaluation (§2.3 and §6).
//!
//! Each `figure*`/`sec*` function returns a plain data structure and a
//! formatted text rendering; the binaries under `src/bin/` print them, and
//! `EXPERIMENTS.md` records the comparison against the paper's numbers.

use serde::Serialize;
use stack_core::{
    Algorithm, AnalysisSession, Checker, CheckerConfig, ScanEvent, ScanPipeline, ScanSource,
    ScanStore, ScanTask, UbKind,
};
use stack_corpus::{
    churn_archive, churn_functions, completeness_benchmark, duplicate_files, figure9_corpus,
    generate, generate_archive, ArchiveConfig, ArchiveFile, SynthConfig, UB_COLUMNS,
};
use stack_opt::{lowest_discarding_level, survey_compilers};
use stack_solver::DiskQueryStore;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Figure 4: the compiler × example matrix of lowest discarding levels.
pub struct Figure4 {
    /// Example labels, in the paper's column order.
    pub examples: Vec<&'static str>,
    /// Rows: compiler name and, per example, the lowest `-On` (None = "–").
    pub rows: Vec<(String, Vec<Option<u8>>)>,
}

/// Regenerate Figure 4 by running each surveyed compiler profile over the six
/// §2.2 idioms at increasing optimization levels.
pub fn figure4() -> Figure4 {
    let examples = vec![
        "if (p + 100 < p)",
        "*p; if (!p)",
        "if (x + 100 < x)",
        "if (x+ + 100 < 0)",
        "if (!(1 << x))",
        "if (abs(x) < 0)",
    ];
    let sources: Vec<&str> = stack_corpus::SEC22_EXAMPLES
        .iter()
        .map(|p| p.source)
        .collect();
    let mut rows = Vec::new();
    for profile in survey_compilers() {
        let mut cells = Vec::new();
        for src in &sources {
            cells.push(lowest_discarding_level(src, "f", &profile));
        }
        rows.push((profile.name.to_string(), cells));
    }
    Figure4 { examples, rows }
}

impl Figure4 {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 4: lowest -O level at which each compiler discards the check"
        );
        let _ = writeln!(out, "{:<18} {}", "compiler", self.examples.join(" | "));
        for (name, cells) in &self.rows {
            let cells: Vec<String> = cells
                .iter()
                .map(|c| match c {
                    Some(l) => format!("O{l}"),
                    None => "–".to_string(),
                })
                .collect();
            let _ = writeln!(out, "{name:<18} {}", cells.join("   "));
        }
        out
    }
}

/// Figure 9: bugs found per system and per UB class, by running the checker
/// over the per-system corpus.
pub struct Figure9 {
    pub rows: Vec<(String, usize, HashMap<UbKind, usize>)>,
    pub total: usize,
}

/// Regenerate Figure 9 from the per-system corpus.
pub fn figure9() -> Figure9 {
    let checker = Checker::new();
    let mut rows: Vec<(String, usize, HashMap<UbKind, usize>)> = Vec::new();
    for bug in figure9_corpus() {
        let result = checker
            .check_source(&bug.source, &bug.file)
            .expect("corpus programs must compile");
        let found = !result.reports.is_empty();
        let entry = match rows.iter_mut().find(|(s, _, _)| *s == bug.system) {
            Some(e) => e,
            None => {
                rows.push((bug.system.to_string(), 0, HashMap::new()));
                rows.last_mut().unwrap()
            }
        };
        if found {
            entry.1 += 1;
            // Attribute the bug to the UB class(es) the checker reported.
            let mut kinds: Vec<UbKind> = result
                .reports
                .iter()
                .flat_map(|r| r.ub_sources.iter().map(|s| s.kind))
                .collect();
            kinds.sort();
            kinds.dedup();
            for k in kinds.into_iter().take(1) {
                *entry.2.entry(k).or_insert(0) += 1;
            }
        }
    }
    let total = rows.iter().map(|(_, n, _)| n).sum();
    Figure9 { rows, total }
}

impl Figure9 {
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 9: bugs identified per system (total {})",
            self.total
        );
        let _ = writeln!(
            out,
            "{:<16} {:>6}  {}",
            "system",
            "#bugs",
            UB_COLUMNS.join(" ")
        );
        for (system, count, by_kind) in &self.rows {
            let cells: Vec<String> = UbKind::all()
                .iter()
                .map(|k| {
                    let n = by_kind.get(k).copied().unwrap_or(0);
                    if n == 0 {
                        ".".to_string()
                    } else {
                        n.to_string()
                    }
                })
                .collect();
            let _ = writeln!(out, "{system:<16} {count:>6}  {}", cells.join(" "));
        }
        out
    }
}

/// Figure 16: build/analysis time, files, queries, and timeouts for three
/// code bases of increasing size.
pub struct Figure16Row {
    pub name: String,
    pub build_time_ms: u128,
    pub analysis_time_ms: u128,
    pub files: usize,
    pub queries: u64,
    pub timeouts: u64,
}

/// Regenerate the Figure 16 performance table over synthetic code bases
/// standing in for Kerberos, Postgres, and the Linux kernel.
pub fn figure16(scale: usize) -> Vec<Figure16Row> {
    let presets = [
        ("kerberos (synthetic)", 8 * scale, 11),
        ("postgres (synthetic)", 12 * scale, 23),
        ("linux (synthetic)", 24 * scale, 47),
    ];
    let mut rows = Vec::new();
    for (name, packages, seed) in presets {
        let cfg = SynthConfig {
            packages,
            seed,
            ..SynthConfig::default()
        };
        let build_start = Instant::now();
        let population = generate(&cfg);
        let mut modules = Vec::new();
        let mut files = 0usize;
        for pkg in &population {
            for file in &pkg.files {
                files += 1;
                let mut module = stack_minic::compile(&file.source, &file.name)
                    .expect("synthetic files compile");
                stack_opt::optimize_for_analysis(&mut module);
                modules.push(module);
            }
        }
        let build_time_ms = build_start.elapsed().as_millis();
        let checker = Checker::with_config(CheckerConfig {
            query_budget: 500_000,
            ..CheckerConfig::default()
        });
        let analysis_start = Instant::now();
        let mut queries = 0u64;
        let mut timeouts = 0u64;
        for module in &modules {
            let result = checker.check_module(module);
            queries += result.stats.queries;
            timeouts += result.stats.timeouts;
        }
        rows.push(Figure16Row {
            name: name.to_string(),
            build_time_ms,
            analysis_time_ms: analysis_start.elapsed().as_millis(),
            files,
            queries,
            timeouts,
        });
    }
    rows
}

/// Render the Figure 16 table.
pub fn render_figure16(rows: &[Figure16Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 16: {:<22} {:>10} {:>12} {:>8} {:>10} {:>10}",
        "code base", "build(ms)", "analyze(ms)", "files", "queries", "timeouts"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "           {:<22} {:>10} {:>12} {:>8} {:>10} {:>10}",
            r.name, r.build_time_ms, r.analysis_time_ms, r.files, r.queries, r.timeouts
        );
    }
    out
}

/// Figures 17/18 + §6.5: reports per algorithm, reports per UB condition, and
/// the fraction of packages with at least one report.
pub struct PrevalenceResult {
    pub packages: usize,
    pub packages_with_reports: usize,
    pub reports_by_algorithm: HashMap<Algorithm, usize>,
    pub packages_by_algorithm: HashMap<Algorithm, usize>,
    pub reports_by_ub: HashMap<UbKind, usize>,
    pub packages_by_ub: HashMap<UbKind, usize>,
}

/// Run the checker over a synthetic package population.
pub fn prevalence(packages: usize, seed: u64) -> PrevalenceResult {
    let cfg = SynthConfig {
        packages,
        seed,
        ..SynthConfig::default()
    };
    let population = generate(&cfg);
    let checker = Checker::new();
    let mut result = PrevalenceResult {
        packages: population.len(),
        packages_with_reports: 0,
        reports_by_algorithm: HashMap::new(),
        packages_by_algorithm: HashMap::new(),
        reports_by_ub: HashMap::new(),
        packages_by_ub: HashMap::new(),
    };
    for pkg in &population {
        let mut pkg_algorithms = Vec::new();
        let mut pkg_kinds = Vec::new();
        let mut any = false;
        for file in &pkg.files {
            let check = checker
                .check_source(&file.source, &file.name)
                .expect("synthetic files compile");
            for report in &check.reports {
                any = true;
                *result
                    .reports_by_algorithm
                    .entry(report.algorithm)
                    .or_insert(0) += 1;
                pkg_algorithms.push(report.algorithm);
                for src in &report.ub_sources {
                    *result.reports_by_ub.entry(src.kind).or_insert(0) += 1;
                    pkg_kinds.push(src.kind);
                }
            }
        }
        if any {
            result.packages_with_reports += 1;
        }
        pkg_algorithms.sort_by_key(|a| a.name());
        pkg_algorithms.dedup();
        for a in pkg_algorithms {
            *result.packages_by_algorithm.entry(a).or_insert(0) += 1;
        }
        pkg_kinds.sort();
        pkg_kinds.dedup();
        for k in pkg_kinds {
            *result.packages_by_ub.entry(k).or_insert(0) += 1;
        }
    }
    result
}

impl PrevalenceResult {
    /// Render the Figure 17 table (reports per algorithm).
    pub fn render_figure17(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 17: reports per algorithm over {} packages ({} with >=1 report, {:.1}%)",
            self.packages,
            self.packages_with_reports,
            100.0 * self.packages_with_reports as f64 / self.packages.max(1) as f64
        );
        for alg in [
            Algorithm::Elimination,
            Algorithm::SimplifyBoolean,
            Algorithm::SimplifyAlgebra,
        ] {
            let _ = writeln!(
                out,
                "  {:<38} {:>8} reports {:>8} packages",
                alg.name(),
                self.reports_by_algorithm.get(&alg).copied().unwrap_or(0),
                self.packages_by_algorithm.get(&alg).copied().unwrap_or(0),
            );
        }
        out
    }

    /// Render the Figure 18 table (reports per UB condition).
    pub fn render_figure18(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Figure 18: reports per undefined-behavior condition");
        let mut kinds: Vec<(&UbKind, &usize)> = self.reports_by_ub.iter().collect();
        kinds.sort_by(|a, b| b.1.cmp(a.1));
        for (kind, count) in kinds {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} reports {:>8} packages",
                kind.description(),
                count,
                self.packages_by_ub.get(kind).copied().unwrap_or(0)
            );
        }
        out
    }
}

/// Configuration of the checker-scaling benchmark (the `BENCH_checker.json`
/// emitter): how large a synthetic population to analyze, which thread
/// counts to measure, and the per-query budget.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Packages in the synthetic population (the fig16 workload shape).
    pub packages: usize,
    /// Population seed.
    pub seed: u64,
    /// Thread counts to measure. Each count is measured twice: once with the
    /// query cache alone (the PR 2 configuration) and once with the cache
    /// plus incremental per-function solver instances.
    pub threads: Vec<usize>,
    /// Per-query solver budget in propagations.
    pub query_budget: u64,
}

impl Default for ScalingConfig {
    fn default() -> ScalingConfig {
        ScalingConfig {
            packages: 24,
            seed: 47,
            threads: vec![1, 2, 4],
            query_budget: 500_000,
        }
    }
}

impl ScalingConfig {
    /// The default configuration, shrunk when `STACK_BENCH_FAST` is set (CI
    /// runs the benchmark as a smoke + artifact step, not as a measurement).
    pub fn from_env() -> ScalingConfig {
        let cfg = ScalingConfig::default();
        if std::env::var_os("STACK_BENCH_FAST").is_some() {
            cfg.fast()
        } else {
            cfg
        }
    }

    /// Shrink to the smoke-test population (what `STACK_BENCH_FAST` and the
    /// CLI's `stack bench --fast` both mean); the single definition of the
    /// fast-mode knob.
    pub fn fast(mut self) -> ScalingConfig {
        self.packages = 6;
        self
    }
}

/// One measured checker configuration (a row of `BENCH_checker.json`).
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Worker threads used.
    pub threads: usize,
    /// Whether the memoized query cache was enabled.
    pub query_cache: bool,
    /// Whether incremental solving (persistent per-function instances with
    /// UB conditions as assumption literals) was enabled.
    pub incremental: bool,
    /// End-to-end analysis wall clock over the whole population.
    pub wall_ms: u64,
    /// Functions analyzed per second of wall clock.
    pub functions_per_sec: f64,
    /// Total solver queries issued.
    pub queries: u64,
    /// Queries that exhausted their budget.
    pub timeouts: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries that consulted the cache and missed.
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when the cache is disabled.
    pub cache_hit_rate: f64,
    /// Queries decided on a persistent incremental instance.
    pub incremental_queries: u64,
    /// Clause slots those queries reused instead of re-blasting.
    pub reused_clauses: u64,
    /// `minimal_ub_set` queries skipped because a memoized assumption core
    /// proved the candidate condition irrelevant (incremental rows only;
    /// `queries + minimization_queries_saved` matches the seed row).
    pub minimization_queries_saved: u64,
    /// Total reports produced (must agree across every row).
    pub reports: usize,
}

/// One measured archive-scan configuration (a row of the `scan` section of
/// `BENCH_checker.json`).
#[derive(Clone, Debug, Serialize)]
pub struct ScanRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Whether the run warm-started from a populated disk store.
    pub warm: bool,
    /// End-to-end analysis wall clock over the whole archive, in
    /// milliseconds (rounded; see `wall_us` for the value the speedup is
    /// computed from).
    pub wall_ms: u64,
    /// End-to-end analysis wall clock in microseconds.
    pub wall_us: u64,
    /// Functions analyzed per second of wall clock.
    pub functions_per_sec: f64,
    /// Total solver queries issued.
    pub queries: u64,
    /// Queries that exhausted their budget (must be 0: `Unknown` results
    /// are never persisted, so timeouts would erode the warm hit rate).
    pub timeouts: u64,
    /// Queries answered from the disk-backed store.
    pub store_hits: u64,
    /// Queries that consulted the store and missed.
    pub store_misses: u64,
    /// hits / (hits + misses).
    pub store_hit_rate: f64,
    /// Total reports produced (must agree between cold and warm).
    pub reports: usize,
}

/// The cold-vs-warm archive-scan measurement: the same archive population
/// analyzed twice through a disk-backed query store — once cold (empty
/// store, which the run populates and saves) and once warm (store reloaded
/// from the file the cold run wrote). This is the §6.5 deployment mode:
/// repeated scans of a package archive starting from the previous run's
/// answers.
#[derive(Clone, Debug, Serialize)]
pub struct ScanPersistence {
    /// Workload description.
    pub archive: String,
    /// Files (modules) scanned per run.
    pub files: usize,
    /// Functions analyzed per run.
    pub functions: usize,
    /// Disk-store entries the warm run loaded.
    pub store_entries: u64,
    /// Cold and warm rows, in that order.
    pub rows: Vec<ScanRow>,
    /// Cold wall clock / warm wall clock (>1 means the store pays off).
    pub speedup_warm_vs_cold: f64,
    /// The warm run's store hit rate (the fraction of consulted queries
    /// answered from disk; the acceptance bar is ≥0.9).
    pub warm_store_hit_rate: f64,
    /// Whether the cold and warm runs produced byte-identical report
    /// streams (they must).
    pub reports_identical: bool,
}

/// Run the cold-vs-warm archive-scan measurement. The store file lives in
/// the system temp directory (unique per process and invocation) and is
/// removed afterwards.
pub fn scan_persistence(cfg: &ScalingConfig) -> ScanPersistence {
    static INVOCATION: AtomicU64 = AtomicU64::new(0);
    let store_path = std::env::temp_dir().join(format!(
        "stack-bench-scan-{}-{}.qs",
        std::process::id(),
        INVOCATION.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&store_path);

    let archive_cfg = ArchiveConfig {
        packages: cfg.packages,
        ..ArchiveConfig::default()
    };
    let archive = generate_archive(&archive_cfg);
    let mut modules = Vec::new();
    for file in &archive {
        let mut module =
            stack_minic::compile(&file.source, &file.name).expect("archive files compile");
        stack_opt::optimize_for_analysis(&mut module);
        modules.push(module);
    }
    let functions: usize = modules.iter().map(|m| m.len()).sum();
    let threads = cfg.threads.iter().copied().max().unwrap_or(1);
    let config = CheckerConfig {
        query_budget: cfg.query_budget,
        threads: Some(threads),
        ..CheckerConfig::default()
    };

    let run = |label: &str, warm: bool| -> (ScanRow, Vec<String>) {
        let store = Arc::new(DiskQueryStore::open(&store_path).expect("open benchmark store file"));
        let session = AnalysisSession::with_store(config, store.clone() as _);
        let mut reports = Vec::new();
        let start = Instant::now();
        for module in &modules {
            session.check_module_streaming(module, &mut |r| reports.push(format!("{r:?}")));
        }
        let elapsed = start.elapsed();
        store.save().expect("save benchmark store file");
        let stats = session.stats();
        let lookups = stats.cache_hits + stats.cache_misses;
        let row = ScanRow {
            label: label.to_string(),
            warm,
            wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
            wall_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            functions_per_sec: functions as f64 / elapsed.as_secs_f64().max(1e-9),
            queries: stats.queries,
            timeouts: stats.timeouts,
            store_hits: stats.cache_hits,
            store_misses: stats.cache_misses,
            store_hit_rate: if lookups == 0 {
                0.0
            } else {
                stats.cache_hits as f64 / lookups as f64
            },
            reports: reports.len(),
        };
        (row, reports)
    };

    let (cold_row, cold_reports) = run("archive scan (cold disk store)", false);
    let store_entries = DiskQueryStore::open(&store_path)
        .map(|s| s.loaded_entries())
        .unwrap_or(0);
    let (warm_row, warm_reports) = run("archive scan (warm disk store)", true);
    let _ = std::fs::remove_file(&store_path);

    let speedup = cold_row.wall_us.max(1) as f64 / warm_row.wall_us.max(1) as f64;
    let warm_store_hit_rate = warm_row.store_hit_rate;
    ScanPersistence {
        archive: format!(
            "overlap archive (packages={}, seed={:#x})",
            archive_cfg.packages, archive_cfg.seed
        ),
        files: archive.len(),
        functions,
        store_entries,
        rows: vec![cold_row, warm_row],
        speedup_warm_vs_cold: speedup,
        warm_store_hit_rate,
        reports_identical: cold_reports == warm_reports,
    }
}

/// One measured configuration of the incremental-rescan benchmark (a row
/// of the `rescan` section of `BENCH_checker.json`).
#[derive(Clone, Debug, Serialize)]
pub struct RescanRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Semantic churn the scanned archive carries, in percent of files.
    pub churn_pct: u32,
    /// Modules (files) scanned.
    pub files: usize,
    /// Modules replayed from the scan store without solver work.
    pub modules_skipped: usize,
    /// `modules_skipped / files`.
    pub modules_skipped_rate: f64,
    /// End-to-end scan wall clock, milliseconds (rounded).
    pub wall_ms: u64,
    /// End-to-end scan wall clock, microseconds (what speedups divide).
    pub wall_us: u64,
    /// Solver queries issued.
    pub queries: u64,
    /// Queries answered from the (disk-backed) query store.
    pub store_hits: u64,
    /// Reports produced.
    pub reports: usize,
}

/// The incremental-rescan measurement: the same archive scanned after a
/// simulated evolution step (0%, 5%, 20% of files semantically changed,
/// plus comment/whitespace-only edits) under three configurations — cold
/// (no persistence), warm query store (the PR 4 mode: every repeated query
/// answered from disk, but every module still lowered, fingerprinted and
/// driven through the checker), and incremental re-scan (query store plus
/// the fingerprint-keyed scan store: unchanged modules are skipped
/// entirely). This is the §6.5 deployment loop: the Debian archive
/// re-scanned as it evolves, where between runs almost nothing changes.
#[derive(Clone, Debug, Serialize)]
pub struct IncrementalRescan {
    /// Workload description.
    pub archive: String,
    /// Files per scan.
    pub files: usize,
    /// File-level pipeline workers used by every run.
    pub jobs: usize,
    /// Three rows (cold / warm store / incremental rescan) per churn level.
    pub rows: Vec<RescanRow>,
    /// Cold wall clock / incremental-rescan wall clock at 0% churn — the
    /// headline number; must beat `speedup_warm_vs_cold`.
    pub speedup_rescan_vs_cold: f64,
    /// Warm-store wall clock / incremental-rescan wall clock at 0% churn
    /// (what skipping modules buys *on top of* warm queries).
    pub speedup_rescan_vs_warm: f64,
    /// The 0%-churn rescan's skip rate (the acceptance bar is 1.0: every
    /// module replayed, none analyzed).
    pub modules_skipped_rate: f64,
    /// Whether all three configurations produced byte-identical report
    /// streams at every churn level (they must).
    pub reports_identical: bool,
}

/// Scan an archive population through the file-parallel pipeline, returning
/// the rendered report stream and the row measurements. With `save_stores`
/// the (possibly grown) stores are persisted after the run — the fan-out
/// half of a sharded scan; measured re-scan runs pass `false` so every
/// configuration starts from the same primed files.
#[allow(clippy::too_many_arguments)]
fn rescan_run(
    label: &str,
    churn_pct: u32,
    files: &[ArchiveFile],
    config: CheckerConfig,
    jobs: usize,
    query_store_path: Option<&std::path::Path>,
    scan_store_path: Option<&std::path::Path>,
    save_stores: bool,
) -> (RescanRow, Vec<String>) {
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let query_store = query_store_path
        .map(|path| Arc::new(DiskQueryStore::open(path).expect("open rescan query store")));
    let session = match &query_store {
        Some(store) => AnalysisSession::with_store(config, store.clone() as _),
        None => AnalysisSession::new(config),
    };
    let mut pipeline = ScanPipeline::new(&session, jobs);
    let scan_store = scan_store_path
        .map(|path| Arc::new(ScanStore::open(path).expect("open rescan scan store")));
    if let Some(store) = &scan_store {
        pipeline = pipeline.with_scan_store(store.clone());
    }
    let mut reports = Vec::new();
    let start = Instant::now();
    let outcome = pipeline.run(&tasks, &mut |event| {
        if let ScanEvent::Report(report) = event {
            reports.push(format!("{report:?}"));
        }
    });
    let elapsed = start.elapsed();
    if save_stores {
        if let Some(store) = &query_store {
            store.save().expect("save rescan query store");
        }
        if let Some(store) = &scan_store {
            store.save().expect("save rescan scan store");
        }
    }
    let stats = session.stats();
    let row = RescanRow {
        label: label.to_string(),
        churn_pct,
        files: outcome.files,
        modules_skipped: outcome.modules_skipped,
        modules_skipped_rate: outcome.modules_skipped as f64 / outcome.files.max(1) as f64,
        wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        wall_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        queries: stats.queries,
        store_hits: stats.cache_hits,
        reports: reports.len(),
    };
    (row, reports)
}

/// Run the incremental-rescan measurement. One priming scan of the base
/// archive populates the query store and the scan store (the "previous
/// run"); each measured configuration then reopens those files read-only.
pub fn incremental_rescan(cfg: &ScalingConfig) -> IncrementalRescan {
    static INVOCATION: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "stack-bench-rescan-{}-{}",
        std::process::id(),
        INVOCATION.fetch_add(1, Ordering::Relaxed)
    );
    let query_store_path = std::env::temp_dir().join(format!("{tag}.qs"));
    let scan_store_path = std::env::temp_dir().join(format!("{tag}.ss"));
    let _ = std::fs::remove_file(&query_store_path);
    let _ = std::fs::remove_file(&scan_store_path);

    let archive_cfg = ArchiveConfig {
        packages: cfg.packages,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&archive_cfg);
    let jobs = cfg.threads.iter().copied().max().unwrap_or(1);
    // One module thread per file-level worker: on archive workloads the
    // file level is the scalable one (matches the CLI's `--jobs` default).
    let config = CheckerConfig {
        query_budget: cfg.query_budget,
        threads: Some(1),
        ..CheckerConfig::default()
    };

    // Prime both stores from the base archive, then persist them.
    {
        let query_store =
            Arc::new(DiskQueryStore::open(&query_store_path).expect("open priming query store"));
        let scan_store =
            Arc::new(ScanStore::open(&scan_store_path).expect("open priming scan store"));
        let session = AnalysisSession::with_store(config, query_store.clone() as _);
        let tasks: Vec<ScanTask> = base
            .iter()
            .map(|f| ScanTask {
                name: f.name.clone(),
                source: ScanSource::Inline(f.source.clone()),
            })
            .collect();
        ScanPipeline::new(&session, jobs)
            .with_scan_store(scan_store.clone())
            .run(&tasks, &mut |_| {});
        query_store.save().expect("save priming query store");
        scan_store.save().expect("save priming scan store");
    }

    let mut rows = Vec::new();
    let mut reports_identical = true;
    let mut speedup_rescan_vs_cold = 0.0;
    let mut speedup_rescan_vs_warm = 0.0;
    let mut modules_skipped_rate = 0.0;
    for churn_pct in [0u32, 5, 20] {
        let churned = churn_archive(&base, archive_cfg.seed, churn_pct as f64 / 100.0);
        let (cold, cold_reports) = rescan_run(
            &format!("{churn_pct}% churn, cold"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            None,
            None,
            false,
        );
        let (warm, warm_reports) = rescan_run(
            &format!("{churn_pct}% churn, warm query store"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            Some(&query_store_path),
            None,
            false,
        );
        let (rescan, rescan_reports) = rescan_run(
            &format!("{churn_pct}% churn, incremental rescan"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            Some(&query_store_path),
            Some(&scan_store_path),
            false,
        );
        reports_identical &= cold_reports == warm_reports && cold_reports == rescan_reports;
        if churn_pct == 0 {
            speedup_rescan_vs_cold = cold.wall_us.max(1) as f64 / rescan.wall_us.max(1) as f64;
            speedup_rescan_vs_warm = warm.wall_us.max(1) as f64 / rescan.wall_us.max(1) as f64;
            modules_skipped_rate = rescan.modules_skipped_rate;
        }
        rows.extend([cold, warm, rescan]);
    }
    let _ = std::fs::remove_file(&query_store_path);
    let _ = std::fs::remove_file(&scan_store_path);
    IncrementalRescan {
        archive: format!(
            "overlap archive + churn (packages={}, seed={:#x})",
            archive_cfg.packages, archive_cfg.seed
        ),
        files: base.len(),
        jobs,
        rows,
        speedup_rescan_vs_cold,
        speedup_rescan_vs_warm,
        modules_skipped_rate,
        reports_identical,
    }
}

/// The distributed-scan measurement: the same archive scanned cold and
/// unsharded (the baseline), then fanned out across four content-keyed
/// shards — each shard saving its own query store and scan store — then
/// folded back with `DiskQueryStore::merge`/`ScanStore::merge`, and finally
/// re-scanned in full, warm from the merged stores. The merged-warm run
/// must skip every module and stream byte-identical reports to the cold
/// unsharded scan; its speedup is the fleet payoff the ROADMAP's
/// distributed-scan item is after.
#[derive(Clone, Debug, Serialize)]
pub struct ShardedScan {
    /// Workload description.
    pub archive: String,
    /// Files in the full archive.
    pub files: usize,
    /// Fan-out width.
    pub shards: usize,
    /// File-level pipeline workers used by every run.
    pub jobs: usize,
    /// Rows: cold unsharded, one per shard (fan-out), merged warm
    /// (fan-in). `churn_pct` is always 0 here.
    pub rows: Vec<RescanRow>,
    /// Entries in the merged query store.
    pub merged_query_entries: u64,
    /// Function records in the merged scan store.
    pub merged_scan_entries: u64,
    /// Query-store entries that appeared in more than one shard (their
    /// value equality was asserted during the merge).
    pub merged_query_duplicates: u64,
    /// Cold unsharded wall clock / merged-warm wall clock — must be at
    /// least `speedup_warm_vs_cold`, since a fan-in that loses to a plain
    /// warm store would defeat the point of sharding.
    pub speedup_merged_warm_vs_cold: f64,
    /// The merged-warm run's module skip rate (the acceptance bar is 1.0).
    pub merged_warm_skip_rate: f64,
    /// Whether the merged-warm run's report stream is byte-identical to
    /// the cold unsharded scan's (it must be).
    pub merge_reports_identical: bool,
}

/// Run the distributed-scan measurement. Store files live in the system
/// temp directory (unique per process and invocation) and are removed
/// afterwards.
pub fn sharded_scan(cfg: &ScalingConfig) -> ShardedScan {
    static INVOCATION: AtomicU64 = AtomicU64::new(0);
    const SHARDS: usize = 4;
    let tag = format!(
        "stack-bench-shard-{}-{}",
        std::process::id(),
        INVOCATION.fetch_add(1, Ordering::Relaxed)
    );
    let shard_qs = |i: usize| std::env::temp_dir().join(format!("{tag}-{i}.qs"));
    let shard_ss = |i: usize| std::env::temp_dir().join(format!("{tag}-{i}.ss"));
    let merged_qs = std::env::temp_dir().join(format!("{tag}-merged.qs"));
    let merged_ss = std::env::temp_dir().join(format!("{tag}-merged.ss"));

    let archive_cfg = ArchiveConfig {
        packages: cfg.packages,
        ..ArchiveConfig::default()
    };
    let archive = generate_archive(&archive_cfg);
    let jobs = cfg.threads.iter().copied().max().unwrap_or(1);
    let config = CheckerConfig {
        query_budget: cfg.query_budget,
        threads: Some(1),
        ..CheckerConfig::default()
    };

    // The same content-keyed partition `stack scan --shard i/n` applies.
    let shard_files: Vec<Vec<ArchiveFile>> = (0..SHARDS)
        .map(|shard| {
            archive
                .iter()
                .filter(|f| {
                    stack_core::shard_assignment(
                        stack_core::content_key(f.source.as_bytes()),
                        SHARDS,
                    ) == shard
                })
                .cloned()
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    let (cold, cold_reports) = rescan_run(
        "unsharded, cold (baseline)",
        0,
        &archive,
        config,
        jobs,
        None,
        None,
        false,
    );
    rows.push(cold.clone());
    for (shard, files) in shard_files.iter().enumerate() {
        let (row, _) = rescan_run(
            &format!("shard {}/{SHARDS}, cold fan-out", shard + 1),
            0,
            files,
            config,
            jobs,
            Some(&shard_qs(shard)),
            Some(&shard_ss(shard)),
            true,
        );
        rows.push(row);
    }

    let qs_inputs: Vec<std::path::PathBuf> = (0..SHARDS).map(shard_qs).collect();
    let ss_inputs: Vec<std::path::PathBuf> = (0..SHARDS).map(shard_ss).collect();
    let query_stats =
        DiskQueryStore::merge(&merged_qs, &qs_inputs, None).expect("merge shard query stores");
    let scan_stats =
        ScanStore::merge(&merged_ss, &ss_inputs, None).expect("merge shard scan stores");

    let (warm, warm_reports) = rescan_run(
        "unsharded, warm from merged stores",
        0,
        &archive,
        config,
        jobs,
        Some(&merged_qs),
        Some(&merged_ss),
        false,
    );
    let speedup = cold.wall_us.max(1) as f64 / warm.wall_us.max(1) as f64;
    let skip_rate = warm.modules_skipped_rate;
    let identical = cold_reports == warm_reports;
    rows.push(warm);

    for path in qs_inputs.iter().chain(ss_inputs.iter()) {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_file(&merged_qs);
    let _ = std::fs::remove_file(&merged_ss);

    ShardedScan {
        archive: format!(
            "overlap archive (packages={}, seed={:#x})",
            archive_cfg.packages, archive_cfg.seed
        ),
        files: archive.len(),
        shards: SHARDS,
        jobs,
        rows,
        merged_query_entries: query_stats.entries_out,
        merged_scan_entries: scan_stats.entries_out,
        merged_query_duplicates: query_stats.duplicates,
        speedup_merged_warm_vs_cold: speedup,
        merged_warm_skip_rate: skip_rate,
        merge_reports_identical: identical,
    }
}

/// One measured configuration row of the `function_rescan` section.
#[derive(Clone, Debug, Serialize)]
pub struct FunctionRescanRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Percent of *functions* (not files) edited in place.
    pub churn_pct: u32,
    /// Modules (files) scanned.
    pub files: usize,
    /// Functions across the archive.
    pub functions: usize,
    /// Functions replayed from the scan store without solver work.
    pub functions_skipped: usize,
    /// Modules all of whose functions replayed.
    pub modules_skipped: usize,
    /// End-to-end scan wall clock, milliseconds (rounded).
    pub wall_ms: u64,
    /// End-to-end scan wall clock, microseconds.
    pub wall_us: u64,
    /// Solver queries issued.
    pub queries: u64,
    /// Reports produced.
    pub reports: usize,
    /// Whether this row's report stream is byte-identical to the cold
    /// reference scan of the same churned archive (it must be).
    pub reports_identical: bool,
}

/// The per-function incremental-rescan measurement: the same archive
/// re-scanned after K *functions* (not files) were edited in place,
/// comparing module-granular replay (one edited function re-analyzes its
/// whole module — the pre-v4 cache behavior, reproduced via
/// [`ScanPipeline::with_module_granularity`]) against function-granular
/// replay (only the edited functions hit the solver). The archive uses
/// wider files (12 functions each) than the other sections, because that
/// is exactly the regime where module granularity loses: one edit
/// invalidates 12 functions' worth of solver work. The section also
/// measures cross-path dedup: the archive extended with byte-identical
/// vendored duplicates, scanned with and without a fresh scan store — the
/// path-independent replay key answers every duplicate's functions from
/// the original's analysis.
#[derive(Clone, Debug, Serialize)]
pub struct FunctionRescan {
    /// Workload description.
    pub archive: String,
    /// Files per scan.
    pub files: usize,
    /// Functions per scan.
    pub functions: usize,
    /// File-level pipeline workers used by every churn-row run.
    pub jobs: usize,
    /// Three rows (cold / module-granular warm / function-granular warm)
    /// per churn level.
    pub rows: Vec<FunctionRescanRow>,
    /// Module-granular queries / function-granular queries at 5% function
    /// churn — how much narrower the re-analysis frontier is when only
    /// edited functions (instead of their whole modules) hit the solver.
    pub speedup_function_rescan_vs_module: f64,
    /// The function-granular 5%-churn row's skip rate
    /// (`functions_skipped / functions`; the ground-truth bar is 0.95).
    pub function_skip_rate_5pct: f64,
    /// Vendored duplicate files appended for the dedup measurement.
    pub dedup_duplicate_files: usize,
    /// Queries saved by cross-path dedup: scanning archive + duplicates
    /// without a scan store minus the same scan with a fresh (cold) scan
    /// store, at jobs 1 — every saved query is a duplicate function
    /// answered from the original's record.
    pub dedup_queries_saved: u64,
    /// Whether every measured run (churn rows and both dedup runs)
    /// streamed byte-identical reports to its cold reference (they must).
    pub reports_identical: bool,
}

/// Scan an archive population for the `function_rescan` section,
/// returning the row and the rendered report stream. No store is saved:
/// every measured run starts from the same primed file.
fn function_rescan_run(
    label: &str,
    churn_pct: u32,
    files: &[ArchiveFile],
    config: CheckerConfig,
    jobs: usize,
    scan_store_path: Option<&std::path::Path>,
    module_granular: bool,
) -> (FunctionRescanRow, Vec<String>) {
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let session = AnalysisSession::new(config);
    let mut pipeline = ScanPipeline::new(&session, jobs);
    let scan_store = scan_store_path
        .map(|path| Arc::new(ScanStore::open(path).expect("open function-rescan scan store")));
    if let Some(store) = &scan_store {
        pipeline = pipeline.with_scan_store(store.clone());
    }
    if module_granular {
        pipeline = pipeline.with_module_granularity();
    }
    let mut reports = Vec::new();
    let start = Instant::now();
    let outcome = pipeline.run(&tasks, &mut |event| {
        if let ScanEvent::Report(report) = event {
            reports.push(format!("{report:?}"));
        }
    });
    let elapsed = start.elapsed();
    let stats = session.stats();
    let row = FunctionRescanRow {
        label: label.to_string(),
        churn_pct,
        files: outcome.files,
        functions: stats.functions,
        functions_skipped: outcome.functions_skipped,
        modules_skipped: outcome.modules_skipped,
        wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        wall_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        queries: stats.queries,
        reports: reports.len(),
        reports_identical: true, // filled in by the caller against its reference
    };
    (row, reports)
}

/// Run the per-function incremental-rescan measurement. One priming scan
/// of the base archive populates the scan store (the "previous run"); the
/// churn rows then reopen that file read-only. No query store is attached
/// anywhere in this section, so `queries` counts exactly the functions
/// that were actually driven through the solver.
pub fn function_rescan(cfg: &ScalingConfig) -> FunctionRescan {
    static INVOCATION: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "stack-bench-fnrescan-{}-{}",
        std::process::id(),
        INVOCATION.fetch_add(1, Ordering::Relaxed)
    );
    let scan_store_path = std::env::temp_dir().join(format!("{tag}.ss"));
    let dedup_store_path = std::env::temp_dir().join(format!("{tag}-dedup.ss"));
    let _ = std::fs::remove_file(&scan_store_path);
    let _ = std::fs::remove_file(&dedup_store_path);

    // Wider files than the default archive: 12 functions each, so one
    // edited function strands 11 siblings' worth of replay — the gap this
    // section measures.
    let archive_cfg = ArchiveConfig {
        packages: cfg.packages,
        functions_per_file: 12,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&archive_cfg);
    let jobs = cfg.threads.iter().copied().max().unwrap_or(1);
    let config = CheckerConfig {
        query_budget: cfg.query_budget,
        threads: Some(1),
        ..CheckerConfig::default()
    };

    // Prime the scan store from the base archive.
    {
        let scan_store =
            Arc::new(ScanStore::open(&scan_store_path).expect("open priming scan store"));
        let session = AnalysisSession::new(config);
        let tasks: Vec<ScanTask> = base
            .iter()
            .map(|f| ScanTask {
                name: f.name.clone(),
                source: ScanSource::Inline(f.source.clone()),
            })
            .collect();
        ScanPipeline::new(&session, jobs)
            .with_scan_store(scan_store.clone())
            .run(&tasks, &mut |_| {});
        scan_store.save().expect("save priming scan store");
    }

    let mut rows = Vec::new();
    let mut reports_identical = true;
    let mut speedup_function_rescan_vs_module = 0.0;
    let mut function_skip_rate_5pct = 0.0;
    let mut functions = 0usize;
    for churn_pct in [0u32, 5, 20] {
        let churned = churn_functions(&base, archive_cfg.seed, churn_pct as f64 / 100.0);
        functions = churned.total_functions;
        let (mut cold, cold_reports) = function_rescan_run(
            &format!("{churn_pct}% fn churn, cold"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            None,
            false,
        );
        cold.reports_identical = true;
        let (mut module_row, module_reports) = function_rescan_run(
            &format!("{churn_pct}% fn churn, module-granular rescan"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            Some(&scan_store_path),
            true,
        );
        module_row.reports_identical = module_reports == cold_reports;
        let (mut function_row, function_reports) = function_rescan_run(
            &format!("{churn_pct}% fn churn, function-granular rescan"),
            churn_pct,
            &churned.files,
            config,
            jobs,
            Some(&scan_store_path),
            false,
        );
        function_row.reports_identical = function_reports == cold_reports;
        reports_identical &= module_row.reports_identical && function_row.reports_identical;
        if churn_pct == 5 {
            speedup_function_rescan_vs_module =
                module_row.queries.max(1) as f64 / function_row.queries.max(1) as f64;
            function_skip_rate_5pct =
                function_row.functions_skipped as f64 / function_row.functions.max(1) as f64;
        }
        rows.extend([cold, module_row, function_row]);
    }

    // Cross-path dedup: the archive plus vendored byte-identical copies,
    // scanned sequentially (jobs 1, so every duplicate scans after its
    // original) without any store, then with a fresh cold scan store.
    let dedup_copies = base.len().max(1);
    let extended = duplicate_files(&base, archive_cfg.seed, dedup_copies);
    let (no_store, no_store_reports) = function_rescan_run(
        "archive + duplicates, no store",
        0,
        &extended,
        config,
        1,
        None,
        false,
    );
    let (with_store, with_store_reports) = function_rescan_run(
        "archive + duplicates, cold scan store (dedup)",
        0,
        &extended,
        config,
        1,
        Some(&dedup_store_path),
        false,
    );
    reports_identical &= no_store_reports == with_store_reports;
    let dedup_queries_saved = no_store.queries.saturating_sub(with_store.queries);

    let _ = std::fs::remove_file(&scan_store_path);
    let _ = std::fs::remove_file(&dedup_store_path);
    FunctionRescan {
        archive: format!(
            "wide-file overlap archive + function churn (packages={}, functions_per_file={}, seed={:#x})",
            archive_cfg.packages, archive_cfg.functions_per_file, archive_cfg.seed
        ),
        files: base.len(),
        functions,
        jobs,
        rows,
        speedup_function_rescan_vs_module,
        function_skip_rate_5pct,
        dedup_duplicate_files: dedup_copies,
        dedup_queries_saved,
        reports_identical,
    }
}

/// The fault-tolerance measurement: the robustness counterpart of the
/// throughput sections. One workload is analyzed under a deliberately tiny
/// query budget to measure graceful degradation, and one saved disk store
/// is deliberately truncated mid-line to measure the salvage path. CI
/// fails the bench job if `degraded_queries` or `salvaged_entries` go
/// missing from `BENCH_checker.json`.
#[derive(Clone, Debug, Serialize)]
pub struct FaultTolerance {
    /// The deliberately tiny per-query propagation budget the degraded
    /// runs were given.
    pub query_budget: u64,
    /// Queries that exhausted that budget and fell back to `Unknown`
    /// (must be > 0, or the section measured nothing).
    pub degraded_queries: u64,
    /// Modules with at least one degraded query; their verdicts are never
    /// persisted to either store.
    pub degraded_modules: usize,
    /// Whether the single-threaded and widest-threaded degraded runs
    /// produced byte-identical report streams (they must: budget
    /// exhaustion is deterministic, unlike a wall-clock timeout).
    pub degraded_deterministic: bool,
    /// Entries the salvage pass recovered when re-opening the truncated
    /// store.
    pub salvaged_entries: u64,
    /// Corrupt body lines the salvage pass dropped.
    pub dropped_lines: u64,
    /// Byte offset of the first dropped line.
    pub first_bad_offset: Option<u64>,
    /// Whether the save following the salvaging open healed the file: the
    /// next open saw a clean store holding every salvaged entry.
    pub store_healed: bool,
}

/// Run the fault-tolerance measurement: a budget-degraded analysis pass at
/// two thread widths, then a truncate-and-salvage round trip through the
/// disk-backed query store.
pub fn fault_tolerance(cfg: &ScalingConfig) -> FaultTolerance {
    // --- graceful degradation under a tiny budget -------------------------
    let synth = SynthConfig {
        packages: cfg.packages,
        seed: cfg.seed,
        ..SynthConfig::default()
    };
    let mut modules = Vec::new();
    for pkg in &generate(&synth) {
        for file in &pkg.files {
            let mut module =
                stack_minic::compile(&file.source, &file.name).expect("synthetic files compile");
            stack_opt::optimize_for_analysis(&mut module);
            modules.push(module);
        }
    }
    // Small enough that real queries exhaust it; budget exhaustion (unlike
    // the paper's 5-second wall-clock timeout) is deterministic, so the
    // two widths below must stream identical reports.
    let tiny_budget = 50u64;
    let widest = cfg.threads.iter().copied().max().unwrap_or(1);
    let degraded_run = |threads: usize| {
        let checker = Checker::with_config(CheckerConfig {
            query_budget: tiny_budget,
            threads: Some(threads),
            incremental: false,
            ..CheckerConfig::default()
        });
        let mut degraded_queries = 0u64;
        let mut degraded_modules = 0usize;
        let mut reports = Vec::new();
        for module in &modules {
            let result = checker.check_module(module);
            degraded_queries += result.stats.timeouts;
            degraded_modules += result.stats.degraded_modules;
            reports.extend(result.reports.iter().map(|r| format!("{r:?}")));
        }
        (degraded_queries, degraded_modules, reports)
    };
    let (degraded_queries, degraded_modules, narrow_reports) = degraded_run(1);
    let (_, _, wide_reports) = degraded_run(widest);

    // --- truncate-and-salvage round trip ---------------------------------
    static INVOCATION: AtomicU64 = AtomicU64::new(0);
    let store_path = std::env::temp_dir().join(format!(
        "stack-bench-fault-{}-{}.qs",
        std::process::id(),
        INVOCATION.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&store_path);
    {
        let store = Arc::new(DiskQueryStore::open(&store_path).expect("open fault-bench store"));
        let session = AnalysisSession::with_store(
            CheckerConfig {
                query_budget: cfg.query_budget,
                threads: Some(widest),
                ..CheckerConfig::default()
            },
            store.clone() as _,
        );
        for module in &modules {
            session.check_module_streaming(module, &mut |_| {});
        }
        store.save().expect("save fault-bench store");
    }
    // Cut inside the final line: the store ends with a newline and every
    // checksummed line is longer than three bytes, so this always leaves a
    // torn tail for the salvage pass to drop.
    let bytes = std::fs::read(&store_path).expect("read fault-bench store");
    let cut = bytes.len().saturating_sub(3);
    std::fs::write(
        &store_path,
        stack_core::faultinject::truncate_at(&bytes, cut),
    )
    .expect("write truncated fault-bench store");

    let damaged = DiskQueryStore::open(&store_path).expect("open truncated fault-bench store");
    let salvage = damaged.salvage().copied().unwrap_or_default();
    let salvaged_entries = damaged.loaded_entries();
    damaged.save().expect("heal fault-bench store");
    let healed = DiskQueryStore::open(&store_path).expect("re-open healed fault-bench store");
    let store_healed = healed.salvage().is_none()
        && !healed.was_invalidated()
        && healed.loaded_entries() == salvaged_entries;
    let _ = std::fs::remove_file(&store_path);

    FaultTolerance {
        query_budget: tiny_budget,
        degraded_queries,
        degraded_modules,
        degraded_deterministic: narrow_reports == wide_reports,
        salvaged_entries,
        dropped_lines: salvage.dropped_lines,
        first_bad_offset: salvage.first_bad_offset,
        store_healed,
    }
}

/// One raw-solver-speed measurement: the high-churn archive scanned with
/// the query cache fully disabled (no memo store, no disk stores), so every
/// query pays the solver and the row isolates per-query solver cost.
#[derive(Clone, Debug, Serialize)]
pub struct SolverSpeedRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Whether CNF preprocessing (probing, subsumption, vivification, and
    /// fresh-mode BVE) was enabled. `false` is the pre-preprocessing solver.
    pub preprocess: bool,
    /// Whether assumption-core memoization (the Unsat fast path) was
    /// enabled. `false` with `preprocess` on is the PR 9 solver.
    pub core_cache: bool,
    /// Whether hyper-binary resolution during failed-literal probing was
    /// enabled.
    pub hbr: bool,
    /// Solver-instance granularity: `"function"` (one incremental instance
    /// per function) or `"fragment"` (a fresh instance per code fragment).
    pub granularity: String,
    /// Wall-clock time for the scan, in milliseconds.
    pub wall_ms: u64,
    /// Wall-clock time for the scan, in microseconds.
    pub wall_us: u64,
    /// Solver queries issued (all misses — the cache is disabled).
    pub queries: u64,
    /// Queries that exhausted their budget and degraded to Unknown.
    pub timeouts: u64,
    /// Total unit propagations — the deterministic currency solver budgets
    /// are denominated in, and this section's measure of raw solver work.
    pub propagations: u64,
    /// Propagations spent on queries that ended Unsat — the share the
    /// Unsat fast path (core cache, HBR, tiered db) is able to attack.
    pub unsat_propagations: u64,
    /// Total conflicts across all queries.
    pub conflicts: u64,
    /// Total solver restarts across all queries.
    pub restarts: u64,
    /// Learned clauses retained across all queries.
    pub learned_clauses: u64,
    /// Learned clauses evicted by glue-aware clause-database reduction.
    pub deleted_clauses: u64,
    /// Mean LBD (glue) over all learned clauses.
    pub avg_lbd: f64,
    /// Clauses and variables removed by the preprocessing passes.
    pub preprocess_eliminations: u64,
    /// Queries the solver answered Unsat (the side the core cache serves).
    pub unsat_queries: u64,
    /// Queries answered Unsat in zero propagations from a memoized
    /// assumption core.
    pub core_cache_hits: u64,
    /// Assumption cores extracted from final conflicts.
    pub cores_recorded: u64,
    /// Binary clauses added by hyper-binary resolution during probing.
    pub hbr_binaries_added: u64,
    /// `minimal_ub_set` queries skipped by core-seeded minimization.
    pub minimization_queries_saved: u64,
    /// Reports emitted (must match across every row).
    pub reports: usize,
}

/// Results of the solver-speed benchmark: a cache-disabled, high-churn scan
/// where every query reaches the SAT solver, comparing the preprocessing +
/// LBD-aware solver against the prior solver (preprocessing off) and the
/// per-fragment instance granularity against per-function.
#[derive(Clone, Debug, Serialize)]
pub struct SolverSpeed {
    /// Description of the synthetic archive the rows scanned.
    pub archive: String,
    /// Files in the churned archive.
    pub files: usize,
    /// Pipeline worker width used for every row.
    pub jobs: usize,
    /// Churn rate applied to the base archive before scanning.
    pub churn_pct: u32,
    /// Per-query propagation budget shared by every row.
    pub query_budget: u64,
    /// One row per solver configuration.
    pub rows: Vec<SolverSpeedRow>,
    /// Baseline propagations divided by default-configuration propagations
    /// (per-function rows): how much less solver work the preprocessing +
    /// LBD solver does than the prior solver on the same queries.
    pub speedup_solver_vs_baseline: f64,
    /// Baseline wall time divided by default-configuration wall time.
    pub speedup_wall_vs_baseline: f64,
    /// Per-fragment wall time divided by per-function wall time: values
    /// above 1.0 mean per-function instances win and stay the default.
    pub speedup_function_vs_fragment: f64,
    /// PR 9 Unsat-side propagations (preprocess on, core cache + HBR off)
    /// divided by default-configuration Unsat-side propagations
    /// (per-function rows): the Unsat-path payoff of assumption-core
    /// memoization, HBR, and the tiered clause database on the same
    /// queries. Sat-side work is excluded — it is identical across the two
    /// rows and would otherwise drown the signal.
    pub speedup_unsat_vs_pr9: f64,
    /// Core-cache hits divided by Unsat answers on the default row: the
    /// fraction of Unsat verdicts served in zero propagations.
    pub core_cache_hit_rate: f64,
    /// Binary clauses hyper-binary resolution added on the default row.
    pub hbr_binaries_added: u64,
    /// `minimal_ub_set` queries the core-seeded search skipped on the
    /// default row (vs PR 9's full greedy loop).
    pub minimization_queries_saved: u64,
    /// The granularity shipped as the default, decided by this benchmark.
    pub default_granularity: String,
    /// Every configuration produced byte-identical report streams.
    pub reports_identical: bool,
}

/// Run the solver-speed measurement. The cache is disabled (no memo store,
/// no disk stores) so the scan is the pure worst case — a high-churn tree
/// where nothing can be reused — and the rows compare raw solver cost:
/// the prior solver (preprocessing off) as the baseline, the preprocessing
/// + LBD solver per-function, and the same solver per-fragment.
pub fn solver_speed(cfg: &ScalingConfig) -> SolverSpeed {
    let archive_cfg = ArchiveConfig {
        packages: cfg.packages,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&archive_cfg);
    const CHURN_PCT: u32 = 20;
    let churned = churn_archive(&base, archive_cfg.seed, f64::from(CHURN_PCT) / 100.0);
    let jobs = cfg.threads.iter().copied().max().unwrap_or(1);
    let tasks: Vec<ScanTask> = churned
        .files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();

    let mut rows = Vec::new();
    let mut report_streams: Vec<Vec<String>> = Vec::new();
    let mut run =
        |label: &str, preprocess: bool, core_cache: bool, hbr: bool, fragment_instances: bool| {
            let config = CheckerConfig {
                query_budget: cfg.query_budget,
                threads: Some(1),
                query_cache: false,
                preprocess,
                core_cache,
                hbr,
                fragment_instances,
                ..CheckerConfig::default()
            };
            let session = AnalysisSession::new(config);
            let pipeline = ScanPipeline::new(&session, jobs);
            let mut reports = Vec::new();
            let start = Instant::now();
            pipeline.run(&tasks, &mut |event| {
                if let ScanEvent::Report(report) = event {
                    reports.push(format!("{report:?}"));
                }
            });
            let elapsed = start.elapsed();
            let stats = session.stats();
            rows.push(SolverSpeedRow {
                label: label.to_string(),
                preprocess,
                core_cache,
                hbr,
                granularity: if fragment_instances {
                    "fragment"
                } else {
                    "function"
                }
                .to_string(),
                wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
                wall_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                queries: stats.queries,
                timeouts: stats.timeouts,
                propagations: stats.propagations,
                unsat_propagations: stats.unsat_propagations,
                conflicts: stats.conflicts,
                restarts: stats.restarts,
                learned_clauses: stats.learned_clauses,
                deleted_clauses: stats.deleted_clauses,
                avg_lbd: stats.avg_lbd(),
                preprocess_eliminations: stats.preprocess_eliminations,
                unsat_queries: stats.unsat_queries,
                core_cache_hits: stats.core_cache_hits,
                cores_recorded: stats.cores_recorded,
                hbr_binaries_added: stats.hbr_binaries_added,
                minimization_queries_saved: stats.minimization_queries_saved,
                reports: reports.len(),
            });
            report_streams.push(reports);
        };
    run(
        "baseline: prior solver (no preprocess), per-function",
        false,
        false,
        false,
        false,
    );
    run(
        "PR 9: preprocess + LBD solver (no core cache / HBR), per-function",
        true,
        false,
        false,
        false,
    );
    run(
        "core cache + HBR + tiered db solver, per-function",
        true,
        true,
        true,
        false,
    );
    run(
        "core cache + HBR + tiered db solver, per-fragment",
        true,
        true,
        true,
        true,
    );

    let ratio = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    let baseline = &rows[0];
    let pr9 = &rows[1];
    let function = &rows[2];
    let fragment = &rows[3];
    SolverSpeed {
        archive: format!("{} packages, seed {}", cfg.packages, archive_cfg.seed),
        files: churned.files.len(),
        jobs,
        churn_pct: CHURN_PCT,
        query_budget: cfg.query_budget,
        speedup_solver_vs_baseline: ratio(baseline.propagations, function.propagations),
        speedup_wall_vs_baseline: ratio(baseline.wall_us, function.wall_us),
        speedup_function_vs_fragment: ratio(fragment.wall_us, function.wall_us),
        speedup_unsat_vs_pr9: ratio(pr9.unsat_propagations, function.unsat_propagations),
        core_cache_hit_rate: ratio(function.core_cache_hits, function.unsat_queries),
        hbr_binaries_added: function.hbr_binaries_added,
        minimization_queries_saved: function.minimization_queries_saved,
        default_granularity: "function".to_string(),
        reports_identical: report_streams.windows(2).all(|w| w[0] == w[1]),
        rows,
    }
}

/// Results of the checker-scaling benchmark: the uncached sequential seed
/// path as the baseline, then cached runs (the PR 2 configuration) and
/// cached+incremental runs at each requested thread count.
#[derive(Clone, Debug, Serialize)]
pub struct CheckerScaling {
    /// Workload description.
    pub population: String,
    /// Packages generated.
    pub packages: usize,
    /// Files compiled.
    pub files: usize,
    /// Functions analyzed per configuration run.
    pub functions: usize,
    /// Measured configurations; row 0 is the seed baseline.
    pub rows: Vec<ScalingRow>,
    /// Baseline wall clock / best non-seed wall clock.
    pub speedup_vs_seed: f64,
    /// Label of the fastest non-seed configuration.
    pub best_label: String,
    /// Best cached-only wall clock / best incremental wall clock: how much
    /// the incremental mode gains over the PR 2 cached-parallel
    /// configuration on the same workload (>1 means incremental wins).
    pub speedup_incremental_vs_cached: f64,
    /// Label of the fastest cached-only (non-incremental) configuration.
    pub best_cached_label: String,
    /// Label of the fastest incremental configuration.
    pub best_incremental_label: String,
    /// The cold-vs-warm disk-store archive scan (`speedup_warm_vs_cold`
    /// lives here; CI fails the bench job if it goes missing).
    pub scan: ScanPersistence,
    /// The incremental-rescan measurement over the churned archive
    /// (`speedup_rescan_vs_cold` and `modules_skipped_rate` live here; CI
    /// fails the bench job if the speedup goes missing).
    pub rescan: IncrementalRescan,
    /// The per-function incremental-rescan + cross-path dedup measurement
    /// (`speedup_function_rescan_vs_module` and `dedup_queries_saved` live
    /// here; CI fails the bench job if either goes missing).
    pub function_rescan: FunctionRescan,
    /// The distributed-scan measurement (`speedup_merged_warm_vs_cold` and
    /// `merge_reports_identical` live here; CI fails the bench job if
    /// either goes missing).
    pub sharded_scan: ShardedScan,
    /// The fault-tolerance measurement (`degraded_queries` and
    /// `salvaged_entries` live here; CI fails the bench job if either goes
    /// missing).
    pub fault_tolerance: FaultTolerance,
    /// The raw-solver-speed measurement on a cache-disabled high-churn scan
    /// (`speedup_solver_vs_baseline` lives here; CI fails the bench job if
    /// it goes missing).
    pub solver_speed: SolverSpeed,
}

/// Run the checker-scaling benchmark: analyze one synthetic population under
/// (a) the sequential uncached seed configuration, (b) the cached parallel
/// driver at each thread count in `cfg.threads` (the PR 2 configuration),
/// and (c) the cached parallel driver with incremental per-function solver
/// instances at the same thread counts, measuring wall clock, throughput,
/// cache behavior, and clause reuse for each.
pub fn checker_scaling(cfg: &ScalingConfig) -> CheckerScaling {
    let synth = SynthConfig {
        packages: cfg.packages,
        seed: cfg.seed,
        ..SynthConfig::default()
    };
    let population = generate(&synth);
    let mut modules = Vec::new();
    let mut files = 0usize;
    for pkg in &population {
        for file in &pkg.files {
            files += 1;
            let mut module =
                stack_minic::compile(&file.source, &file.name).expect("synthetic files compile");
            stack_opt::optimize_for_analysis(&mut module);
            modules.push(module);
        }
    }
    let functions: usize = modules.iter().map(|m| m.len()).sum();

    let mut rows = Vec::new();
    let mut measure = |label: String, threads: usize, query_cache: bool, incremental: bool| {
        // A fresh checker per configuration: each run starts from a cold
        // cache, so rows are comparable and independent of run order.
        let checker = Checker::with_config(CheckerConfig {
            query_budget: cfg.query_budget,
            threads: Some(threads),
            query_cache,
            incremental,
            ..CheckerConfig::default()
        });
        let start = Instant::now();
        let mut queries = 0u64;
        let mut timeouts = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut incremental_queries = 0u64;
        let mut reused_clauses = 0u64;
        let mut minimization_queries_saved = 0u64;
        let mut reports = 0usize;
        for module in &modules {
            let result = checker.check_module(module);
            queries += result.stats.queries;
            timeouts += result.stats.timeouts;
            cache_hits += result.stats.cache_hits;
            cache_misses += result.stats.cache_misses;
            incremental_queries += result.stats.incremental_queries;
            reused_clauses += result.stats.reused_clauses;
            minimization_queries_saved += result.stats.minimization_queries_saved;
            reports += result.reports.len();
        }
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        let lookups = cache_hits + cache_misses;
        rows.push(ScalingRow {
            label,
            threads,
            query_cache,
            incremental,
            wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
            functions_per_sec: functions as f64 / secs,
            queries,
            timeouts,
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            incremental_queries,
            reused_clauses,
            minimization_queries_saved,
            reports,
        });
    };

    measure("seed (sequential, no cache)".to_string(), 1, false, false);
    for &threads in &cfg.threads {
        measure(
            format!("{threads} thread(s) + query cache"),
            threads,
            true,
            false,
        );
    }
    for &threads in &cfg.threads {
        measure(
            format!("{threads} thread(s) + cache + incremental"),
            threads,
            true,
            true,
        );
    }

    let baseline_ms = rows[0].wall_ms.max(1) as f64;
    let fastest = |rows: &[ScalingRow], pred: &dyn Fn(&ScalingRow) -> bool| {
        rows.iter()
            .filter(|r| pred(r))
            .min_by_key(|r| r.wall_ms)
            .map(|r| (r.wall_ms.max(1) as f64, r.label.clone()))
            .expect("at least one matching configuration")
    };
    let (best_ms, best_label) = fastest(&rows[1..], &|_| true);
    let (best_cached_ms, best_cached_label) = fastest(&rows, &|r| r.query_cache && !r.incremental);
    let (best_incremental_ms, best_incremental_label) = fastest(&rows, &|r| r.incremental);
    CheckerScaling {
        population: format!(
            "fig16 synthetic population (packages={}, seed={})",
            cfg.packages, cfg.seed
        ),
        packages: cfg.packages,
        files,
        functions,
        rows,
        speedup_vs_seed: baseline_ms / best_ms,
        best_label,
        speedup_incremental_vs_cached: best_cached_ms / best_incremental_ms,
        best_cached_label,
        best_incremental_label,
        scan: scan_persistence(cfg),
        rescan: incremental_rescan(cfg),
        function_rescan: function_rescan(cfg),
        sharded_scan: sharded_scan(cfg),
        fault_tolerance: fault_tolerance(cfg),
        solver_speed: solver_speed(cfg),
    }
}

impl CheckerScaling {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Checker scaling over {} ({} files, {} functions)",
            self.population, self.files, self.functions
        );
        let _ = writeln!(
            out,
            "  {:<30} {:>8} {:>12} {:>9} {:>9} {:>8} {:>9} {:>10}",
            "configuration", "wall(ms)", "funcs/sec", "queries", "hits", "hit%", "incr", "reused"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<30} {:>8} {:>12.1} {:>9} {:>9} {:>7.1}% {:>9} {:>10}",
                r.label,
                r.wall_ms,
                r.functions_per_sec,
                r.queries,
                r.cache_hits,
                100.0 * r.cache_hit_rate,
                r.incremental_queries,
                r.reused_clauses
            );
        }
        let _ = writeln!(
            out,
            "  speedup vs seed path: {:.2}x ({})",
            self.speedup_vs_seed, self.best_label
        );
        let _ = writeln!(
            out,
            "  incremental vs cached-parallel: {:.2}x ({} over {})",
            self.speedup_incremental_vs_cached, self.best_incremental_label, self.best_cached_label
        );
        let _ = writeln!(
            out,
            "Archive persistence over {} ({} files, {} functions, {} stored entries)",
            self.scan.archive, self.scan.files, self.scan.functions, self.scan.store_entries
        );
        for r in &self.scan.rows {
            let _ = writeln!(
                out,
                "  {:<30} {:>8} {:>12.1} {:>9} {:>9} {:>7.1}%",
                r.label,
                r.wall_ms,
                r.functions_per_sec,
                r.queries,
                r.store_hits,
                100.0 * r.store_hit_rate
            );
        }
        let _ = writeln!(
            out,
            "  warm vs cold scan: {:.2}x (reports identical: {})",
            self.scan.speedup_warm_vs_cold, self.scan.reports_identical
        );
        let _ = writeln!(
            out,
            "Incremental re-scan over {} ({} files, {} jobs)",
            self.rescan.archive, self.rescan.files, self.rescan.jobs
        );
        for r in &self.rescan.rows {
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>9} {:>9} {:>8}/{:<5} skipped",
                r.label, r.wall_ms, r.queries, r.reports, r.modules_skipped, r.files
            );
        }
        let _ = writeln!(
            out,
            "  rescan vs cold (0% churn): {:.2}x; vs warm store: {:.2}x; skip rate {:.0}%; \
             reports identical: {}",
            self.rescan.speedup_rescan_vs_cold,
            self.rescan.speedup_rescan_vs_warm,
            100.0 * self.rescan.modules_skipped_rate,
            self.rescan.reports_identical
        );
        let _ = writeln!(
            out,
            "Per-function re-scan over {} ({} files, {} functions, {} jobs)",
            self.function_rescan.archive,
            self.function_rescan.files,
            self.function_rescan.functions,
            self.function_rescan.jobs
        );
        for r in &self.function_rescan.rows {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>9} {:>9} {:>8}/{:<5} fns replayed",
                r.label, r.wall_ms, r.queries, r.reports, r.functions_skipped, r.functions
            );
        }
        let _ = writeln!(
            out,
            "  function vs module granularity (5% fn churn): {:.2}x fewer queries; \
             fn skip rate {:.1}%; dedup saved {} queries over {} duplicate files; \
             reports identical: {}",
            self.function_rescan.speedup_function_rescan_vs_module,
            100.0 * self.function_rescan.function_skip_rate_5pct,
            self.function_rescan.dedup_queries_saved,
            self.function_rescan.dedup_duplicate_files,
            self.function_rescan.reports_identical
        );
        let _ = writeln!(
            out,
            "Distributed scan over {} ({} files, {} shards, {} jobs)",
            self.sharded_scan.archive,
            self.sharded_scan.files,
            self.sharded_scan.shards,
            self.sharded_scan.jobs
        );
        for r in &self.sharded_scan.rows {
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>9} {:>9} {:>8}/{:<5} skipped",
                r.label, r.wall_ms, r.queries, r.reports, r.modules_skipped, r.files
            );
        }
        let _ = writeln!(
            out,
            "  merged stores: {} query entries ({} shard duplicates), {} function records",
            self.sharded_scan.merged_query_entries,
            self.sharded_scan.merged_query_duplicates,
            self.sharded_scan.merged_scan_entries
        );
        let _ = writeln!(
            out,
            "  merged-warm vs cold: {:.2}x; skip rate {:.0}%; reports identical: {}",
            self.sharded_scan.speedup_merged_warm_vs_cold,
            100.0 * self.sharded_scan.merged_warm_skip_rate,
            self.sharded_scan.merge_reports_identical
        );
        let _ = writeln!(
            out,
            "Fault tolerance (budget {} propagations; truncated disk store)",
            self.fault_tolerance.query_budget
        );
        let _ = writeln!(
            out,
            "  degraded: {} queries fell back to Unknown across {} module(s); \
             deterministic across thread widths: {}",
            self.fault_tolerance.degraded_queries,
            self.fault_tolerance.degraded_modules,
            self.fault_tolerance.degraded_deterministic
        );
        let _ = writeln!(
            out,
            "  salvage: kept {} entries, dropped {} bad line(s) (first at byte offset {}); \
             healed on next save: {}",
            self.fault_tolerance.salvaged_entries,
            self.fault_tolerance.dropped_lines,
            self.fault_tolerance
                .first_bad_offset
                .map_or("-".to_string(), |o| o.to_string()),
            self.fault_tolerance.store_healed
        );
        let _ = writeln!(
            out,
            "Solver speed over {} ({} files, {}% churn, cache disabled, {} jobs)",
            self.solver_speed.archive,
            self.solver_speed.files,
            self.solver_speed.churn_pct,
            self.solver_speed.jobs
        );
        for r in &self.solver_speed.rows {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} props {:>7} conf {:>6} elim  lbd {:>4.1}",
                r.label,
                r.wall_ms,
                r.propagations,
                r.conflicts,
                r.preprocess_eliminations,
                r.avg_lbd
            );
        }
        let _ = writeln!(
            out,
            "  solver vs baseline: {:.2}x fewer propagations ({:.2}x wall); \
             fragment vs function: {:.2}x (default: per-{}); reports identical: {}",
            self.solver_speed.speedup_solver_vs_baseline,
            self.solver_speed.speedup_wall_vs_baseline,
            self.solver_speed.speedup_function_vs_fragment,
            self.solver_speed.default_granularity,
            self.solver_speed.reports_identical
        );
        let _ = writeln!(
            out,
            "  unsat path vs PR 9: {:.2}x fewer propagations; core cache served {:.1}% of \
             unsat answers, {} HBR binaries, {} minimization queries saved",
            self.solver_speed.speedup_unsat_vs_pr9,
            100.0 * self.solver_speed.core_cache_hit_rate,
            self.solver_speed.hbr_binaries_added,
            self.solver_speed.minimization_queries_saved
        );
        out
    }

    /// Serialize to the `BENCH_checker.json` payload.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scaling results serialize")
    }
}

/// §6.3 precision: run the checker over the Kerberos- and Postgres-like
/// corpora and classify the reports.
pub struct PrecisionResult {
    pub system: String,
    pub reports: usize,
    pub urgent: usize,
    pub time_bombs: usize,
}

/// Regenerate the §6.3 precision experiment shape.
pub fn sec63_precision() -> Vec<PrecisionResult> {
    let checker = Checker::new();
    let mut out = Vec::new();
    for system in ["Kerberos", "Postgres"] {
        let mut reports = 0usize;
        let mut urgent = 0usize;
        let mut time_bombs = 0usize;
        for bug in figure9_corpus().iter().filter(|b| b.system == system) {
            let result = checker.check_source(&bug.source, &bug.file).unwrap();
            for report in &result.reports {
                reports += 1;
                match stack_core::classify_source(&bug.source, &bug.file, report.line) {
                    stack_core::BugClass::UrgentOptimization { .. } => urgent += 1,
                    stack_core::BugClass::TimeBomb => time_bombs += 1,
                }
            }
        }
        out.push(PrecisionResult {
            system: system.to_string(),
            reports,
            urgent,
            time_bombs,
        });
    }
    out
}

/// §6.6 completeness: how many of the ten benchmark tests the checker finds.
pub struct CompletenessResult {
    pub total: usize,
    pub found: usize,
    pub expected_found: usize,
    pub details: Vec<(String, bool, bool)>, // (id, expected, got)
}

/// Regenerate the §6.6 completeness experiment.
pub fn sec66_completeness() -> CompletenessResult {
    let checker = Checker::new();
    let mut details = Vec::new();
    let mut found = 0usize;
    let tests = completeness_benchmark();
    let expected_found = tests.iter().filter(|t| t.expected_found).count();
    for t in &tests {
        let result = checker
            .check_source(t.pattern.source, &format!("{}.c", t.pattern.id))
            .unwrap();
        let got = !result.reports.is_empty();
        if got {
            found += 1;
        }
        details.push((t.pattern.id.to_string(), t.expected_found, got));
    }
    CompletenessResult {
        total: tests.len(),
        found,
        expected_found,
        details,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_matches_the_papers_matrix() {
        let fig = figure4();
        assert_eq!(fig.rows.len(), 16);
        let row = |name: &str| {
            fig.rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.clone())
                .unwrap()
        };
        // Spot-check the paper's most distinctive rows.
        assert_eq!(
            row("gcc-2.95.3"),
            vec![None, None, Some(1), None, None, None]
        );
        assert_eq!(
            row("gcc-4.8.1"),
            vec![Some(2), Some(2), Some(2), Some(2), None, Some(2)]
        );
        assert_eq!(
            row("clang-3.3"),
            vec![Some(1), None, Some(1), None, Some(1), None]
        );
        assert_eq!(row("xlc-12.1"), vec![Some(3), None, None, None, None, None]);
        assert_eq!(
            row("ti-7.4.2"),
            vec![Some(0), None, Some(0), Some(2), None, None]
        );
    }

    #[test]
    fn completeness_finds_seven_of_ten() {
        let result = sec66_completeness();
        assert_eq!(result.total, 10);
        assert_eq!(result.expected_found, 7);
        assert_eq!(result.found, result.expected_found, "{:?}", result.details);
        for (id, expected, got) in &result.details {
            assert_eq!(expected, got, "mismatch for {id}");
        }
    }

    #[test]
    fn prevalence_sample_has_reports() {
        let result = prevalence(12, 3);
        assert_eq!(result.packages, 12);
        assert!(result.packages_with_reports > 0);
        assert!(!result.reports_by_algorithm.is_empty());
    }

    #[test]
    fn checker_scaling_rows_agree_and_cache_hits() {
        let cfg = ScalingConfig {
            packages: 4,
            seed: 11,
            threads: vec![1, 2],
            query_budget: 500_000,
        };
        let scaling = checker_scaling(&cfg);
        assert_eq!(scaling.rows.len(), 5); // seed + two cached + two incremental
        assert!(scaling.functions > 0);
        // Every configuration must find exactly the same bugs.
        let seed_reports = scaling.rows[0].reports;
        let seed_queries = scaling.rows[0].queries;
        for row in &scaling.rows {
            assert_eq!(row.reports, seed_reports, "{}", row.label);
            // Core-seeded minimization skips queries the memoized assumption
            // core proves irrelevant; every skip is accounted for, so the
            // issued + saved total still matches the seed row exactly.
            assert_eq!(
                row.queries + row.minimization_queries_saved,
                seed_queries,
                "{}",
                row.label
            );
        }
        // The seed row never consults the cache; the cached rows must get a
        // nonzero hit rate out of the repeated synthetic idioms.
        assert_eq!(scaling.rows[0].cache_hits, 0);
        for row in &scaling.rows[1..] {
            assert!(row.cache_hit_rate > 0.0, "{}", row.label);
        }
        // Only the incremental rows answer queries on persistent instances,
        // and those must reuse loaded clauses across the Figure 8 loop.
        for row in &scaling.rows {
            if row.incremental {
                assert!(row.incremental_queries > 0, "{}", row.label);
                assert!(row.reused_clauses > 0, "{}", row.label);
            } else {
                assert_eq!(row.incremental_queries, 0, "{}", row.label);
            }
        }
        // The JSON payload is valid enough to round-trip its key fields.
        let json = scaling.to_json();
        assert!(json.contains("\"speedup_vs_seed\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.contains("\"speedup_incremental_vs_cached\""));
        assert!(json.contains("\"incremental\": true"));
        assert!(json.contains("\"speedup_warm_vs_cold\""));
        assert!(json.contains("\"speedup_rescan_vs_cold\""));
        assert!(json.contains("\"modules_skipped_rate\""));
        assert!(json.contains("\"speedup_merged_warm_vs_cold\""));
        assert!(json.contains("\"merge_reports_identical\""));
        assert!(json.contains("\"function_rescan\""));
        assert!(json.contains("\"speedup_function_rescan_vs_module\""));
        assert!(json.contains("\"dedup_queries_saved\""));
        assert!(json.contains("\"degraded_queries\""));
        assert!(json.contains("\"salvaged_entries\""));
        assert!(json.contains("\"store_healed\""));
        assert!(json.contains("\"solver_speed\""));
        assert!(json.contains("\"speedup_solver_vs_baseline\""));
        // The solver-speed section must measure real work and stay
        // verdict-stable across every configuration it compares.
        let ss = &scaling.solver_speed;
        assert_eq!(ss.rows.len(), 4, "{ss:?}");
        assert!(ss.rows.iter().all(|r| r.propagations > 0), "{ss:?}");
        assert!(ss.reports_identical, "{ss:?}");
        assert!(ss.speedup_solver_vs_baseline > 1.0, "{ss:?}");
        // The Unsat fast path must do strictly less solver work than the
        // PR 9 configuration on the same churned archive, and its savings
        // must come from measurable sources: core-cache answers and
        // core-seeded minimization skips.
        assert!(json.contains("\"speedup_unsat_vs_pr9\""));
        assert!(json.contains("\"core_cache_hit_rate\""));
        assert!(json.contains("\"hbr_binaries_added\""));
        assert!(ss.speedup_unsat_vs_pr9 > 1.0, "{ss:?}");
        assert!(ss.core_cache_hit_rate > 0.0, "{ss:?}");
        let pr9 = &ss.rows[1];
        let default_row = &ss.rows[2];
        assert!(pr9.preprocess && !pr9.core_cache && !pr9.hbr, "{pr9:?}");
        assert_eq!(pr9.core_cache_hits, 0, "{pr9:?}");
        assert!(default_row.core_cache_hits > 0, "{default_row:?}");
        assert!(default_row.cores_recorded > 0, "{default_row:?}");
        // Core-seeded minimization must actually skip queries somewhere in
        // the run: the scaling rows' incremental configurations exercise the
        // Figure 8 minimal-UB-set loop on workloads with multi-condition
        // minimizations.
        let saved: u64 = scaling
            .rows
            .iter()
            .map(|r| r.minimization_queries_saved)
            .sum();
        assert!(saved > 0, "no minimization queries saved in any row");
        // The fault-tolerance section must actually measure something.
        let ft = &scaling.fault_tolerance;
        assert!(ft.degraded_queries > 0, "{ft:?}");
        assert!(ft.degraded_modules > 0, "{ft:?}");
        assert!(ft.degraded_deterministic, "{ft:?}");
        assert!(ft.salvaged_entries > 0, "{ft:?}");
        assert_eq!(ft.dropped_lines, 1, "{ft:?}");
        assert!(ft.first_bad_offset.is_some(), "{ft:?}");
        assert!(ft.store_healed, "{ft:?}");
    }

    #[test]
    fn sharded_scan_folds_back_into_one_warm_store() {
        let cfg = ScalingConfig {
            packages: 6,
            seed: 13,
            threads: vec![2],
            query_budget: 500_000,
        };
        let sharded = sharded_scan(&cfg);
        assert_eq!(sharded.shards, 4);
        assert_eq!(
            sharded.rows.len(),
            6,
            "cold baseline + four shards + merged warm"
        );
        // The shards partition the archive: fan-out files sum to the total.
        let fan_out_files: usize = sharded.rows[1..5].iter().map(|r| r.files).sum();
        assert_eq!(fan_out_files, sharded.files);
        // The merged-warm run replays every module without solver work and
        // streams byte-identical reports to the cold unsharded baseline.
        let warm = sharded.rows.last().unwrap();
        assert_eq!(warm.modules_skipped, warm.files);
        assert_eq!(warm.queries, 0, "{warm:?}");
        assert!((sharded.merged_warm_skip_rate - 1.0).abs() < 1e-9);
        assert!(sharded.merge_reports_identical);
        assert_eq!(warm.reports, sharded.rows[0].reports);
        // The merged stores hold every shard's state: one record per
        // function (5 per generated archive file), none colliding across
        // shards (every generated function name — and so every key — is
        // unique).
        assert_eq!(sharded.merged_scan_entries, sharded.files as u64 * 5);
        assert!(sharded.merged_query_entries > 0);
    }

    #[test]
    fn function_rescan_narrows_reanalysis_to_edited_functions() {
        let cfg = ScalingConfig {
            packages: 6,
            seed: 13,
            threads: vec![2],
            query_budget: 500_000,
        };
        let section = function_rescan(&cfg);
        assert_eq!(
            section.rows.len(),
            9,
            "three configurations x three churn levels"
        );
        assert!(section.reports_identical);
        for row in &section.rows {
            assert!(row.reports_identical, "{row:?}");
        }
        // 0% churn: both granularities replay everything.
        for row in &section.rows[1..3] {
            assert_eq!(row.churn_pct, 0);
            assert_eq!(row.functions_skipped, section.functions, "{row:?}");
            assert_eq!(row.modules_skipped, row.files, "{row:?}");
            assert_eq!(row.queries, 0, "{row:?}");
        }
        // 5% churn: the function-granular run re-analyzes exactly the
        // edited functions; the module-granular run pays for whole modules.
        let edited = (0.05 * section.functions as f64).round() as usize;
        let module_row = &section.rows[4];
        let function_row = &section.rows[5];
        assert_eq!(function_row.functions_skipped, section.functions - edited);
        assert!(
            function_row.functions_skipped > module_row.functions_skipped,
            "{} vs {}",
            function_row.functions_skipped,
            module_row.functions_skipped
        );
        assert!(function_row.queries > 0);
        assert!(
            section.speedup_function_rescan_vs_module >= 5.0,
            "the acceptance bar is 5x fewer queries, got {:.2}x ({} vs {})",
            section.speedup_function_rescan_vs_module,
            module_row.queries,
            function_row.queries
        );
        assert!((section.function_skip_rate_5pct - 0.95).abs() < 0.01);
        // Cross-path dedup must have saved real solver work.
        assert!(section.dedup_duplicate_files > 0);
        assert!(
            section.dedup_queries_saved > 0,
            "duplicated files must replay from the original's records"
        );
    }

    #[test]
    fn zero_churn_rescan_skips_everything_and_replays_identically() {
        let cfg = ScalingConfig {
            packages: 6,
            seed: 13,
            threads: vec![2],
            query_budget: 500_000,
        };
        let rescan = incremental_rescan(&cfg);
        assert_eq!(
            rescan.rows.len(),
            9,
            "three configurations x three churn levels"
        );
        assert!(rescan.reports_identical);
        // At 0% churn every module is unchanged: the rescan row skips all of
        // them and issues no solver query.
        let zero_rescan = &rescan.rows[2];
        assert_eq!(zero_rescan.churn_pct, 0);
        assert_eq!(zero_rescan.modules_skipped, zero_rescan.files);
        assert_eq!(zero_rescan.queries, 0);
        assert!((rescan.modules_skipped_rate - 1.0).abs() < 1e-9);
        // Cold and warm rows never skip; churned rescans skip exactly the
        // semantically unchanged remainder (cosmetic edits still hit).
        for row in &rescan.rows {
            if !row.label.contains("incremental rescan") {
                assert_eq!(row.modules_skipped, 0, "{}", row.label);
            } else {
                assert!(
                    row.queries < rescan.rows[0].queries,
                    "a rescan must re-analyze strictly less than cold does ({})",
                    row.label
                );
            }
        }
        let twenty_rescan = rescan.rows.last().unwrap();
        assert_eq!(twenty_rescan.churn_pct, 20);
        assert!(
            twenty_rescan.modules_skipped < twenty_rescan.files,
            "semantic churn must invalidate some modules"
        );
        assert!(twenty_rescan.modules_skipped > 0);
    }

    #[test]
    fn warm_scan_answers_from_the_disk_store() {
        let cfg = ScalingConfig {
            packages: 6,
            seed: 13,
            threads: vec![2],
            query_budget: 500_000,
        };
        let scan = scan_persistence(&cfg);
        assert_eq!(scan.rows.len(), 2);
        let (cold, warm) = (&scan.rows[0], &scan.rows[1]);
        assert!(!cold.warm);
        assert!(warm.warm);
        // Cold and warm runs do the same work and must report the same bugs,
        // byte for byte.
        assert_eq!(cold.queries, warm.queries);
        assert_eq!(cold.reports, warm.reports);
        assert!(scan.reports_identical);
        // The warm run starts from the cold run's saved entries and answers
        // (at least) 90% of its store lookups from disk — on this archive,
        // all of them: every decided query was persisted.
        assert!(scan.store_entries > 0);
        assert_eq!(warm.store_misses, 0, "{warm:?}");
        assert!(
            scan.warm_store_hit_rate >= 0.9,
            "warm hit rate {} below the 90% bar",
            scan.warm_store_hit_rate
        );
    }
}
