//! Regenerates the §6.3 precision experiment: report classification for the
//! Kerberos- and Postgres-like corpora.
fn main() {
    for row in stack_bench::sec63_precision() {
        println!(
            "{:<10} {:>3} reports  ({} urgent optimization bugs, {} time bombs)",
            row.system, row.reports, row.urgent, row.time_bombs
        );
    }
}
