//! Regenerates Figure 4: the compiler/optimization-level survey.
fn main() {
    println!("{}", stack_bench::figure4().render());
}
