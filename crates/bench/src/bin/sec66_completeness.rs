//! Regenerates the §6.6 completeness experiment (7 of 10 tests found).
fn main() {
    let r = stack_bench::sec66_completeness();
    println!(
        "completeness: {}/{} tests identified (paper: 7/10)",
        r.found, r.total
    );
    for (id, expected, got) in r.details {
        println!("  {:<36} expected={} found={}", id, expected, got);
    }
}
