//! Regenerates Figure 18: reports per undefined-behavior condition.
fn main() {
    let packages = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!(
        "{}",
        stack_bench::prevalence(packages, 0x57ac4).render_figure18()
    );
}
