//! Runs every experiment and prints all tables (used to fill EXPERIMENTS.md).
fn main() {
    println!("{}", stack_bench::figure4().render());
    println!("{}", stack_bench::figure9().render());
    println!(
        "{}",
        stack_bench::render_figure16(&stack_bench::figure16(1))
    );
    let prev = stack_bench::prevalence(60, 0x57ac4);
    println!("{}", prev.render_figure17());
    println!("{}", prev.render_figure18());
    println!("-- §6.3 precision --");
    for row in stack_bench::sec63_precision() {
        println!(
            "{:<10} {:>3} reports  ({} urgent, {} time bombs)",
            row.system, row.reports, row.urgent, row.time_bombs
        );
    }
    let c = stack_bench::sec66_completeness();
    println!(
        "-- §6.6 completeness: {}/{} (paper: 7/10) --",
        c.found, c.total
    );
}
