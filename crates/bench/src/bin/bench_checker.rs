//! Checker-scaling benchmark: measures end-to-end analysis throughput over
//! the fig16 synthetic population under the sequential uncached seed path,
//! the parallel driver + memoized query cache at 1/2/4 threads (the PR 2
//! configuration), and the same thread counts with incremental per-function
//! solver instances on top of the cache — plus a cold-vs-warm archive scan
//! through a disk-backed query store (the `scan` section, whose
//! `speedup_warm_vs_cold` field records what cross-run persistence buys) —
//! then writes the machine-readable results to `BENCH_checker.json` (CI
//! uploads it as an artifact, giving the repo a perf trajectory; the
//! `speedup_incremental_vs_cached` field records how much the incremental
//! mode gains over cached-parallel alone).
//!
//! Usage: `bench_checker [--out <path>]`; honors `STACK_BENCH_FAST=1`.

use stack_bench::{checker_scaling, ScalingConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("bench_checker: --out needs a path");
                std::process::exit(2);
            }
        },
        None => "BENCH_checker.json".to_string(),
    };
    let cfg = ScalingConfig::from_env();
    let results = checker_scaling(&cfg);
    print!("{}", results.render());
    let json = results.to_json();
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("  wrote {out_path}");
}
