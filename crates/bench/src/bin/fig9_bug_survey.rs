//! Regenerates Figure 9: bugs per system and undefined-behavior class.
fn main() {
    println!("{}", stack_bench::figure9().render());
}
