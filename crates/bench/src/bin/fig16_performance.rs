//! Regenerates Figure 16: build/analysis time, queries, and timeouts.
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!(
        "{}",
        stack_bench::render_figure16(&stack_bench::figure16(scale))
    );
}
