//! Criterion benchmarks for end-to-end checker throughput (the analysis-time
//! column of Figure 16) and for the compiler-profile pipeline (Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use stack_core::{Checker, CheckerConfig};
use stack_corpus::{
    generate, SynthConfig, FIG10_POSTGRES_DIVISION, FIG12_FFMPEG_BOUNDS, FIG2_TUN_NULL_CHECK,
};
use stack_opt::{most_aggressive, run_profile};

fn checker_on_paper_examples(c: &mut Criterion) {
    let checker = Checker::new();
    let mut group = c.benchmark_group("checker");
    for pattern in [
        FIG2_TUN_NULL_CHECK,
        FIG10_POSTGRES_DIVISION,
        FIG12_FFMPEG_BOUNDS,
    ] {
        group.bench_function(pattern.id, |b| {
            b.iter(|| {
                criterion::black_box(
                    checker
                        .check_source(pattern.source, &format!("{}.c", pattern.id))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// The fig16 synthetic workload: sequential-uncached seed path vs the
/// parallel driver with the memoized query cache.
fn checker_on_synthetic_population(c: &mut Criterion) {
    let synth = SynthConfig {
        packages: 4,
        seed: 47,
        ..SynthConfig::default()
    };
    let mut modules = Vec::new();
    for pkg in generate(&synth) {
        for file in &pkg.files {
            let mut module =
                stack_minic::compile(&file.source, &file.name).expect("synthetic files compile");
            stack_opt::optimize_for_analysis(&mut module);
            modules.push(module);
        }
    }
    let mut group = c.benchmark_group("checker_population");
    for (name, threads, query_cache) in [
        ("seed_sequential_uncached", 1usize, false),
        ("parallel_cached", 4usize, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let checker = Checker::with_config(CheckerConfig {
                    query_budget: 500_000,
                    threads: Some(threads),
                    query_cache,
                    ..CheckerConfig::default()
                });
                let mut reports = 0usize;
                for module in &modules {
                    reports += checker.check_module(module).reports.len();
                }
                criterion::black_box(reports)
            })
        });
    }
    group.finish();
}

fn profile_pipeline(c: &mut Criterion) {
    c.bench_function("opt/aggressive_profile_on_fig12", |b| {
        b.iter(|| {
            let mut module = stack_minic::compile(FIG12_FFMPEG_BOUNDS.source, "fig12.c").unwrap();
            criterion::black_box(run_profile(&mut module, &most_aggressive(), 2))
        })
    });
}

criterion_group!(
    benches,
    checker_on_paper_examples,
    checker_on_synthetic_population,
    profile_pipeline
);
criterion_main!(benches);
