//! Criterion benchmarks for end-to-end checker throughput (the analysis-time
//! column of Figure 16) and for the compiler-profile pipeline (Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use stack_core::Checker;
use stack_corpus::{FIG10_POSTGRES_DIVISION, FIG12_FFMPEG_BOUNDS, FIG2_TUN_NULL_CHECK};
use stack_opt::{most_aggressive, run_profile};

fn checker_on_paper_examples(c: &mut Criterion) {
    let checker = Checker::new();
    let mut group = c.benchmark_group("checker");
    for pattern in [
        FIG2_TUN_NULL_CHECK,
        FIG10_POSTGRES_DIVISION,
        FIG12_FFMPEG_BOUNDS,
    ] {
        group.bench_function(pattern.id, |b| {
            b.iter(|| {
                criterion::black_box(
                    checker
                        .check_source(pattern.source, &format!("{}.c", pattern.id))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn profile_pipeline(c: &mut Criterion) {
    c.bench_function("opt/aggressive_profile_on_fig12", |b| {
        b.iter(|| {
            let mut module = stack_minic::compile(FIG12_FFMPEG_BOUNDS.source, "fig12.c").unwrap();
            criterion::black_box(run_profile(&mut module, &most_aggressive(), 2))
        })
    });
}

criterion_group!(benches, checker_on_paper_examples, profile_pipeline);
criterion_main!(benches);
