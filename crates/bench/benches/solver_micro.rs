//! Criterion microbenchmarks for the bit-vector solver: the per-query cost
//! that dominates the Figure 16 analysis time.

use criterion::{criterion_group, criterion_main, Criterion};
use stack_solver::{BvSolver, TermPool};

fn pointer_overflow_query(c: &mut Criterion) {
    c.bench_function("solver/pointer_overflow_unsat", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = BvSolver::new();
            let buf = pool.bv_var("buf", 64);
            let len = pool.bv_var("len", 32);
            let len64 = pool.zext(len, 64);
            let sum = pool.bv_add(buf, len64);
            let wrapped = pool.bv_ult(sum, buf);
            let zero = pool.bv_const(64, 0);
            let nonneg = pool.bv_sge(len64, zero);
            let not_wrapped = pool.not(wrapped);
            let no_ovf = pool.implies(nonneg, not_wrapped);
            let q = pool.and(wrapped, no_ovf);
            criterion::black_box(solver.check(&pool, &[q]));
        })
    });
}

fn signed_overflow_query(c: &mut Criterion) {
    c.bench_function("solver/signed_overflow_unsat", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = BvSolver::new();
            let x = pool.bv_var("x", 32);
            let c100 = pool.bv_const(32, 100);
            let sum = pool.bv_add(x, c100);
            let check = pool.bv_slt(sum, x);
            let x64 = pool.sext(x, 33);
            let c64 = pool.sext(c100, 33);
            let wide = pool.bv_add(x64, c64);
            let narrow = pool.sext(sum, 33);
            let no_ovf = pool.eq(wide, narrow);
            criterion::black_box(solver.check(&pool, &[check, no_ovf]));
        })
    });
}

criterion_group!(benches, pointer_overflow_query, signed_overflow_query);
criterion_main!(benches);
