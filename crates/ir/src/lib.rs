//! `stack-ir` — a typed, SSA-style intermediate representation.
//!
//! This crate is the reproduction's stand-in for the LLVM IR that STACK
//! (Wang et al., SOSP 2013) analyzes. The mini-C frontend lowers source
//! programs into this IR, the optimizer crate transforms it, and the checker
//! crate inserts undefined-behavior conditions and runs its solver-based
//! elimination/simplification algorithms over it.
//!
//! Design notes:
//!
//! * Instructions live in a per-function arena ([`function::Function`]);
//!   basic blocks hold ordered lists of instruction ids plus a terminator.
//! * Types are integers of explicit width, an opaque pointer type, booleans,
//!   and void ([`types::Type`]); signedness is a property of operations.
//! * Every instruction records an [`origin::Origin`] (source location plus
//!   programmer/macro/inline provenance) which the checker uses to suppress
//!   reports about compiler-generated code, mirroring §4.2 of the paper.
//! * The `bug_on` marker instruction ([`inst::InstKind::BugOn`]) is how the
//!   checker's UB-condition insertion stage (§4.3) annotates the IR.

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod function;
pub mod inst;
pub mod module;
pub mod origin;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::FunctionBuilder;
pub use cfg::{reverse_post_order, Cfg};
pub use dom::DomTree;
pub use function::{Block, Function, Param};
pub use inst::{BinOp, CmpPred, Inst, InstKind, ProgramPoint, Terminator};
pub use module::Module;
pub use origin::{Origin, OriginKind, SourceLoc};
pub use printer::{print_function, print_inst, print_module, print_terminator};
pub use types::{Type, POINTER_WIDTH};
pub use value::{BlockId, Constant, InstId, Operand};
pub use verifier::{verify_function, verify_module, VerifyError};
