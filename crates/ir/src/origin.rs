//! Source locations and code origins.
//!
//! STACK must distinguish code the programmer wrote from code the compiler
//! generated (macro expansions and inlined function bodies); reports are only
//! emitted for programmer-written fragments (paper §4.2, §4.5). Every IR
//! instruction therefore carries an [`Origin`]: its source position plus a
//! record of the macro or inlining step that produced it, if any.

use std::fmt;

/// A position in a source file.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SourceLoc {
    /// File name (as given to the frontend).
    pub file: String,
    /// 1-based line number; 0 means unknown.
    pub line: u32,
    /// 1-based column number; 0 means unknown.
    pub column: u32,
}

impl SourceLoc {
    /// Create a location.
    pub fn new(file: &str, line: u32, column: u32) -> SourceLoc {
        SourceLoc {
            file: file.to_string(),
            line,
            column,
        }
    }

    /// An unknown location.
    pub fn unknown() -> SourceLoc {
        SourceLoc::default()
    }

    /// Whether the location carries real position information.
    pub fn is_known(&self) -> bool {
        !self.file.is_empty() || self.line != 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_known() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}:{}", self.file, self.line, self.column)
        }
    }
}

/// How a piece of IR came to exist.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum OriginKind {
    /// Written directly by the programmer at the recorded location.
    #[default]
    Programmer,
    /// Produced by expanding the named macro. STACK suppresses reports whose
    /// unstable fragment originates from a macro body the programmer merely
    /// invoked (e.g. the `IS_A(p)` null check of §4.2).
    MacroExpansion {
        /// Name of the macro whose body produced the code.
        macro_name: String,
    },
    /// Produced by inlining the named callee into the analyzed function.
    Inlined {
        /// Name of the function whose body was inlined.
        callee: String,
    },
}

/// Origin of an instruction: source position plus provenance.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Origin {
    pub loc: SourceLoc,
    pub kind: OriginKind,
}

impl Origin {
    /// Programmer-written code at a location.
    pub fn programmer(loc: SourceLoc) -> Origin {
        Origin {
            loc,
            kind: OriginKind::Programmer,
        }
    }

    /// Code produced by a macro expansion.
    pub fn macro_expansion(loc: SourceLoc, macro_name: &str) -> Origin {
        Origin {
            loc,
            kind: OriginKind::MacroExpansion {
                macro_name: macro_name.to_string(),
            },
        }
    }

    /// Code produced by inlining `callee`.
    pub fn inlined(loc: SourceLoc, callee: &str) -> Origin {
        Origin {
            loc,
            kind: OriginKind::Inlined {
                callee: callee.to_string(),
            },
        }
    }

    /// An origin with no information.
    pub fn unknown() -> Origin {
        Origin::default()
    }

    /// Whether the code was written directly by the programmer (and is thus
    /// eligible for a bug report).
    pub fn is_programmer_written(&self) -> bool {
        matches!(self.kind, OriginKind::Programmer)
    }

    /// Mark this origin as coming from a macro expansion, keeping the
    /// location. Used by the frontend when a token originates in a macro body.
    pub fn into_macro(self, macro_name: &str) -> Origin {
        Origin {
            loc: self.loc,
            kind: OriginKind::MacroExpansion {
                macro_name: macro_name.to_string(),
            },
        }
    }

    /// Mark this origin as inlined from `callee`, keeping the location.
    pub fn into_inlined(self, callee: &str) -> Origin {
        Origin {
            loc: self.loc,
            kind: OriginKind::Inlined {
                callee: callee.to_string(),
            },
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            OriginKind::Programmer => write!(f, "{}", self.loc),
            OriginKind::MacroExpansion { macro_name } => {
                write!(f, "{} (from macro {macro_name})", self.loc)
            }
            OriginKind::Inlined { callee } => write!(f, "{} (inlined from {callee})", self.loc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_classification() {
        let loc = SourceLoc::new("tun.c", 42, 7);
        let prog = Origin::programmer(loc.clone());
        assert!(prog.is_programmer_written());
        let mac = Origin::macro_expansion(loc.clone(), "IS_A");
        assert!(!mac.is_programmer_written());
        let inl = Origin::inlined(loc, "helper");
        assert!(!inl.is_programmer_written());
    }

    #[test]
    fn conversions_preserve_location() {
        let loc = SourceLoc::new("x.c", 10, 1);
        let o = Origin::programmer(loc.clone()).into_macro("M");
        assert_eq!(o.loc, loc);
        assert!(!o.is_programmer_written());
        let o2 = Origin::programmer(loc.clone()).into_inlined("f");
        assert_eq!(o2.loc, loc);
        assert!(matches!(o2.kind, OriginKind::Inlined { .. }));
    }

    #[test]
    fn display_formats() {
        let loc = SourceLoc::new("a.c", 3, 4);
        assert_eq!(loc.to_string(), "a.c:3:4");
        assert_eq!(SourceLoc::unknown().to_string(), "<unknown>");
        assert!(!SourceLoc::unknown().is_known());
        let mac = Origin::macro_expansion(loc, "CHECK");
        assert!(mac.to_string().contains("from macro CHECK"));
    }
}
