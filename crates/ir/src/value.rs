//! Values and operands.

use crate::types::Type;
use std::fmt;

/// Identifier of an instruction inside a function's instruction arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstId(pub u32);

/// Identifier of a basic block inside a function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl InstId {
    /// Index into the instruction arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Index into the block list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A compile-time constant value. Integers are stored as raw bits masked to
/// the width of their type; the null pointer is a `Ptr`-typed zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Constant {
    pub ty: Type,
    pub bits: u64,
}

impl Constant {
    /// An integer constant of the given type.
    pub fn int(ty: Type, value: i64) -> Constant {
        let width = ty.bit_width();
        let bits = if width >= 64 {
            value as u64
        } else {
            (value as u64) & ((1u64 << width) - 1)
        };
        Constant { ty, bits }
    }

    /// A boolean constant.
    pub fn bool(value: bool) -> Constant {
        Constant {
            ty: Type::Bool,
            bits: u64::from(value),
        }
    }

    /// The null pointer.
    pub fn null() -> Constant {
        Constant {
            ty: Type::Ptr,
            bits: 0,
        }
    }

    /// Signed interpretation of the constant.
    pub fn as_signed(&self) -> i64 {
        let width = self.ty.bit_width();
        if width == 0 {
            return 0;
        }
        let shift = 64 - width;
        ((self.bits << shift) as i64) >> shift
    }

    /// Unsigned interpretation of the constant.
    pub fn as_unsigned(&self) -> u64 {
        self.bits
    }

    /// Whether the constant is zero (of any type).
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::Ptr if self.bits == 0 => write!(f, "null"),
            Type::Ptr => write!(f, "ptr:{:#x}", self.bits),
            Type::Bool => write!(f, "{}", self.bits != 0),
            _ => write!(f, "{}", self.as_signed()),
        }
    }
}

/// An operand of an instruction: a constant, a function parameter, or the
/// result of another instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    Const(Constant),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

impl Operand {
    /// Integer constant operand.
    pub fn int(ty: Type, value: i64) -> Operand {
        Operand::Const(Constant::int(ty, value))
    }

    /// Boolean constant operand.
    pub fn bool(value: bool) -> Operand {
        Operand::Const(Constant::bool(value))
    }

    /// Null pointer operand.
    pub fn null() -> Operand {
        Operand::Const(Constant::null())
    }

    /// The constant behind this operand, if it is one.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Operand::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The instruction behind this operand, if it is one.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Operand::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// Whether this operand is a constant equal to `value` (bit pattern).
    pub fn is_const_value(&self, value: u64) -> bool {
        matches!(self, Operand::Const(c) if c.bits == value)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Param(i) => write!(f, "%arg{i}"),
            Operand::Inst(id) => write!(f, "{id}"),
        }
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Operand {
        Operand::Const(c)
    }
}

impl From<InstId> for Operand {
    fn from(id: InstId) -> Operand {
        Operand::Inst(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_masking_and_sign() {
        let c = Constant::int(Type::I8, -1);
        assert_eq!(c.bits, 0xFF);
        assert_eq!(c.as_signed(), -1);
        assert_eq!(c.as_unsigned(), 0xFF);
        let big = Constant::int(Type::I32, i64::from(i32::MIN));
        assert_eq!(big.as_signed(), i64::from(i32::MIN));
        let c64 = Constant::int(Type::I64, -5);
        assert_eq!(c64.as_signed(), -5);
    }

    #[test]
    fn null_and_bool() {
        assert!(Constant::null().is_zero());
        assert_eq!(Constant::null().to_string(), "null");
        assert_eq!(Constant::bool(true).to_string(), "true");
        assert_eq!(Constant::int(Type::I32, -7).to_string(), "-7");
    }

    #[test]
    fn operand_helpers() {
        let op = Operand::int(Type::I32, 42);
        assert!(op.as_const().is_some());
        assert!(op.as_inst().is_none());
        assert!(op.is_const_value(42));
        assert!(!op.is_const_value(43));
        let i: Operand = InstId(3).into();
        assert_eq!(i.as_inst(), Some(InstId(3)));
        assert_eq!(i.to_string(), "%3");
        assert_eq!(Operand::Param(1).to_string(), "%arg1");
    }
}
