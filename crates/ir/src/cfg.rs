//! Control-flow graph utilities: successors, predecessors, reachability, and
//! reverse post-order.

use crate::function::Function;
use crate::value::BlockId;
use std::collections::{HashMap, HashSet};

/// Predecessor and successor maps for a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: HashMap<BlockId, Vec<BlockId>>,
    succs: HashMap<BlockId, Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Compute the CFG of a function.
    pub fn compute(func: &Function) -> Cfg {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let num_blocks = func.num_blocks() as u32;
        for b in func.block_ids() {
            // Successors pointing outside the function (malformed IR caught by
            // the verifier) are ignored so CFG construction never panics.
            let ss: Vec<BlockId> = func
                .block(b)
                .terminator
                .successors()
                .into_iter()
                .filter(|s| s.0 < num_blocks)
                .collect();
            for s in &ss {
                preds.entry(*s).or_default().push(b);
            }
            succs.insert(b, ss);
        }
        let rpo = reverse_post_order(func);
        Cfg { preds, succs, rpo }
    }

    /// Predecessors of a block (empty for the entry and unreachable blocks).
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        self.preds.get(&block).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Successors of a block.
    pub fn succs(&self, block: BlockId) -> &[BlockId] {
        self.succs.get(&block).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether a block is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo.contains(&block)
    }
}

/// Reverse post-order of the blocks reachable from the entry.
pub fn reverse_post_order(func: &Function) -> Vec<BlockId> {
    let mut visited: HashSet<BlockId> = HashSet::new();
    let mut post: Vec<BlockId> = Vec::new();
    // Iterative DFS with an explicit stack of (block, next successor index).
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
    let num_blocks = func.num_blocks() as u32;
    visited.insert(func.entry());
    while let Some((block, idx)) = stack.pop() {
        let succs: Vec<BlockId> = func
            .block(block)
            .terminator
            .successors()
            .into_iter()
            .filter(|s| s.0 < num_blocks)
            .collect();
        if idx < succs.len() {
            stack.push((block, idx + 1));
            let next = succs[idx];
            if visited.insert(next) {
                stack.push((next, 0));
            }
        } else {
            post.push(block);
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Operand;

    /// Build a diamond CFG: entry -> (then, else) -> merge.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::with_params("d", &[("c", Type::Bool)], Type::I32);
        let then_bb = b.add_block("then");
        let else_bb = b.add_block("else");
        let merge = b.add_block("merge");
        b.cond_br(b.param(0), then_bb, else_bb);
        b.switch_to(then_bb);
        b.br(merge);
        b.switch_to(else_bb);
        b.br(merge);
        b.switch_to(merge);
        b.ret(Operand::int(Type::I32, 0));
        b.finish()
    }

    #[test]
    fn diamond_cfg_structure() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let entry = f.entry();
        assert_eq!(cfg.succs(entry).len(), 2);
        assert!(cfg.preds(entry).is_empty());
        let merge = BlockId(3);
        assert_eq!(cfg.preds(merge).len(), 2);
        assert!(cfg.is_reachable(merge));
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        // Merge comes after both branches in RPO.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(merge) > pos(BlockId(1)));
        assert!(pos(merge) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut b = FunctionBuilder::with_params("u", &[], Type::Void);
        let dead = b.add_block("dead");
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert!(cfg.is_reachable(f.entry()));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reverse_post_order().len(), 1);
    }

    #[test]
    fn loop_cfg() {
        // entry -> header; header -> (body, exit); body -> header.
        let mut b = FunctionBuilder::with_params("l", &[("c", Type::Bool)], Type::Void);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.br(header);
        b.switch_to(header);
        b.cond_br(b.param(0), body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(header).len(), 2); // entry and body
        assert_eq!(cfg.succs(header).len(), 2);
        assert_eq!(cfg.reverse_post_order().len(), 4);
        assert_eq!(cfg.reverse_post_order()[0], f.entry());
    }
}
