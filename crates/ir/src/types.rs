//! The IR type system.
//!
//! The IR is deliberately small: integer types of arbitrary width up to 64
//! bits, an opaque pointer type, a boolean (i1), and void for functions that
//! return nothing. Array and struct layout decisions are made by the
//! frontend during lowering; what the checker needs (element sizes, array
//! bounds) is carried on the relevant instructions instead of in the type
//! system, mirroring how STACK consumes LLVM IR after lowering.

use std::fmt;

/// Width, in bits, used to model pointers. The paper's examples target
/// 64-bit systems (e.g. the Postgres int64 division case runs on x86-64).
pub const POINTER_WIDTH: u32 = 64;

/// An IR type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// No value (function return type only).
    Void,
    /// Single-bit boolean, the result of comparisons.
    Bool,
    /// Integer of the given bit width (1..=64). Signedness is a property of
    /// operations, not of values, exactly as in LLVM IR.
    Int(u32),
    /// An opaque pointer. Pointee element sizes appear on `PtrAdd`
    /// instructions; pointees are loaded/stored with an explicit type.
    Ptr,
}

impl Type {
    /// 32-bit integer, the default `int` of the mini-C frontend.
    pub const I32: Type = Type::Int(32);
    /// 64-bit integer.
    pub const I64: Type = Type::Int(64);
    /// 8-bit integer (`char`).
    pub const I8: Type = Type::Int(8);
    /// 16-bit integer (`short`).
    pub const I16: Type = Type::Int(16);

    /// Bit width of a value of this type when represented in the solver.
    pub fn bit_width(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Bool => 1,
            Type::Int(w) => w,
            Type::Ptr => POINTER_WIDTH,
        }
    }

    /// Size in bytes when stored in memory (used for pointer arithmetic
    /// scaling). Booleans are stored as one byte.
    pub fn byte_size(self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Bool => 1,
            Type::Int(w) => u64::from(w.div_ceil(8)),
            Type::Ptr => u64::from(POINTER_WIDTH / 8),
        }
    }

    /// Whether the type is an integer (of any width, excluding `Bool`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// Whether the type is the pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Whether the type is the boolean type.
    pub fn is_bool(self) -> bool {
        matches!(self, Type::Bool)
    }

    /// Whether the type carries a value at all.
    pub fn is_value(self) -> bool {
        !matches!(self, Type::Void)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "i1"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Ptr => write!(f, "ptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_sizes() {
        assert_eq!(Type::I32.bit_width(), 32);
        assert_eq!(Type::I32.byte_size(), 4);
        assert_eq!(Type::I64.byte_size(), 8);
        assert_eq!(Type::Ptr.bit_width(), POINTER_WIDTH);
        assert_eq!(Type::Ptr.byte_size(), 8);
        assert_eq!(Type::Bool.bit_width(), 1);
        assert_eq!(Type::Void.bit_width(), 0);
        assert_eq!(Type::Int(12).byte_size(), 2);
    }

    #[test]
    fn predicates() {
        assert!(Type::I32.is_int());
        assert!(!Type::Ptr.is_int());
        assert!(Type::Ptr.is_ptr());
        assert!(Type::Bool.is_bool());
        assert!(Type::I8.is_value());
        assert!(!Type::Void.is_value());
    }

    #[test]
    fn display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Bool.to_string(), "i1");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
