//! A convenience builder for constructing IR functions.
//!
//! The frontend lowering, the corpus programs, and many tests construct IR
//! directly; the builder keeps that code short by tracking a current
//! insertion block and an origin that is attached to every emitted
//! instruction.

use crate::function::{Function, Param};
use crate::inst::{BinOp, CmpPred, Inst, InstKind, Terminator};
use crate::origin::Origin;
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};

/// Builder over a [`Function`] with a current insertion point.
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    origin: Origin,
}

impl FunctionBuilder {
    /// Start building a function; the insertion point is the entry block.
    pub fn new(name: &str, params: Vec<Param>, ret_ty: Type) -> FunctionBuilder {
        let func = Function::new(name, params, ret_ty);
        let current = func.entry();
        FunctionBuilder {
            func,
            current,
            origin: Origin::unknown(),
        }
    }

    /// Shorthand for declaring parameters from `(name, type)` pairs.
    pub fn with_params(name: &str, params: &[(&str, Type)], ret_ty: Type) -> FunctionBuilder {
        let params = params
            .iter()
            .map(|(n, t)| Param {
                name: (*n).to_string(),
                ty: *t,
            })
            .collect();
        FunctionBuilder::new(name, params, ret_ty)
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Borrow the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutably borrow the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Set the origin attached to subsequently emitted instructions.
    pub fn set_origin(&mut self, origin: Origin) {
        self.origin = origin;
    }

    /// Current origin.
    pub fn origin(&self) -> Origin {
        self.origin.clone()
    }

    /// Create a new block.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(Some(name.to_string()))
    }

    /// Move the insertion point to a block.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The `n`-th parameter as an operand.
    pub fn param(&self, index: u32) -> Operand {
        Operand::Param(index)
    }

    /// Emit an instruction at the insertion point.
    pub fn emit(&mut self, kind: InstKind, ty: Type) -> InstId {
        let inst = Inst::new(kind, ty, self.origin.clone());
        self.func.push_inst(self.current, inst)
    }

    /// Emit an instruction with a source-level name.
    pub fn emit_named(&mut self, kind: InstKind, ty: Type, name: &str) -> InstId {
        let inst = Inst::new(kind, ty, self.origin.clone()).with_name(name);
        self.func.push_inst(self.current, inst)
    }

    // ---- Arithmetic ---------------------------------------------------------

    /// Binary operation; the result type is the type of `lhs`.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        let ty = self.func.operand_type(lhs);
        Operand::Inst(self.emit(InstKind::Bin { op, lhs, rhs }, ty))
    }

    /// Binary operation on signed operands: overflow is undefined behavior
    /// (the `nsw` flag is set for the UB-condition inserter).
    pub fn bin_nsw(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        let ty = self.func.operand_type(lhs);
        let inst = Inst::new(InstKind::Bin { op, lhs, rhs }, ty, self.origin.clone()).with_nsw();
        Operand::Inst(self.func.push_inst(self.current, inst))
    }

    /// Signed addition (`nsw`).
    pub fn add_nsw(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin_nsw(BinOp::Add, lhs, rhs)
    }

    /// Signed negation (`0 - x`, `nsw`).
    pub fn neg_nsw(&mut self, value: Operand) -> Operand {
        let ty = self.func.operand_type(value);
        let zero = Operand::int(ty, 0);
        self.bin_nsw(BinOp::Sub, zero, value)
    }

    /// Addition.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Subtraction.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Multiplication.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Signed division.
    pub fn sdiv(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::SDiv, lhs, rhs)
    }

    /// Signed remainder.
    pub fn srem(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::SRem, lhs, rhs)
    }

    /// Left shift.
    pub fn shl(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Shl, lhs, rhs)
    }

    /// Two's-complement negation (`0 - x`).
    pub fn neg(&mut self, value: Operand) -> Operand {
        let ty = self.func.operand_type(value);
        let zero = Operand::int(ty, 0);
        self.bin(BinOp::Sub, zero, value)
    }

    /// Comparison; the result type is `Bool`.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Operand, rhs: Operand) -> Operand {
        Operand::Inst(self.emit(InstKind::Cmp { pred, lhs, rhs }, Type::Bool))
    }

    /// Comparison, with a source name attached (e.g. the original C check).
    pub fn cmp_named(&mut self, pred: CmpPred, lhs: Operand, rhs: Operand, name: &str) -> Operand {
        Operand::Inst(self.emit_named(InstKind::Cmp { pred, lhs, rhs }, Type::Bool, name))
    }

    /// Equality against the null pointer (`!p` in C).
    pub fn is_null(&mut self, ptr: Operand) -> Operand {
        self.cmp(CmpPred::Eq, ptr, Operand::null())
    }

    // ---- Memory -------------------------------------------------------------

    /// Pointer arithmetic with byte scaling.
    pub fn ptr_add(&mut self, ptr: Operand, offset: Operand, elem_size: u64) -> Operand {
        Operand::Inst(self.emit(
            InstKind::PtrAdd {
                ptr,
                offset,
                elem_size,
                bound: None,
            },
            Type::Ptr,
        ))
    }

    /// Pointer arithmetic into an array with a known element count.
    pub fn ptr_add_bounded(
        &mut self,
        ptr: Operand,
        offset: Operand,
        elem_size: u64,
        bound: u64,
    ) -> Operand {
        Operand::Inst(self.emit(
            InstKind::PtrAdd {
                ptr,
                offset,
                elem_size,
                bound: Some(bound),
            },
            Type::Ptr,
        ))
    }

    /// Load through a pointer.
    pub fn load(&mut self, ptr: Operand, ty: Type) -> Operand {
        Operand::Inst(self.emit(InstKind::Load { ptr, ty }, ty))
    }

    /// Load with a source-level name.
    pub fn load_named(&mut self, ptr: Operand, ty: Type, name: &str) -> Operand {
        Operand::Inst(self.emit_named(InstKind::Load { ptr, ty }, ty, name))
    }

    /// Store through a pointer.
    pub fn store(&mut self, ptr: Operand, value: Operand) {
        self.emit(InstKind::Store { ptr, value }, Type::Void);
    }

    /// Stack allocation.
    pub fn alloca(&mut self, elem_ty: Type, count: u64) -> Operand {
        Operand::Inst(self.emit(InstKind::Alloca { elem_ty, count }, Type::Ptr))
    }

    // ---- Calls and conversions ------------------------------------------------

    /// Call a named function.
    pub fn call(&mut self, callee: &str, args: &[Operand], ty: Type) -> Operand {
        let id = self.emit(
            InstKind::Call {
                callee: callee.to_string(),
                args: args.to_vec(),
                ty,
            },
            ty,
        );
        Operand::Inst(id)
    }

    /// Select (`cond ? a : b`).
    pub fn select(&mut self, cond: Operand, then: Operand, els: Operand) -> Operand {
        let ty = self.func.operand_type(then);
        Operand::Inst(self.emit(InstKind::Select { cond, then, els }, ty))
    }

    /// Zero-extension.
    pub fn zext(&mut self, value: Operand, to: Type) -> Operand {
        Operand::Inst(self.emit(InstKind::ZExt { value, to }, to))
    }

    /// Sign-extension.
    pub fn sext(&mut self, value: Operand, to: Type) -> Operand {
        Operand::Inst(self.emit(InstKind::SExt { value, to }, to))
    }

    /// Truncation.
    pub fn trunc(&mut self, value: Operand, to: Type) -> Operand {
        Operand::Inst(self.emit(InstKind::Trunc { value, to }, to))
    }

    /// Phi node.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Operand)>) -> Operand {
        Operand::Inst(self.emit(InstKind::Phi { incomings }, ty))
    }

    // ---- Terminators ------------------------------------------------------------

    /// Unconditional branch; leaves the insertion point unchanged.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.current).terminator = Terminator::Br { target };
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.current).terminator = Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        };
    }

    /// Return a value.
    pub fn ret(&mut self, value: Operand) {
        self.func.block_mut(self.current).terminator = Terminator::Ret { value: Some(value) };
    }

    /// Return without a value.
    pub fn ret_void(&mut self) {
        self.func.block_mut(self.current).terminator = Terminator::Ret { value: None };
    }

    /// Mark the current block as unreachable.
    pub fn unreachable(&mut self) {
        self.func.block_mut(self.current).terminator = Terminator::Unreachable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::SourceLoc;

    #[test]
    fn build_figure1_pointer_check() {
        // The Figure 1 idiom: if (buf + len < buf) return;
        let mut b = FunctionBuilder::with_params(
            "check",
            &[("buf", Type::Ptr), ("len", Type::I32)],
            Type::I32,
        );
        b.set_origin(Origin::programmer(SourceLoc::new("fig1.c", 5, 3)));
        let buf = b.param(0);
        let len = b.param(1);
        let len64 = b.zext(len, Type::I64);
        let end = b.ptr_add(buf, len64, 1);
        let wrapped = b.cmp(CmpPred::Ult, end, buf);
        let then_bb = b.add_block("overflow");
        let else_bb = b.add_block("ok");
        b.cond_br(wrapped, then_bb, else_bb);
        b.switch_to(then_bb);
        b.ret(Operand::int(Type::I32, -1));
        b.switch_to(else_bb);
        b.ret(Operand::int(Type::I32, 0));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_live_insts(), 3);
        assert_eq!(f.block(f.entry()).terminator.successors().len(), 2);
        // Every instruction carries the programmer origin we set.
        for (_, i) in f.all_insts() {
            assert!(f.inst(i).origin.is_programmer_written());
            assert_eq!(f.inst(i).origin.loc.file, "fig1.c");
        }
    }

    #[test]
    fn builder_helpers_produce_expected_types() {
        let mut b = FunctionBuilder::with_params("t", &[("x", Type::I32)], Type::Void);
        let x = b.param(0);
        let c = Operand::int(Type::I32, 3);
        let sum = b.add(x, c);
        assert_eq!(b.func().operand_type(sum), Type::I32);
        let cmp = b.cmp(CmpPred::Slt, sum, x);
        assert_eq!(b.func().operand_type(cmp), Type::Bool);
        let p = b.alloca(Type::I32, 4);
        assert_eq!(b.func().operand_type(p), Type::Ptr);
        let v = b.load(p, Type::I32);
        assert_eq!(b.func().operand_type(v), Type::I32);
        b.store(p, sum);
        let neg = b.neg(x);
        assert_eq!(b.func().operand_type(neg), Type::I32);
        let wide = b.sext(x, Type::I64);
        assert_eq!(b.func().operand_type(wide), Type::I64);
        let abs = b.call("abs", &[x], Type::I32);
        assert_eq!(b.func().operand_type(abs), Type::I32);
        b.ret_void();
        let f = b.finish();
        assert!(matches!(
            f.block(f.entry()).terminator,
            Terminator::Ret { value: None }
        ));
    }
}
