//! Functions, basic blocks, and the instruction arena.

use crate::inst::{Inst, InstKind, Terminator};
use crate::origin::Origin;
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};

/// A basic block: a list of instructions ending in a terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Optional label carried from the source or the builder.
    pub name: Option<String>,
    /// Instructions in execution order (indices into the function arena).
    pub insts: Vec<InstId>,
    /// The terminator. Blocks under construction temporarily hold
    /// `Terminator::Unreachable`.
    pub terminator: Terminator,
}

impl Block {
    /// Create an empty block.
    pub fn new(name: Option<String>) -> Block {
        Block {
            name,
            insts: Vec::new(),
            terminator: Terminator::Unreachable,
        }
    }
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// A function: parameters, a return type, blocks, and the instruction arena.
#[derive(Clone, Debug)]
pub struct Function {
    pub name: String,
    pub params: Vec<Param>,
    pub ret_ty: Type,
    /// Instruction arena. Instructions removed by the optimizer stay in the
    /// arena but disappear from their block's `insts` list.
    insts: Vec<Inst>,
    /// Basic blocks; `BlockId(0)` is the entry block.
    blocks: Vec<Block>,
}

impl Function {
    /// Create a function with a single empty entry block.
    pub fn new(name: &str, params: Vec<Param>, ret_ty: Type) -> Function {
        Function {
            name: name.to_string(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: vec![Block::new(Some("entry".to_string()))],
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Ids of all blocks, in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instruction slots in the arena (including removed ones).
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently attached to blocks.
    pub fn num_live_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Append a new empty block.
    pub fn add_block(&mut self, name: Option<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Borrow a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutably borrow a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Borrow an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutably borrow an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Append an instruction to the end of a block.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Insert an instruction into a block at the given position.
    pub fn insert_inst(&mut self, block: BlockId, index: usize, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[block.index()].insts.insert(index, id);
        id
    }

    /// Result type of an operand.
    pub fn operand_type(&self, op: Operand) -> Type {
        match op {
            Operand::Const(c) => c.ty,
            Operand::Param(i) => self.params[i as usize].ty,
            Operand::Inst(id) => self.inst(id).ty,
        }
    }

    /// The block that contains an instruction, if it is still attached.
    pub fn block_of(&self, inst: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|&id| self.block(id).insts.contains(&inst))
    }

    /// Position of an instruction within its block.
    pub fn position_in_block(&self, inst: InstId) -> Option<(BlockId, usize)> {
        for id in self.block_ids() {
            if let Some(pos) = self.block(id).insts.iter().position(|&i| i == inst) {
                return Some((id, pos));
            }
        }
        None
    }

    /// Iterate `(BlockId, InstId)` over all attached instructions in block
    /// order.
    pub fn all_insts(&self) -> Vec<(BlockId, InstId)> {
        let mut out = Vec::new();
        for b in self.block_ids() {
            for &i in &self.block(b).insts {
                out.push((b, i));
            }
        }
        out
    }

    /// Replace every use of `from` with `to` across all instructions and
    /// terminators.
    pub fn replace_all_uses(&mut self, from: Operand, to: Operand) {
        for inst in self.insts.iter_mut() {
            inst.kind
                .map_operands(|op| if op == from { to } else { op });
        }
        for block in self.blocks.iter_mut() {
            block
                .terminator
                .map_operands(|op| if op == from { to } else { op });
        }
    }

    /// Remove an instruction from its block (the arena slot is retained so
    /// existing `InstId`s stay valid).
    pub fn remove_inst(&mut self, inst: InstId) {
        for block in self.blocks.iter_mut() {
            block.insts.retain(|&i| i != inst);
        }
    }

    /// Add a `bug_on` marker before the instruction at `(block, index)`.
    /// Returns the id of the new marker. Used by the UB-condition insertion
    /// stage of the checker.
    pub fn insert_bug_on(
        &mut self,
        block: BlockId,
        index: usize,
        cond: Operand,
        label: &str,
        origin: Origin,
    ) -> InstId {
        let inst = Inst::new(
            InstKind::BugOn {
                cond,
                label: label.to_string(),
            },
            Type::Void,
            origin,
        );
        self.insert_inst(block, index, inst)
    }

    /// Whether the function still contains a `bug_on` marker (used by tests).
    pub fn has_bug_on(&self) -> bool {
        self.all_insts()
            .iter()
            .any(|&(_, i)| matches!(self.inst(i).kind, InstKind::BugOn { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;
    use crate::origin::Origin;

    fn sample_function() -> Function {
        let mut f = Function::new(
            "f",
            vec![Param {
                name: "x".to_string(),
                ty: Type::I32,
            }],
            Type::I32,
        );
        let entry = f.entry();
        let add = f.push_inst(
            entry,
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Param(0),
                    rhs: Operand::int(Type::I32, 100),
                },
                Type::I32,
                Origin::unknown(),
            ),
        );
        f.block_mut(entry).terminator = Terminator::Ret {
            value: Some(Operand::Inst(add)),
        };
        f
    }

    #[test]
    fn build_and_query() {
        let f = sample_function();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_live_insts(), 1);
        let (b, i) = f.all_insts()[0];
        assert_eq!(b, f.entry());
        assert_eq!(f.operand_type(Operand::Inst(i)), Type::I32);
        assert_eq!(f.operand_type(Operand::Param(0)), Type::I32);
        assert_eq!(f.block_of(i), Some(f.entry()));
        assert_eq!(f.position_in_block(i), Some((f.entry(), 0)));
    }

    #[test]
    fn replace_uses_and_remove() {
        let mut f = sample_function();
        let (_, add) = f.all_insts()[0];
        // Replace the parameter with a constant everywhere.
        f.replace_all_uses(Operand::Param(0), Operand::int(Type::I32, 1));
        assert_eq!(f.inst(add).kind.operands()[0], Operand::int(Type::I32, 1));
        f.remove_inst(add);
        assert_eq!(f.num_live_insts(), 0);
        assert_eq!(f.block_of(add), None);
        // The arena still holds the instruction.
        assert_eq!(f.num_inst_slots(), 1);
    }

    #[test]
    fn bug_on_insertion() {
        let mut f = sample_function();
        assert!(!f.has_bug_on());
        let entry = f.entry();
        f.insert_bug_on(
            entry,
            0,
            Operand::bool(false),
            "signed integer overflow",
            Origin::unknown(),
        );
        assert!(f.has_bug_on());
        assert_eq!(f.block(entry).insts.len(), 2);
        // The marker sits before the add.
        let first = f.block(entry).insts[0];
        assert!(matches!(f.inst(first).kind, InstKind::BugOn { .. }));
    }

    #[test]
    fn multiple_blocks() {
        let mut f = sample_function();
        let second = f.add_block(Some("next".to_string()));
        assert_eq!(second, BlockId(1));
        assert_eq!(f.num_blocks(), 2);
        f.block_mut(f.entry()).terminator = Terminator::Br { target: second };
        f.block_mut(second).terminator = Terminator::Ret { value: None };
        assert_eq!(f.block(f.entry()).terminator.successors(), vec![second]);
    }
}
