//! Textual rendering of the IR, for debugging, reports, and golden tests.

use crate::function::Function;
use crate::inst::{InstKind, Terminator};
use crate::module::Module;
use crate::value::InstId;
use std::fmt::Write;

/// Render a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", module.name);
    for func in module.functions() {
        out.push_str(&print_function(func));
        out.push('\n');
    }
    out
}

/// Render a single function.
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{} %arg{}<{}>", p.ty, i, p.name))
        .collect();
    let _ = writeln!(
        out,
        "define {} @{}({}) {{",
        func.ret_ty,
        func.name,
        params.join(", ")
    );
    for b in func.block_ids() {
        let block = func.block(b);
        let label = block.name.clone().unwrap_or_else(|| format!("{b}"));
        let _ = writeln!(out, "{b}: ; {label}");
        for &i in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(func, i));
        }
        let _ = writeln!(out, "  {}", print_terminator(&block.terminator));
    }
    out.push_str("}\n");
    out
}

/// Render one instruction.
pub fn print_inst(func: &Function, id: InstId) -> String {
    let inst = func.inst(id);
    let name_suffix = inst
        .name
        .as_ref()
        .map(|n| format!(" ; {n}"))
        .unwrap_or_default();
    let body = match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            format!("{id} = {} {} {lhs}, {rhs}", op.mnemonic(), inst.ty)
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            format!("{id} = icmp {} {lhs}, {rhs}", pred.mnemonic())
        }
        InstKind::PtrAdd {
            ptr,
            offset,
            elem_size,
            bound,
        } => {
            let bound_str = bound.map(|b| format!(", bound {b}")).unwrap_or_default();
            format!("{id} = ptradd {ptr}, {offset}, size {elem_size}{bound_str}")
        }
        InstKind::Load { ptr, ty } => format!("{id} = load {ty}, {ptr}"),
        InstKind::Store { ptr, value } => format!("store {value}, {ptr}"),
        InstKind::Alloca { elem_ty, count } => format!("{id} = alloca {elem_ty} x {count}"),
        InstKind::Call { callee, args, ty } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("{id} = call {ty} @{callee}({})", args.join(", "))
        }
        InstKind::Select { cond, then, els } => {
            format!("{id} = select {cond}, {then}, {els}")
        }
        InstKind::ZExt { value, to } => format!("{id} = zext {value} to {to}"),
        InstKind::SExt { value, to } => format!("{id} = sext {value} to {to}"),
        InstKind::Trunc { value, to } => format!("{id} = trunc {value} to {to}"),
        InstKind::PtrToInt { value } => format!("{id} = ptrtoint {value}"),
        InstKind::IntToPtr { value } => format!("{id} = inttoptr {value}"),
        InstKind::Phi { incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, op)| format!("[{op}, {b}]"))
                .collect();
            format!("{id} = phi {} {}", inst.ty, inc.join(", "))
        }
        InstKind::BugOn { cond, label } => format!("bug_on {cond} ; {label}"),
    };
    format!("{body}{name_suffix}")
}

/// Render a terminator.
pub fn print_terminator(term: &Terminator) -> String {
    match term {
        Terminator::Br { target } => format!("br {target}"),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("br {cond}, {then_bb}, {else_bb}"),
        Terminator::Ret { value: Some(v) } => format!("ret {v}"),
        Terminator::Ret { value: None } => "ret void".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpPred;
    use crate::types::Type;
    use crate::value::Operand;

    #[test]
    fn printing_is_stable_and_complete() {
        let mut b =
            FunctionBuilder::with_params("f", &[("p", Type::Ptr), ("x", Type::I32)], Type::I32);
        let p = b.param(0);
        let x = b.param(1);
        let deref = b.load_named(p, Type::I32, "p_value");
        let sum = b.add(x, Operand::int(Type::I32, 100));
        let cmp = b.cmp(CmpPred::Slt, sum, x);
        let sel = b.select(cmp, deref, sum);
        let abs = b.call("abs", &[sel], Type::I32);
        b.ret(abs);
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("define i32 @f(ptr %arg0<p>, i32 %arg1<x>)"));
        assert!(text.contains("load i32"));
        assert!(text.contains("; p_value"));
        assert!(text.contains("add i32"));
        assert!(text.contains("icmp slt"));
        assert!(text.contains("select"));
        assert!(text.contains("call i32 @abs"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn module_printing() {
        let mut m = Module::new("unit.c");
        let mut b = FunctionBuilder::with_params("g", &[], Type::Void);
        b.ret_void();
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("; module unit.c"));
        assert!(text.contains("define void @g()"));
        assert!(text.contains("ret void"));
    }

    #[test]
    fn terminator_rendering() {
        use crate::value::BlockId;
        assert_eq!(
            print_terminator(&Terminator::Br { target: BlockId(2) }),
            "br bb2"
        );
        assert_eq!(print_terminator(&Terminator::Unreachable), "unreachable");
        assert_eq!(
            print_terminator(&Terminator::Ret { value: None }),
            "ret void"
        );
    }
}
