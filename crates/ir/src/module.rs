//! Modules: collections of functions produced from one translation unit.

use crate::function::Function;

/// A module, corresponding to a single source file after lowering.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Name of the module (usually the source file name).
    pub name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: &str) -> Module {
        Module {
            name: name.to_string(),
            functions: Vec::new(),
        }
    }

    /// Add a function and return its index.
    pub fn add_function(&mut self, func: Function) -> usize {
        self.functions.push(func);
        self.functions.len() - 1
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All functions, mutably.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total number of live instructions across all functions (a rough code
    /// size metric used by the performance experiment).
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_live_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Param;
    use crate::types::Type;

    #[test]
    fn module_management() {
        let mut m = Module::new("test.c");
        assert!(m.is_empty());
        m.add_function(Function::new("f", vec![], Type::Void));
        m.add_function(Function::new(
            "g",
            vec![Param {
                name: "x".into(),
                ty: Type::I32,
            }],
            Type::I32,
        ));
        assert_eq!(m.len(), 2);
        assert!(m.function("f").is_some());
        assert!(m.function("h").is_none());
        assert_eq!(m.function("g").unwrap().params.len(), 1);
        m.function_mut("g").unwrap().name = "g2".to_string();
        assert!(m.function("g2").is_some());
        assert_eq!(m.total_insts(), 0);
    }
}
