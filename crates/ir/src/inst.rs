//! Instructions and terminators.

use crate::origin::Origin;
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};
use std::fmt;

/// Binary integer operators. Signedness is explicit where it matters,
/// following LLVM's convention.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BinOp {
    /// Whether the operator is a division or remainder (division-by-zero UB).
    pub fn is_division(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }

    /// Whether the operator is a shift (oversized-shift UB).
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::LShr | BinOp::AShr)
    }

    /// Whether signed overflow of this operator is undefined behavior when
    /// applied to signed operands (`+`, `-`, `*`, signed `/` and `%`).
    pub fn can_overflow_signed(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::SDiv | BinOp::SRem
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }
}

/// Comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpPred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl CmpPred {
    /// The predicate with operands swapped (`a < b` becomes `b > a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Ult => CmpPred::Ugt,
            CmpPred::Ule => CmpPred::Uge,
            CmpPred::Ugt => CmpPred::Ult,
            CmpPred::Uge => CmpPred::Ule,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
        }
    }

    /// The logical negation of the predicate (`<` becomes `>=`).
    pub fn negated(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
        }
    }

    /// Whether the predicate compares with signed ordering.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            CmpPred::Slt | CmpPred::Sle | CmpPred::Sgt | CmpPred::Sge
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
        }
    }
}

/// The operation performed by an instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum InstKind {
    /// Binary integer arithmetic / bitwise operation.
    Bin {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Integer or pointer comparison producing a `Bool`.
    Cmp {
        pred: CmpPred,
        lhs: Operand,
        rhs: Operand,
    },
    /// Pointer arithmetic: `ptr + offset * elem_size` (byte-scaled). If the
    /// base pointer is a declared array of known length, `bound` carries the
    /// element count so the buffer-overflow UB condition can be emitted.
    PtrAdd {
        ptr: Operand,
        offset: Operand,
        elem_size: u64,
        bound: Option<u64>,
    },
    /// Load a value of type `ty` through a pointer.
    Load { ptr: Operand, ty: Type },
    /// Store `value` through a pointer.
    Store { ptr: Operand, value: Operand },
    /// Stack allocation of `count` elements of `elem_ty`; yields a pointer.
    Alloca { elem_ty: Type, count: u64 },
    /// Call a named function. Library functions with undefined-behavior
    /// contracts (`abs`, `memcpy`, `free`, `realloc`, ...) are recognized by
    /// name during UB-condition insertion.
    Call {
        callee: String,
        args: Vec<Operand>,
        ty: Type,
    },
    /// `cond ? then : els`.
    Select {
        cond: Operand,
        then: Operand,
        els: Operand,
    },
    /// Zero-extend an integer to a wider type.
    ZExt { value: Operand, to: Type },
    /// Sign-extend an integer to a wider type.
    SExt { value: Operand, to: Type },
    /// Truncate an integer to a narrower type.
    Trunc { value: Operand, to: Type },
    /// Convert a pointer to an integer of the pointer width (used when the
    /// frontend compares pointers arithmetically).
    PtrToInt { value: Operand },
    /// Convert an integer to a pointer.
    IntToPtr { value: Operand },
    /// SSA phi node: one incoming operand per predecessor block.
    Phi { incomings: Vec<(BlockId, Operand)> },
    /// The checker's UB-condition marker: `bug_on(cond)` asserts that if this
    /// program point is reached and `cond` holds, undefined behavior occurs
    /// (paper §4.3). `label` names the kind of UB for reports.
    BugOn { cond: Operand, label: String },
}

impl InstKind {
    /// Operands read by this instruction, in a fixed order.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::PtrAdd { ptr, offset, .. } => vec![*ptr, *offset],
            InstKind::Load { ptr, .. } => vec![*ptr],
            InstKind::Store { ptr, value } => vec![*ptr, *value],
            InstKind::Alloca { .. } => vec![],
            InstKind::Call { args, .. } => args.clone(),
            InstKind::Select { cond, then, els } => vec![*cond, *then, *els],
            InstKind::ZExt { value, .. }
            | InstKind::SExt { value, .. }
            | InstKind::Trunc { value, .. }
            | InstKind::PtrToInt { value }
            | InstKind::IntToPtr { value } => vec![*value],
            InstKind::Phi { incomings } => incomings.iter().map(|(_, op)| *op).collect(),
            InstKind::BugOn { cond, .. } => vec![*cond],
        }
    }

    /// Rewrite every operand through `f` (used by the optimizer when
    /// replacing values).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstKind::PtrAdd { ptr, offset, .. } => {
                *ptr = f(*ptr);
                *offset = f(*offset);
            }
            InstKind::Load { ptr, .. } => *ptr = f(*ptr),
            InstKind::Store { ptr, value } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            InstKind::Alloca { .. } => {}
            InstKind::Call { args, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
            InstKind::Select { cond, then, els } => {
                *cond = f(*cond);
                *then = f(*then);
                *els = f(*els);
            }
            InstKind::ZExt { value, .. }
            | InstKind::SExt { value, .. }
            | InstKind::Trunc { value, .. }
            | InstKind::PtrToInt { value }
            | InstKind::IntToPtr { value } => *value = f(*value),
            InstKind::Phi { incomings } => {
                for (_, op) in incomings.iter_mut() {
                    *op = f(*op);
                }
            }
            InstKind::BugOn { cond, .. } => *cond = f(*cond),
        }
    }

    /// Whether this instruction has a side effect and must not be removed by
    /// dead-code elimination even if its result is unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. } | InstKind::Call { .. } | InstKind::BugOn { .. }
        )
    }

    /// Whether this is a memory access (used for the null-dereference UB
    /// condition).
    pub fn is_memory_access(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. })
    }
}

/// An instruction: an operation, its result type, and its origin.
#[derive(Clone, Debug)]
pub struct Inst {
    pub kind: InstKind,
    pub ty: Type,
    pub origin: Origin,
    /// Optional name carried from the source program, for readable reports
    /// (e.g. the C variable a value was loaded from).
    pub name: Option<String>,
    /// "No signed wrap": set on `add`/`sub`/`mul` lowered from *signed* C
    /// arithmetic, where overflow is undefined behavior (like LLVM's `nsw`
    /// flag). Unsigned arithmetic wraps and carries no UB condition.
    pub nsw: bool,
}

impl Inst {
    /// Create an instruction.
    pub fn new(kind: InstKind, ty: Type, origin: Origin) -> Inst {
        Inst {
            kind,
            ty,
            origin,
            name: None,
            nsw: false,
        }
    }

    /// Mark the instruction as signed arithmetic whose overflow is UB.
    pub fn with_nsw(mut self) -> Inst {
        self.nsw = true;
        self
    }

    /// Attach a source-level name.
    pub fn with_name(mut self, name: &str) -> Inst {
        self.name = Some(name.to_string());
        self
    }
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch on a boolean operand.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret { value: Option<Operand> },
    /// Control can never reach here.
    Unreachable,
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// Operands read by the terminator.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret { value: Some(v) } => vec![*v],
            _ => vec![],
        }
    }

    /// Rewrite the operands of the terminator.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Terminator::CondBr { cond, .. } => *cond = f(*cond),
            Terminator::Ret { value: Some(v) } => *v = f(*v),
            _ => {}
        }
    }

    /// Rewrite successor block ids (used by CFG simplification).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br { target } => *target = f(*target),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            _ => {}
        }
    }
}

/// Reference to a value-producing program point used in reports: an
/// instruction or a terminator of a block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProgramPoint {
    Inst(InstId),
    Terminator(BlockId),
}

impl fmt::Display for ProgramPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramPoint::Inst(id) => write!(f, "{id}"),
            ProgramPoint::Terminator(b) => write!(f, "term({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::SDiv.is_division());
        assert!(BinOp::URem.is_division());
        assert!(!BinOp::Add.is_division());
        assert!(BinOp::Shl.is_shift());
        assert!(!BinOp::And.is_shift());
        assert!(BinOp::Add.can_overflow_signed());
        assert!(BinOp::Mul.can_overflow_signed());
        assert!(!BinOp::Xor.can_overflow_signed());
        assert_eq!(BinOp::AShr.mnemonic(), "ashr");
    }

    #[test]
    fn cmp_negation_and_swap() {
        assert_eq!(CmpPred::Slt.negated(), CmpPred::Sge);
        assert_eq!(CmpPred::Eq.negated(), CmpPred::Ne);
        assert_eq!(CmpPred::Ult.swapped(), CmpPred::Ugt);
        assert_eq!(CmpPred::Eq.swapped(), CmpPred::Eq);
        assert!(CmpPred::Sgt.is_signed());
        assert!(!CmpPred::Ugt.is_signed());
        // Negation is an involution.
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Ult,
            CmpPred::Ule,
            CmpPred::Ugt,
            CmpPred::Uge,
            CmpPred::Slt,
            CmpPred::Sle,
            CmpPred::Sgt,
            CmpPred::Sge,
        ] {
            assert_eq!(p.negated().negated(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn operand_traversal() {
        let lhs = Operand::Param(0);
        let rhs = Operand::int(Type::I32, 100);
        let mut kind = InstKind::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        };
        assert_eq!(kind.operands(), vec![lhs, rhs]);
        kind.map_operands(|op| {
            if op == lhs {
                Operand::int(Type::I32, 7)
            } else {
                op
            }
        });
        assert_eq!(kind.operands()[0], Operand::int(Type::I32, 7));
        assert!(!kind.has_side_effects());
        let store = InstKind::Store {
            ptr: Operand::Param(0),
            value: rhs,
        };
        assert!(store.has_side_effects());
        assert!(store.is_memory_access());
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br { target: BlockId(1) };
        assert_eq!(br.successors(), vec![BlockId(1)]);
        let cbr = Terminator::CondBr {
            cond: Operand::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cbr.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(cbr.operands().len(), 1);
        let ret = Terminator::Ret { value: None };
        assert!(ret.successors().is_empty());
        let mut retargeted = cbr.clone();
        retargeted.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(retargeted.successors(), vec![BlockId(11), BlockId(12)]);
    }
}
