//! IR well-formedness checks.
//!
//! The verifier catches malformed IR early: dangling references, type
//! mismatches, phi nodes inconsistent with predecessors, and uses that are
//! not dominated by their definitions. The frontend, the optimizer, and the
//! corpus generators all run it in tests.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::inst::{InstKind, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};
use std::collections::HashMap;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.function, self.message)
    }
}

/// Verify a whole module.
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for func in module.functions() {
        if let Err(mut e) = verify_function(func) {
            errors.append(&mut e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verify a single function.
pub fn verify_function(func: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    macro_rules! err {
        ($($arg:tt)*) => {
            errors.push(VerifyError {
                function: func.name.clone(),
                message: format!($($arg)*),
            })
        };
    }

    let num_blocks = func.num_blocks() as u32;
    let valid_block = |b: BlockId| b.0 < num_blocks;

    // Block-level structural checks.
    for b in func.block_ids() {
        let block = func.block(b);
        for target in block.terminator.successors() {
            if !valid_block(target) {
                err!("{b} branches to non-existent block {target}");
            }
        }
        if let Terminator::Ret { value } = &block.terminator {
            match (value, func.ret_ty) {
                (Some(_), Type::Void) => err!("{b} returns a value from a void function"),
                (None, ty) if ty != Type::Void => {
                    err!("{b} returns void from a {ty} function");
                }
                (Some(v), ty) => {
                    let vt = func.operand_type(*v);
                    if vt != ty {
                        err!("{b} returns {vt}, function declares {ty}");
                    }
                }
                _ => {}
            }
        }
    }

    // Map from instruction to its defining block for dominance checking.
    let mut def_block: HashMap<InstId, BlockId> = HashMap::new();
    for (b, i) in func.all_insts() {
        if def_block.insert(i, b).is_some() {
            err!("instruction {i} appears in more than one block");
        }
    }

    let cfg = Cfg::compute(func);
    let dt = DomTree::compute(func, &cfg);

    // Operand checks.
    let check_operand = |op: Operand,
                         user_block: BlockId,
                         user_pos: usize,
                         is_phi: bool,
                         errors: &mut Vec<VerifyError>| {
        if let Operand::Inst(def) = op {
            match def_block.get(&def) {
                None => errors.push(VerifyError {
                    function: func.name.clone(),
                    message: format!("use of detached instruction {def}"),
                }),
                Some(&db) => {
                    if is_phi {
                        // Phi operands are checked against their incoming edge
                        // rather than the phi's own position.
                        return;
                    }
                    if !cfg.is_reachable(user_block) {
                        return;
                    }
                    if db == user_block {
                        let def_pos = func
                            .block(db)
                            .insts
                            .iter()
                            .position(|&i| i == def)
                            .unwrap_or(usize::MAX);
                        if def_pos >= user_pos {
                            errors.push(VerifyError {
                                function: func.name.clone(),
                                message: format!(
                                    "{def} used at {user_block}[{user_pos}] before its definition"
                                ),
                            });
                        }
                    } else if !dt.dominates(db, user_block) {
                        errors.push(VerifyError {
                            function: func.name.clone(),
                            message: format!(
                                "use of {def} in {user_block} is not dominated by its definition in {db}"
                            ),
                        });
                    }
                }
            }
        } else if let Operand::Param(i) = op {
            if i as usize >= func.params.len() {
                errors.push(VerifyError {
                    function: func.name.clone(),
                    message: format!("reference to non-existent parameter {i}"),
                });
            }
        }
    };

    for b in func.block_ids() {
        let block = func.block(b);
        for (pos, &i) in block.insts.iter().enumerate() {
            let inst = func.inst(i);
            let is_phi = matches!(inst.kind, InstKind::Phi { .. });
            for op in inst.kind.operands() {
                check_operand(op, b, pos, is_phi, &mut errors);
            }
            // Type checks for a few common shapes.
            match &inst.kind {
                InstKind::Bin { lhs, rhs, .. } => {
                    let lt = func.operand_type(*lhs);
                    let rt = func.operand_type(*rhs);
                    if lt != rt {
                        err!("{i}: binary operands have different types ({lt} vs {rt})");
                    }
                    if !lt.is_int() && !lt.is_bool() {
                        err!("{i}: binary operation on non-integer type {lt}");
                    }
                }
                InstKind::Cmp { lhs, rhs, .. } => {
                    let lt = func.operand_type(*lhs);
                    let rt = func.operand_type(*rhs);
                    if lt != rt {
                        err!("{i}: comparison operands differ ({lt} vs {rt})");
                    }
                    if inst.ty != Type::Bool {
                        err!("{i}: comparison must produce i1");
                    }
                }
                InstKind::Load { ptr, .. } | InstKind::Store { ptr, .. }
                    if func.operand_type(*ptr) != Type::Ptr =>
                {
                    err!("{i}: memory access through non-pointer");
                }
                InstKind::PtrAdd { ptr, offset, .. } => {
                    if func.operand_type(*ptr) != Type::Ptr {
                        err!("{i}: ptradd base is not a pointer");
                    }
                    if !func.operand_type(*offset).is_int() {
                        err!("{i}: ptradd offset is not an integer");
                    }
                }
                InstKind::ZExt { value, to } | InstKind::SExt { value, to } => {
                    let from = func.operand_type(*value);
                    if from.bit_width() > to.bit_width() {
                        err!("{i}: extension narrows {from} to {to}");
                    }
                }
                InstKind::Trunc { value, to } => {
                    let from = func.operand_type(*value);
                    if from.bit_width() < to.bit_width() {
                        err!("{i}: truncation widens {from} to {to}");
                    }
                }
                InstKind::Phi { incomings } => {
                    let preds = cfg.preds(b);
                    if cfg.is_reachable(b) && incomings.len() != preds.len() {
                        err!(
                            "{i}: phi has {} incomings but block has {} predecessors",
                            incomings.len(),
                            preds.len()
                        );
                    }
                    for (pb, _) in incomings {
                        if cfg.is_reachable(b) && !preds.contains(pb) {
                            err!("{i}: phi incoming from non-predecessor {pb}");
                        }
                    }
                }
                InstKind::BugOn { cond, .. } if func.operand_type(*cond) != Type::Bool => {
                    err!("{i}: bug_on condition must be i1");
                }
                _ => {}
            }
        }
        for op in block.terminator.operands() {
            check_operand(op, b, block.insts.len(), false, &mut errors);
        }
        if let Terminator::CondBr { cond, .. } = &block.terminator {
            if func.operand_type(*cond) != Type::Bool {
                err!("{b}: conditional branch on non-boolean");
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred, Inst};
    use crate::origin::Origin;
    use crate::value::Operand;

    #[test]
    fn well_formed_function_passes() {
        let mut b =
            FunctionBuilder::with_params("ok", &[("p", Type::Ptr), ("x", Type::I32)], Type::I32);
        let p = b.param(0);
        let x = b.param(1);
        let v = b.load(p, Type::I32);
        let s = b.add(v, x);
        let c = b.cmp(CmpPred::Slt, s, x);
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Operand::int(Type::I32, 1));
        b.switch_to(e);
        b.ret(s);
        let f = b.finish();
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn catches_type_mismatch() {
        let mut b = FunctionBuilder::with_params("bad", &[("x", Type::I32)], Type::I32);
        // Mix i32 and i64 in one add.
        let bad = b.func_mut().push_inst(
            BlockId(0),
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Param(0),
                    rhs: Operand::int(Type::I64, 1),
                },
                Type::I32,
                Origin::unknown(),
            ),
        );
        b.ret(Operand::Inst(bad));
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("different types")));
    }

    #[test]
    fn catches_branch_to_missing_block() {
        let mut b = FunctionBuilder::with_params("bad", &[], Type::Void);
        b.br(BlockId(99));
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("non-existent block")));
    }

    #[test]
    fn catches_return_type_mismatch() {
        let mut b = FunctionBuilder::with_params("bad", &[], Type::I32);
        b.ret_void();
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("returns void")));
    }

    #[test]
    fn catches_use_before_definition() {
        let mut b = FunctionBuilder::with_params("bad", &[("x", Type::I32)], Type::I32);
        // Manually create a use of an instruction defined later in the block.
        let later = InstId(1);
        let first = b.func_mut().push_inst(
            BlockId(0),
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Inst(later),
                    rhs: Operand::int(Type::I32, 1),
                },
                Type::I32,
                Origin::unknown(),
            ),
        );
        let _later_def = b.func_mut().push_inst(
            BlockId(0),
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Param(0),
                    rhs: Operand::int(Type::I32, 2),
                },
                Type::I32,
                Origin::unknown(),
            ),
        );
        b.ret(Operand::Inst(first));
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("before its definition")));
    }

    #[test]
    fn catches_bad_cond_br_type() {
        let mut b = FunctionBuilder::with_params("bad", &[("x", Type::I32)], Type::Void);
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.cond_br(b.param(0), t, e); // i32 condition: invalid
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("non-boolean")));
    }

    #[test]
    fn module_verification_aggregates() {
        let mut m = Module::new("m.c");
        let mut ok = FunctionBuilder::with_params("ok", &[], Type::Void);
        ok.ret_void();
        m.add_function(ok.finish());
        let mut bad = FunctionBuilder::with_params("bad", &[], Type::Void);
        bad.br(BlockId(7));
        m.add_function(bad.finish());
        let errs = verify_module(&m).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].function, "bad");
    }
}
