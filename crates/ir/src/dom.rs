//! Dominator tree computation (Cooper–Harvey–Kennedy).
//!
//! The checker approximates the paper's well-defined program assumption Δ by
//! restricting it to the dominators of the fragment under analysis (paper
//! §4.4, equation (5)): every execution reaching `e` must have executed all
//! of `dom(e)`, so the UB conditions collected from those dominators may be
//! assumed false.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::value::{BlockId, InstId};
use std::collections::HashMap;

/// Dominator tree over the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (the entry maps to itself).
    idom: HashMap<BlockId, BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators using the Cooper–Harvey–Kennedy iterative
    /// algorithm over reverse post-order.
    pub fn compute(func: &Function, cfg: &Cfg) -> DomTree {
        let rpo = cfg.reverse_post_order().to_vec();
        let entry = func.entry();
        let order: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);

        let intersect = |idom: &HashMap<BlockId, BlockId>, mut a: BlockId, mut b: BlockId| {
            while a != b {
                while order[&a] > order[&b] {
                    a = idom[&a];
                }
                while order[&b] > order[&a] {
                    b = idom[&b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Pick the first processed predecessor as the starting point.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !order.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                if let Some(nd) = new_idom {
                    if idom.get(&b) != Some(&nd) {
                        idom.insert(b, nd);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    /// Immediate dominator of a block (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        if block == self.entry {
            return None;
        }
        self.idom.get(&block).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut cur = b;
        loop {
            match self.idom(cur) {
                Some(d) => {
                    if d == a {
                        return true;
                    }
                    cur = d;
                }
                None => return false,
            }
        }
    }

    /// All blocks dominating `block`, from the entry down to and including
    /// `block` itself.
    pub fn dominators(&self, block: BlockId) -> Vec<BlockId> {
        let mut chain = vec![block];
        let mut cur = block;
        while let Some(d) = self.idom(cur) {
            chain.push(d);
            cur = d;
        }
        chain.reverse();
        chain
    }

    /// The instructions that dominate the instruction at `(block, index)`:
    /// all instructions in strictly dominating blocks plus the earlier
    /// instructions of the same block, and the instruction itself. This is
    /// the `dom(e)` set of the paper's approximate queries.
    pub fn dominating_insts(&self, func: &Function, block: BlockId, index: usize) -> Vec<InstId> {
        let mut out = Vec::new();
        for d in self.dominators(block) {
            if d == block {
                for &i in func.block(d).insts.iter().take(index + 1) {
                    out.push(i);
                }
            } else {
                out.extend(func.block(d).insts.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Operand;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::with_params("d", &[("c", Type::Bool)], Type::I32);
        let then_bb = b.add_block("then");
        let else_bb = b.add_block("else");
        let merge = b.add_block("merge");
        b.cond_br(b.param(0), then_bb, else_bb);
        b.switch_to(then_bb);
        b.br(merge);
        b.switch_to(else_bb);
        b.br(merge);
        b.switch_to(merge);
        b.ret(Operand::int(Type::I32, 0));
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let entry = f.entry();
        let then_bb = BlockId(1);
        let else_bb = BlockId(2);
        let merge = BlockId(3);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(then_bb), Some(entry));
        assert_eq!(dt.idom(else_bb), Some(entry));
        // The merge block is dominated by the entry, not by either branch.
        assert_eq!(dt.idom(merge), Some(entry));
        assert!(dt.dominates(entry, merge));
        assert!(!dt.dominates(then_bb, merge));
        assert!(dt.dominates(merge, merge));
        assert_eq!(dt.dominators(merge), vec![entry, merge]);
    }

    #[test]
    fn straight_line_chain() {
        let mut b = FunctionBuilder::with_params("s", &[], Type::Void);
        let b1 = b.add_block("b1");
        let b2 = b.add_block("b2");
        b.br(b1);
        b.switch_to(b1);
        b.br(b2);
        b.switch_to(b2);
        b.ret_void();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(b1), Some(f.entry()));
        assert_eq!(dt.idom(b2), Some(b1));
        assert_eq!(dt.dominators(b2), vec![f.entry(), b1, b2]);
        assert!(dt.dominates(b1, b2));
        assert!(!dt.dominates(b2, b1));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::with_params("l", &[("c", Type::Bool)], Type::Void);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.br(header);
        b.switch_to(header);
        b.cond_br(b.param(0), body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert!(!dt.dominates(body, exit));
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
    }

    #[test]
    fn dominating_instructions_include_prefix_of_own_block() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let x = b.param(0);
        let a1 = b.add(x, Operand::int(Type::I32, 1));
        let a2 = b.add(a1, Operand::int(Type::I32, 2));
        let a3 = b.add(a2, Operand::int(Type::I32, 3));
        b.ret(a3);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let insts = dt.dominating_insts(&f, f.entry(), 1);
        assert_eq!(insts.len(), 2); // a1 and a2, not a3
        assert_eq!(insts[0], a1.as_inst().unwrap());
        assert_eq!(insts[1], a2.as_inst().unwrap());
    }
}
