//! Randomized cross-check of the CDCL solver against brute-force enumeration.

use stack_solver::lit::{Lit, Var};
use stack_solver::sat::{SatResult, SatSolver};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    for bits in 0..(1u64 << num_vars) {
        let ok = clauses.iter().all(|c| {
            c.iter().any(|l| {
                let v = (bits >> l.var().index()) & 1 == 1;
                if l.is_positive() {
                    v
                } else {
                    !v
                }
            })
        });
        if ok {
            return true;
        }
    }
    false
}

#[test]
fn random_cnf_agrees_with_brute_force() {
    let mut state = 0xDEADBEEFu64;
    for round in 0..300 {
        let num_vars = 4 + (lcg(&mut state) % 8) as usize; // 4..11
        let num_clauses = 5 + (lcg(&mut state) % 40) as usize;
        let mut clauses = Vec::new();
        for _ in 0..num_clauses {
            let len = 1 + (lcg(&mut state) % 4) as usize;
            let mut clause = Vec::new();
            for _ in 0..len {
                let v = Var((lcg(&mut state) % num_vars as u64) as u32);
                clause.push(Lit::new(v, lcg(&mut state).is_multiple_of(2)));
            }
            clauses.push(clause);
        }
        let expected = brute_force(num_vars, &clauses);
        let mut solver = SatSolver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let got = solver.solve();
        let got_bool = match got {
            SatResult::Sat => true,
            SatResult::Unsat => false,
            SatResult::Unknown => panic!("unexpected Unknown without budget"),
        };
        assert_eq!(
            got_bool, expected,
            "round {round}: mismatch on {num_vars} vars, clauses={clauses:?}"
        );
        if got_bool {
            // model must satisfy all clauses
            for c in &clauses {
                assert!(c.iter().any(|l| {
                    let v = solver.model_value(l.var());
                    if l.is_positive() {
                        v
                    } else {
                        !v
                    }
                }));
            }
        }
    }
}

#[test]
fn harder_random_cnf_agrees_with_brute_force() {
    let mut state = 0xABCDEF12345u64;
    for round in 0..120 {
        let num_vars = 10 + (lcg(&mut state) % 6) as usize; // 10..15
        let num_clauses = 4 * num_vars + (lcg(&mut state) % 20) as usize;
        let mut clauses = Vec::new();
        for _ in 0..num_clauses {
            let len = 2 + (lcg(&mut state) % 3) as usize;
            let mut clause = Vec::new();
            for _ in 0..len {
                let v = Var((lcg(&mut state) % num_vars as u64) as u32);
                clause.push(Lit::new(v, lcg(&mut state).is_multiple_of(2)));
            }
            clauses.push(clause);
        }
        let expected = brute_force(num_vars, &clauses);
        let mut solver = SatSolver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let got = solver.solve() == SatResult::Sat;
        assert_eq!(got, expected, "round {round}: clauses={clauses:?}");
    }
}
