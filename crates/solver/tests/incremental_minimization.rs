//! Property coverage for incremental solving under assumptions: on random
//! fragments (a base assertion plus a set of UB-condition-like boolean
//! terms), driving the checker's greedy Figure 8 minimization loop through a
//! persistent [`SolverInstance`] produces exactly the same minimal condition
//! sets as re-solving every iteration from scratch, and the two modes agree
//! on the full-set query itself. Budgets are unlimited, so `Unknown` — the
//! one outcome where the modes are allowed to diverge — cannot occur.

use proptest::prelude::*;
use stack_solver::{BvSolver, Lit, SolverInstance, TermId, TermPool};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A random 8-bit term over `x`, `y`, `z`, and constants, of bounded depth.
fn random_bv(pool: &mut TermPool, state: &mut u64, depth: u32) -> TermId {
    if depth == 0 || lcg(state).is_multiple_of(3) {
        return match lcg(state) % 4 {
            0 => pool.bv_var("x", 8),
            1 => pool.bv_var("y", 8),
            2 => pool.bv_var("z", 8),
            _ => pool.bv_const(8, lcg(state) & 0xFF),
        };
    }
    let a = random_bv(pool, state, depth - 1);
    let b = random_bv(pool, state, depth - 1);
    match lcg(state) % 5 {
        0 => pool.bv_add(a, b),
        1 => pool.bv_sub(a, b),
        2 => pool.bv_mul(a, b),
        3 => pool.bv_and(a, b),
        _ => pool.bv_xor(a, b),
    }
}

/// A random boolean "condition": a comparison between two random terms,
/// sometimes negated — the shape of an encoded UB condition.
fn random_condition(pool: &mut TermPool, state: &mut u64) -> TermId {
    let a = random_bv(pool, state, 2);
    let b = random_bv(pool, state, 2);
    let cmp = match lcg(state) % 4 {
        0 => pool.bv_ult(a, b),
        1 => pool.bv_slt(a, b),
        2 => pool.eq(a, b),
        _ => pool.bv_ule(a, b),
    };
    if lcg(state).is_multiple_of(3) {
        pool.not(cmp)
    } else {
        cmp
    }
}

/// A random fragment: a base ("reachability") assertion plus 1–5 condition
/// negations, mirroring the assertion sets of the checker's Figure 8 loop.
fn random_fragment(seed: u64) -> (TermPool, TermId, Vec<TermId>) {
    let mut pool = TermPool::new();
    let mut state = seed | 1;
    let base = random_condition(&mut pool, &mut state);
    let count = 1 + (lcg(&mut state) % 5) as usize;
    let negs = (0..count)
        .map(|_| {
            let cond = random_condition(&mut pool, &mut state);
            pool.not(cond)
        })
        .collect();
    (pool, base, negs)
}

/// The greedy Figure 8 minimization, one fresh solve per iteration: a
/// condition is essential iff dropping (only) its negation makes the query
/// satisfiable.
fn minimal_set_fresh(pool: &TermPool, base: TermId, negs: &[TermId]) -> Vec<usize> {
    let mut solver = BvSolver::new();
    let mut essential = Vec::new();
    for skip in 0..negs.len() {
        let mut assertions = vec![base];
        assertions.extend(
            negs.iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &n)| n),
        );
        if !solver.check(pool, &assertions).is_unsat() {
            essential.push(skip);
        }
    }
    essential
}

/// The same loop on one persistent instance: every term is registered once
/// and each iteration toggles assumption literals.
fn minimal_set_incremental(pool: &TermPool, base: TermId, negs: &[TermId]) -> Vec<usize> {
    let mut instance = SolverInstance::new();
    let base_lit = instance.literal_for(pool, base);
    let neg_lits: Vec<Lit> = negs
        .iter()
        .map(|&n| instance.literal_for(pool, n))
        .collect();
    let mut essential = Vec::new();
    for skip in 0..neg_lits.len() {
        let mut assumptions = vec![base_lit];
        assumptions.extend(
            neg_lits
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &l)| l),
        );
        if !instance.check_assuming(&assumptions).is_unsat() {
            essential.push(skip);
        }
    }
    essential
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental and non-incremental minimization agree on every random
    /// fragment, and so does the full-set query both loops start from.
    #[test]
    fn incremental_minimization_matches_fresh(seed in any::<u64>()) {
        let (pool, base, negs) = random_fragment(seed);
        let mut all = vec![base];
        all.extend(&negs);
        let fresh_full = BvSolver::new().check(&pool, &all);
        let incr_full = SolverInstance::new().check_terms(&pool, &all);
        prop_assert_eq!(
            fresh_full.is_unsat(),
            incr_full.is_unsat(),
            "full-set query must agree"
        );
        let fresh = minimal_set_fresh(&pool, base, &negs);
        let incremental = minimal_set_incremental(&pool, base, &negs);
        prop_assert_eq!(fresh, incremental, "minimal UB sets must agree");
    }

    /// A BvSolver in incremental mode (instance behind the cache-miss path)
    /// agrees with fresh mode on the same minimization loop, query by query.
    #[test]
    fn incremental_bvsolver_minimization_matches(seed in any::<u64>()) {
        let (pool, base, negs) = random_fragment(seed);
        let mut fresh = BvSolver::new();
        let mut incremental = BvSolver::new().with_incremental(true);
        for skip in 0..negs.len() {
            let mut assertions = vec![base];
            assertions.extend(
                negs.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &n)| n),
            );
            let a = fresh.check(&pool, &assertions);
            let b = incremental.check(&pool, &assertions);
            prop_assert_eq!(a.is_unsat(), b.is_unsat(), "iteration {} disagrees", skip);
        }
        // Queries decided by pre-solve simplification (e.g. a complementary
        // literal pair) never reach the instance, so this is an upper bound.
        prop_assert!(incremental.stats().incremental_queries <= negs.len() as u64);
    }
}
