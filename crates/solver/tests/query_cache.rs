//! Property coverage for the memoized query cache: for random assertion
//! sets, a cache-backed solver and a plain solver agree on every
//! `QueryResult`, replaying a query through the cache reproduces the first
//! answer, and canonical cache keys are insensitive to the order (and
//! multiplicity) of the assertion slice.

use proptest::prelude::*;
use stack_solver::{canonical_key, BvSolver, QueryCache, QueryResult, TermId, TermPool};
use std::sync::Arc;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Build a random 8-bit term over `x`, `y`, `z`, and constants, of bounded
/// depth, driven by a deterministic LCG stream.
fn random_bv(pool: &mut TermPool, state: &mut u64, depth: u32) -> TermId {
    if depth == 0 || lcg(state).is_multiple_of(3) {
        return match lcg(state) % 4 {
            0 => pool.bv_var("x", 8),
            1 => pool.bv_var("y", 8),
            2 => pool.bv_var("z", 8),
            _ => pool.bv_const(8, lcg(state) & 0xFF),
        };
    }
    let a = random_bv(pool, state, depth - 1);
    let b = random_bv(pool, state, depth - 1);
    match lcg(state) % 5 {
        0 => pool.bv_add(a, b),
        1 => pool.bv_sub(a, b),
        2 => pool.bv_mul(a, b),
        3 => pool.bv_and(a, b),
        _ => pool.bv_xor(a, b),
    }
}

/// A random boolean assertion: a comparison between two random 8-bit terms,
/// sometimes negated or conjoined (exercising conjunction flattening).
fn random_assertion(pool: &mut TermPool, state: &mut u64) -> TermId {
    let a = random_bv(pool, state, 2);
    let b = random_bv(pool, state, 2);
    let cmp = match lcg(state) % 4 {
        0 => pool.bv_ult(a, b),
        1 => pool.bv_slt(a, b),
        2 => pool.eq(a, b),
        _ => pool.bv_ule(a, b),
    };
    match lcg(state) % 4 {
        0 => pool.not(cmp),
        1 => {
            let c = random_bv(pool, state, 1);
            let d = random_bv(pool, state, 1);
            let other = pool.bv_ule(c, d);
            pool.and(cmp, other)
        }
        _ => cmp,
    }
}

fn random_assertions(seed: u64) -> (TermPool, Vec<TermId>) {
    let mut pool = TermPool::new();
    let mut state = seed | 1;
    let count = 1 + (lcg(&mut state) % 4) as usize;
    let assertions = (0..count)
        .map(|_| random_assertion(&mut pool, &mut state))
        .collect();
    (pool, assertions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cached and uncached solving agree, and replaying the query through
    /// the warm cache agrees again.
    #[test]
    fn cached_and_uncached_check_agree(seed in any::<u64>()) {
        let (pool, assertions) = random_assertions(seed);
        let mut plain = BvSolver::new();
        let mut cached = BvSolver::new().with_store(Arc::new(QueryCache::new()));
        let expected = plain.check(&pool, &assertions);
        let first = cached.check(&pool, &assertions);
        prop_assert_eq!(&expected, &first, "first cached query must agree");
        let replay = cached.check(&pool, &assertions);
        prop_assert_eq!(&expected, &replay, "cache replay must agree");
        // A decided non-trivial query must have been answered from the cache
        // the second time (trivial queries are decided before the cache).
        let stats = cached.stats();
        prop_assert_eq!(stats.queries, 2);
        if stats.cache_misses > 0 && !matches!(expected, QueryResult::Unknown) {
            prop_assert_eq!(stats.cache_hits, 1);
        }
    }

    /// Canonical keys ignore assertion order and duplication.
    #[test]
    fn cache_keys_are_order_insensitive(seed in any::<u64>()) {
        let (pool, assertions) = random_assertions(seed);
        let key = canonical_key(&pool, &assertions);
        let reversed: Vec<TermId> = assertions.iter().rev().copied().collect();
        prop_assert_eq!(&key, &canonical_key(&pool, &reversed));
        // Rotate by one.
        let mut rotated = assertions.clone();
        rotated.rotate_left(1);
        prop_assert_eq!(&key, &canonical_key(&pool, &rotated));
        // Duplicate every assertion.
        let doubled: Vec<TermId> = assertions
            .iter()
            .chain(assertions.iter())
            .copied()
            .collect();
        prop_assert_eq!(&key, &canonical_key(&pool, &doubled));
    }

    /// Sharing one cache between two solvers with distinct pools: the second
    /// solver answers structurally identical queries from the first
    /// solver's work.
    #[test]
    fn cache_is_shared_across_pools(seed in any::<u64>()) {
        let cache = Arc::new(QueryCache::new());
        let (pool_a, asserts_a) = random_assertions(seed);
        let (pool_b, asserts_b) = random_assertions(seed);
        let mut solver_a = BvSolver::new().with_store(Arc::clone(&cache) as _);
        let mut solver_b = BvSolver::new().with_store(Arc::clone(&cache) as _);
        let ra = solver_a.check(&pool_a, &asserts_a);
        let rb = solver_b.check(&pool_b, &asserts_b);
        prop_assert_eq!(&ra, &rb, "same construction recipe, same answer");
        if solver_a.stats().cache_misses > 0 && !matches!(ra, QueryResult::Unknown) {
            prop_assert_eq!(solver_b.stats().cache_hits, 1);
            prop_assert_eq!(solver_b.stats().cache_misses, 0);
        }
    }
}

/// Deterministic (non-property) check that a known non-trivial repeated
/// query is a hit, including across differently-ordered assertion slices.
#[test]
fn known_query_hits_after_reorder() {
    let cache = Arc::new(QueryCache::new());
    let mut pool = TermPool::new();
    let mut solver = BvSolver::new().with_store(Arc::clone(&cache) as _);
    let x = pool.bv_var("x", 16);
    let y = pool.bv_var("y", 16);
    let sum = pool.bv_add(x, y);
    let a = pool.bv_ult(sum, x);
    let b = pool.bv_ult(x, y);
    let r1 = solver.check(&pool, &[a, b]);
    let r2 = solver.check(&pool, &[b, a]);
    assert_eq!(r1, r2);
    assert_eq!(solver.stats().cache_hits, 1);
    assert_eq!(solver.stats().cache_misses, 1);
    assert_eq!(cache.stats().entries, 1);
}
