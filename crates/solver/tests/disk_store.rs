//! Property coverage for the disk-backed query store: a random population
//! of fingerprint→result entries survives a save/open round trip exactly
//! (same keys, same decided facts — witness models are deliberately
//! process-local and elided on disk), saving is byte-deterministic,
//! merging is commutative and idempotent byte for byte, and a
//! store-backed solver answers real queries identically before and after
//! the round trip.

use proptest::prelude::*;
use stack_solver::{BvSolver, DiskQueryStore, Model, QueryResult, QueryStore, TermId, TermPool};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn temp_path(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "stack-disk-store-{tag}-{}-{}.qs",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A random canonical key: 1–4 distinct fingerprints, sorted (matching what
/// `FingerprintMemo::canonicalize` produces).
fn random_key(state: &mut u64) -> Vec<u128> {
    let len = 1 + (lcg(state) % 4) as usize;
    let mut key: Vec<u128> = (0..len)
        .map(|_| (u128::from(lcg(state)) << 64) | u128::from(lcg(state)))
        .collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// A random variable name, deliberately including characters the line
/// format must escape (spaces, `=`, `%`, commas, non-ASCII).
fn random_name(state: &mut u64) -> String {
    const ALPHABET: &[&str] = &[
        "a", "b", "x", "_", "0", " ", "=", "%", ",", "é", "arg0_", "call3_",
    ];
    let len = 1 + (lcg(state) % 6) as usize;
    (0..len)
        .map(|_| ALPHABET[(lcg(state) as usize) % ALPHABET.len()])
        .collect()
}

/// A random decided result: UNSAT, or SAT with a small random model.
fn random_result(state: &mut u64) -> QueryResult {
    if lcg(state).is_multiple_of(2) {
        return QueryResult::Unsat;
    }
    let mut model = Model::new();
    for _ in 0..(lcg(state) % 4) {
        let name = random_name(state);
        let value = lcg(state);
        model.set(&name, value);
    }
    QueryResult::Sat(model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_population_roundtrips(seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        let path = temp_path("roundtrip");
        let store = DiskQueryStore::open(&path).unwrap();
        let mut expected: Vec<(Vec<u128>, QueryResult)> = Vec::new();
        for _ in 0..(1 + lcg(&mut state) % 24) {
            let key = random_key(&mut state);
            if expected.iter().any(|(k, _)| *k == key) {
                continue; // first insert wins, mirroring the cache
            }
            let result = random_result(&mut state);
            store.insert(key.clone(), &result);
            expected.push((key, result));
        }
        let written = store.save().unwrap();
        prop_assert_eq!(written, expected.len());
        let first_bytes = std::fs::read_to_string(&path).unwrap();
        // Within one run (one generation), saving again is byte-identical.
        store.save().unwrap();
        prop_assert_eq!(&std::fs::read_to_string(&path).unwrap(), &first_bytes);

        let reloaded = DiskQueryStore::open(&path).unwrap();
        prop_assert_eq!(reloaded.loaded_entries(), expected.len() as u64);
        prop_assert!(!reloaded.was_invalidated());
        prop_assert_eq!(reloaded.generation(), store.generation() + 1);
        for (key, result) in &expected {
            let got = reloaded.lookup(key);
            match (result, got) {
                (QueryResult::Unsat, Some(QueryResult::Unsat)) => {}
                (QueryResult::Sat(_), Some(QueryResult::Sat(have))) => {
                    // The fact roundtrips; the witness does not (elided on
                    // disk so store bytes stay history-independent).
                    prop_assert_eq!(have.len(), 0, "witness must be elided");
                }
                (want, have) => prop_assert!(false, "want {:?}, got {:?}", want, have),
            }
        }
        // Saving the reloaded store reproduces the same logical content:
        // every lookup above re-stamped its entry with the new generation,
        // so the files coincide after the generation stamps are normalized.
        reloaded.save().unwrap();
        let second_bytes = std::fs::read_to_string(&path).unwrap();
        let strip = |text: &str| -> Vec<String> {
            text.lines()
                .skip(1) // header carries the generation
                .map(|l| {
                    // The checksum covers the stamp, so drop it too.
                    let payload = stack_solver::store::verify_checksummed_line(l)
                        .expect("saved lines must checksum");
                    let (kind, rest) = payload.split_at(2);
                    let (_stamp, entry) = rest.split_once(' ').unwrap();
                    format!("{kind}{entry}")
                })
                .collect()
        };
        prop_assert_eq!(strip(&first_bytes), strip(&second_bytes));
        std::fs::remove_file(&path).unwrap();
    }

    /// The merge laws the distributed-scan fan-in relies on: merging is
    /// order-independent byte for byte, and merging a store with itself
    /// reproduces it exactly.
    #[test]
    fn merge_is_commutative_and_idempotent(seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(0x51ed_270b).wrapping_add(7);
        let a = temp_path("prop-merge-a");
        let b = temp_path("prop-merge-b");
        // Entries both stores hold (shards overlap on shared queries);
        // random 128-bit keys never collide with the disjoint extras.
        let mut shared: Vec<(Vec<u128>, QueryResult)> = Vec::new();
        for _ in 0..lcg(&mut state) % 8 {
            let key = random_key(&mut state);
            if shared.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let result = random_result(&mut state);
            shared.push((key, result));
        }
        for path in [&a, &b] {
            let store = DiskQueryStore::open(path).unwrap();
            for (key, result) in &shared {
                store.insert(key.clone(), result);
            }
            for _ in 0..lcg(&mut state) % 8 {
                store.insert(random_key(&mut state), &random_result(&mut state));
            }
            store.save().unwrap();
        }
        let ab = temp_path("prop-merge-ab");
        let ba = temp_path("prop-merge-ba");
        let stats_ab = DiskQueryStore::merge(&ab, &[a.clone(), b.clone()], None).unwrap();
        let stats_ba = DiskQueryStore::merge(&ba, &[b.clone(), a.clone()], None).unwrap();
        prop_assert_eq!(
            &std::fs::read_to_string(&ab).unwrap(),
            &std::fs::read_to_string(&ba).unwrap(),
            "merge(a, b) and merge(b, a) must coincide byte for byte"
        );
        prop_assert_eq!(stats_ab.duplicates as usize, shared.len());
        prop_assert_eq!(stats_ba.duplicates as usize, shared.len());
        prop_assert_eq!(stats_ab.entries_out, stats_ba.entries_out);

        let self_out = temp_path("prop-merge-self");
        DiskQueryStore::merge(&self_out, &[a.clone(), a.clone()], None).unwrap();
        prop_assert_eq!(
            &std::fs::read_to_string(&a).unwrap(),
            &std::fs::read_to_string(&self_out).unwrap(),
            "merge(a, a) must reproduce a byte for byte"
        );
        for path in [a, b, ab, ba, self_out] {
            std::fs::remove_file(path).unwrap();
        }
    }
}

/// End-to-end: drive real bit-vector queries through a disk-backed store,
/// persist it, and check that a fresh solver answers every query from the
/// reloaded store with results that still satisfy the original assertions.
#[test]
fn solver_answers_match_after_roundtrip() {
    let path = temp_path("solver");
    let mut pool = TermPool::new();
    let x = pool.bv_var("x", 16);
    let y = pool.bv_var("y", 16);
    let c1 = pool.bv_const(16, 1);
    let sum = pool.bv_add(x, c1);
    let wrap = pool.bv_slt(sum, x);
    let zero = pool.bv_const(16, 0);
    let pos = pool.bv_sgt(x, zero);
    let neg = pool.bv_slt(x, zero);
    let xy = pool.bv_ult(x, y);
    let queries: Vec<Vec<TermId>> = vec![
        vec![wrap],
        vec![wrap, pos],
        vec![wrap, neg],
        vec![pos, neg],
        vec![xy, pos],
    ];

    let store = Arc::new(DiskQueryStore::open(&path).unwrap());
    let mut cold = BvSolver::new().with_store(store.clone() as _);
    let cold_answers: Vec<QueryResult> = queries.iter().map(|q| cold.check(&pool, q)).collect();
    store.save().unwrap();

    let reloaded = Arc::new(DiskQueryStore::open(&path).unwrap());
    assert!(reloaded.loaded_entries() > 0);
    let mut warm = BvSolver::new().with_store(reloaded.clone() as _);
    for (q, cold_answer) in queries.iter().zip(&cold_answers) {
        let warm_answer = warm.check(&pool, q);
        assert_eq!(cold_answer.is_sat(), warm_answer.is_sat(), "query {q:?}");
        assert_eq!(
            cold_answer.is_unsat(),
            warm_answer.is_unsat(),
            "query {q:?}"
        );
        if let QueryResult::Sat(model) = &warm_answer {
            // Disk hits answer with the fact alone; the witness was elided
            // at save time.
            assert!(model.is_empty(), "disk-served witness must be elided");
        }
    }
    // Every warm query was answered from disk: no misses.
    let stats = warm.stats();
    assert_eq!(stats.cache_misses, 0, "{stats:?}");
    assert_eq!(stats.cache_hits, queries.len() as u64);
    std::fs::remove_file(&path).unwrap();
}
