//! Property-based equivalence for the assumption-core cache (ISSUE 10).
//!
//! Two contracts:
//!
//! 1. With an unlimited budget, a solver with core caching (and HBR) on
//!    answers every query in an incremental sequence — including queries
//!    after mid-sequence clause growth — with the same `Sat`/`Unsat`
//!    verdict as a solver with both switched off.
//! 2. Every core the caching solver memoizes is genuinely an unsat core:
//!    re-solving the core's literals as assumptions against the clauses
//!    loaded so far, in a fresh solver with no caches at all, yields
//!    `Unsat`. This would catch an over-narrow core (the bug class where
//!    an unsound root assignment shrank a core to a satisfiable subset).
//!
//! Assumption sets are drawn with `prop::collection::sample` over a fixed
//! literal pool so queries overlap heavily — that is what makes cores
//! recur as subsets of later assumption sets and drives the cache-hit
//! path under test.

use proptest::prelude::*;
use stack_solver::lit::{Lit, Var};
use stack_solver::sat::{Budget, SatResult, SatSolver};

/// A clause or assumption set as (variable index, polarity) pairs.
type Lits = Vec<(usize, bool)>;

const NUM_VARS: usize = 12;

fn to_lits(spec: &[(usize, bool)]) -> Vec<Lit> {
    spec.iter()
        .map(|&(v, pos)| Lit::new(Var(v as u32), pos))
        .collect()
}

fn fresh_solver(core_cache: bool, hbr: bool) -> SatSolver {
    let mut s = SatSolver::new();
    s.set_preprocessing(true);
    s.set_core_caching(core_cache);
    s.set_hbr(hbr);
    for _ in 0..NUM_VARS {
        s.new_var();
    }
    s
}

fn add_all(s: &mut SatSolver, clauses: &[Lits]) {
    for c in clauses {
        s.add_clause(&to_lits(c));
    }
}

/// The literal pool queries sample from: both polarities of a handful of
/// variables, so overlapping and contradictory assumption sets both occur.
fn literal_pool() -> Vec<(usize, bool)> {
    (0..NUM_VARS / 2)
        .flat_map(|v| [(v, true), (v, false)])
        .collect()
}

fn clause_set() -> impl Strategy<Value = Vec<Lits>> {
    prop::collection::vec(
        prop::collection::vec((0..NUM_VARS, any::<bool>()), 1..4),
        1..50,
    )
}

fn query_seq() -> impl Strategy<Value = Vec<Lits>> {
    prop::collection::vec(prop::collection::sample(literal_pool(), 1..5), 1..24)
}

/// Each cached core, re-solved as assumptions in a completely fresh
/// cache-free solver over `loaded`, must come back `Unsat`.
fn cores_are_genuine(cores: &[Vec<Lit>], loaded: &[Lits]) -> Result<(), String> {
    for core in cores {
        let mut fresh = SatSolver::new();
        for _ in 0..NUM_VARS {
            fresh.new_var();
        }
        add_all(&mut fresh, loaded);
        if fresh.solve_with(core, Budget::unlimited()) != SatResult::Unsat {
            return Err(format!("cached core {core:?} is not unsat"));
        }
    }
    Ok(())
}

/// Deterministic smoke check that the machinery under test actually fires:
/// an unsat query banks a core, and a superset query is then answered from
/// the cache (visible as a `core_cache_hits` tick) with the same verdict.
#[test]
fn superset_query_is_served_from_cache() {
    let mut s = fresh_solver(true, true);
    // x0, and x1 -> x2; assuming !x0 is unsat on its own.
    add_all(&mut s, &[vec![(0, true)], vec![(1, false), (2, true)]]);
    let first = s.solve_with(&to_lits(&[(0, false), (1, true)]), Budget::unlimited());
    assert_eq!(first, SatResult::Unsat);
    let core = s.last_core().expect("core after unsat").to_vec();
    assert!(core.contains(&Lit::new(Var(0), false)));
    let hits_before = s.stats().core_cache_hits;
    let again = s.solve_with(&to_lits(&[(0, false), (2, false)]), Budget::unlimited());
    assert_eq!(again, SatResult::Unsat);
    assert_eq!(s.stats().core_cache_hits, hits_before + 1);
    assert_eq!(s.last_core().expect("cached core"), &core[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental sequence with the cache on vs off: verdicts agree query
    /// for query, before and after mid-sequence clause growth, and every
    /// core the caching solver banks along the way is independently
    /// re-derivable as `Unsat` from the clauses alone.
    #[test]
    fn core_cache_on_off_agree_and_cores_are_unsat(
        clauses in clause_set(),
        extra in prop::collection::vec(
            prop::collection::vec((0..NUM_VARS, any::<bool>()), 1..4), 0..20),
        queries in query_seq(),
    ) {
        let mut on = fresh_solver(true, true);
        let mut off = fresh_solver(false, false);
        add_all(&mut on, &clauses);
        add_all(&mut off, &clauses);
        prop_assert!(on.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));
        prop_assert!(off.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));

        let mut loaded = clauses.clone();
        let split = queries.len() / 2;
        // Cores audited so far, by content — the cache itself evicts and
        // drops subsumed entries, so indices are not stable.
        let mut audited: Vec<Vec<Lit>> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            if i == split {
                add_all(&mut on, &extra);
                add_all(&mut off, &extra);
                loaded.extend(extra.iter().cloned());
                prop_assert!(
                    on.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));
                prop_assert!(
                    off.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));
            }
            let assumptions = to_lits(q);
            let got = on.solve_with(&assumptions, Budget::unlimited());
            let want = off.solve_with(&assumptions, Budget::unlimited());
            prop_assert_eq!(got, want, "query {} of {:?}", i, q);
            if got == SatResult::Unsat {
                // The reported core must be a subset of the assumptions
                // (cores only ever name assumption literals).
                let core = on.last_core().expect("unsat under assumptions must report a core");
                prop_assert!(
                    core.iter().all(|l| assumptions.contains(l)),
                    "query {}: core {:?} not within assumptions {:?}", i, core, q);
            }
            // Audit cores as they are banked, against the clauses loaded
            // at the time — a core recorded before the growth point must
            // already be unsat without `extra`.
            let fresh: Vec<Vec<Lit>> = on
                .cached_cores()
                .iter()
                .filter(|c| !audited.contains(c))
                .cloned()
                .collect();
            if let Err(msg) = cores_are_genuine(&fresh, &loaded) {
                prop_assert!(false, "query {}: {}", i, msg);
            }
            audited.extend(fresh);
        }
    }
}
