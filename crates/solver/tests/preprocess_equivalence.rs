//! Property-based equivalence between the preprocessing/LBD solver and the
//! plain CDCL core it replaced.
//!
//! The contract under test (ISSUE 9): with an unlimited budget the two
//! configurations answer every query in an incremental sequence with the
//! same `Sat`/`Unsat` verdict, and every `Sat` model — including models
//! served from the solver's internal model cache and models extended over
//! BVE-eliminated variables — satisfies the *original* clauses and the
//! query's assumptions. Queries deliberately alternate and repeat literals
//! so the trail-reuse and model-cache shortcuts fire often.

use proptest::prelude::*;
use stack_solver::lit::{Lit, Var};
use stack_solver::sat::{Budget, SatResult, SatSolver};

/// A clause or assumption set as (variable index, polarity) pairs.
type Lits = Vec<(usize, bool)>;

const NUM_VARS: usize = 12;

fn to_lits(spec: &[(usize, bool)]) -> Vec<Lit> {
    spec.iter()
        .map(|&(v, pos)| Lit::new(Var(v as u32), pos))
        .collect()
}

fn fresh_solver(preprocessing: bool) -> SatSolver {
    let mut s = SatSolver::new();
    s.set_preprocessing(preprocessing);
    for _ in 0..NUM_VARS {
        s.new_var();
    }
    s
}

fn add_all(s: &mut SatSolver, clauses: &[Lits]) {
    for c in clauses {
        s.add_clause(&to_lits(c));
    }
}

/// Every original clause must hold under the solver's reported model.
fn model_satisfies(s: &SatSolver, clauses: &[Lits]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|&(v, pos)| s.model_value(Var(v as u32)) == pos)
    })
}

fn assumptions_hold(s: &SatSolver, assumptions: &[(usize, bool)]) -> bool {
    assumptions
        .iter()
        .all(|&(v, pos)| s.model_value(Var(v as u32)) == pos)
}

fn clause_set() -> impl Strategy<Value = Vec<Lits>> {
    prop::collection::vec(
        prop::collection::vec((0..NUM_VARS, any::<bool>()), 1..4),
        1..50,
    )
}

fn query_seq() -> impl Strategy<Value = Vec<Lits>> {
    prop::collection::vec(
        prop::collection::vec((0..NUM_VARS, any::<bool>()), 1..4),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental sequence: load clauses, query, grow the formula, query
    /// again. Verdicts must match the plain solver query for query, and
    /// `Sat` models must satisfy all clauses added so far plus the
    /// assumptions (this would catch a stale model-cache hit surviving an
    /// `add_clause`).
    #[test]
    fn incremental_queries_agree_with_plain_solver(
        clauses in clause_set(),
        extra in prop::collection::vec(
            prop::collection::vec((0..NUM_VARS, any::<bool>()), 1..4), 0..20),
        queries in query_seq(),
    ) {
        let mut on = fresh_solver(true);
        let mut off = fresh_solver(false);
        add_all(&mut on, &clauses);
        add_all(&mut off, &clauses);
        // Simplify the way the incremental driver does: at the root, BVE off
        // (more clauses over these variables are still coming).
        prop_assert!(on.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));

        let mut loaded = clauses.clone();
        let split = queries.len() / 2;
        for (i, q) in queries.iter().enumerate() {
            if i == split {
                add_all(&mut on, &extra);
                add_all(&mut off, &extra);
                loaded.extend(extra.iter().cloned());
                prop_assert!(
                    on.preprocess(Budget::unlimited(), false) != Some(SatResult::Unknown));
            }
            let assumptions = to_lits(q);
            let got = on.solve_with(&assumptions, Budget::unlimited());
            let want = off.solve_with(&assumptions, Budget::unlimited());
            prop_assert_eq!(got, want, "query {} of {:?}", i, q);
            if got == SatResult::Sat {
                prop_assert!(model_satisfies(&on, &loaded), "query {i}: clauses");
                prop_assert!(assumptions_hold(&on, q), "query {i}: assumptions");
                prop_assert!(model_satisfies(&off, &loaded), "query {i}: plain clauses");
            }
        }
    }

    /// One-shot solve with bounded variable elimination enabled — the only
    /// path allowed to run BVE, since resolving a variable out commits to
    /// "some value works" and a later assumption could demand the other one
    /// (`solve_with` debug-asserts against that misuse). The verdict must
    /// match the plain solver and a `Sat` model must satisfy the
    /// *pre-elimination* clauses, exercising model reconstruction.
    #[test]
    fn one_shot_bve_agrees_and_models_check(clauses in clause_set()) {
        let mut on = fresh_solver(true);
        let mut off = fresh_solver(false);
        add_all(&mut on, &clauses);
        add_all(&mut off, &clauses);
        let got = match on.preprocess(Budget::unlimited(), true) {
            Some(SatResult::Unknown) => {
                prop_assert!(false, "unlimited budget ran out");
                unreachable!()
            }
            Some(decided) => decided,
            None => on.solve(),
        };
        prop_assert_eq!(got, off.solve());
        if got == SatResult::Sat {
            prop_assert!(model_satisfies(&on, &clauses));
            prop_assert!(model_satisfies(&off, &clauses));
        }
    }
}
