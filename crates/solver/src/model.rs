//! Satisfying assignments (models) for bit-vector queries.

use std::collections::HashMap;

use crate::term::{Sort, TermId, TermPool};

/// A model: an assignment of concrete values to the free variables of a
/// query. Boolean variables are encoded as 0/1; bit-vector values are masked
/// to their width.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, u64>,
}

impl Model {
    /// Create an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Assign a value to a variable.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    /// Value of a variable; unconstrained variables default to zero, matching
    /// the convention that any value satisfies the formula for them.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether the model constrains the given variable.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterate over all assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &u64)> {
        self.values.iter()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluate a term under this model.
    pub fn eval(&self, pool: &TermPool, term: TermId) -> u64 {
        pool.eval(term, &|name: &str, _sort: Sort| self.get(name))
    }

    /// Evaluate a boolean term under this model.
    pub fn eval_bool(&self, pool: &TermPool, term: TermId) -> bool {
        self.eval(pool, term) != 0
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<_> = self.values.iter().collect();
        entries.sort();
        write!(f, "{{")?;
        for (i, (name, value)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = {value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_eval() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 32);
        let c = pool.bv_const(32, 10);
        let sum = pool.bv_add(x, c);
        let cmp = pool.bv_ult(sum, x);

        let mut m = Model::new();
        m.set("x", u32::MAX as u64 - 3);
        assert_eq!(m.eval(&pool, sum), 6); // wraps
        assert!(m.eval_bool(&pool, cmp));

        let mut m2 = Model::new();
        m2.set("x", 5);
        assert_eq!(m2.eval(&pool, sum), 15);
        assert!(!m2.eval_bool(&pool, cmp));
    }

    #[test]
    fn unconstrained_variables_default_to_zero() {
        let m = Model::new();
        assert_eq!(m.get("whatever"), 0);
        assert!(!m.contains("whatever"));
        assert!(m.is_empty());
    }

    #[test]
    fn display_is_sorted() {
        let mut m = Model::new();
        m.set("b", 2);
        m.set("a", 1);
        assert_eq!(m.to_string(), "{a = 1, b = 2}");
        assert_eq!(m.len(), 2);
    }
}
