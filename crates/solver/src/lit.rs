//! Boolean variables and literals for the CDCL SAT core.
//!
//! A [`Var`] is a small integer index; a [`Lit`] packs a variable together with
//! its polarity in a single `u32` (`var << 1 | sign`), the classic MiniSat
//! encoding. Using the packed form keeps watch lists and clause storage
//! compact and lets us index per-literal tables directly.

use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable, usable for direct table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | (positive ? 0 : 1)` so that negation is a single
/// XOR and the encoding is a dense index over `2 * num_vars` slots.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Build a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is the positive occurrence of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index over all literals (`2 * num_vars` slots), used for watch
    /// lists and phase tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a literal from its dense index.
    #[inline]
    pub fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var().0)
        } else {
            write!(f, "-{}", self.var().0)
        }
    }
}

/// Ternary truth value used for partial assignments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    /// Convert a Rust boolean to a definite truth value.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Whether the value is still unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        matches!(self, LBool::Undef)
    }

    /// Negate a definite value; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn negation_is_involutive() {
        for i in 0..100u32 {
            let lit = Lit::new(Var(i), i % 2 == 0);
            assert_eq!(!!lit, lit);
        }
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::Undef.is_undef());
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
    }

    #[test]
    fn dense_indexing_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..64u32 {
            for pos in [true, false] {
                assert!(seen.insert(Lit::new(Var(v), pos).index()));
            }
        }
        assert_eq!(seen.len(), 128);
    }
}
