//! Incremental solving under assumptions.
//!
//! The checker's minimal-UB-set computation (paper Figure 8) and its
//! oracle-comparison loop re-query the solver with near-identical assertion
//! sets: the same fragment encoding, with a different subset of negated UB
//! conditions each time. [`BvSolver::check`](crate::solver::BvSolver::check)
//! rebuilds the CNF from scratch per query, so every iteration pays the full
//! bit-blasting cost again, and the query cache only collapses *identical*
//! assertion sets.
//!
//! A [`SolverInstance`] removes that rebuild: it keeps one [`SatSolver`] and
//! one [`BitBlaster`] alive across queries against a single [`TermPool`].
//! Terms are registered once — [`SolverInstance::literal_for`] Tseitin-encodes
//! a boolean term into an *assumption literal* without asserting it — and
//! [`SolverInstance::check_assuming`] decides the conjunction of any subset of
//! registered literals by solving the accumulated CNF under those literals as
//! assumptions (no push/pop; toggling an assumption in or out costs nothing).
//! Because the definitional clauses stay loaded, so do the learned clauses the
//! SAT core derived from them, which typically makes later queries in the loop
//! cheaper than the first, not merely no-more-expensive.
//!
//! # Semantics
//!
//! * An assumption literal `l = literal_for(t)` is *definitionally* tied to
//!   `t`: the CNF contains `l ↔ blast(t)` but never the unit clause `l`.
//!   `check_assuming(&[l1, …, ln])` is therefore exactly satisfiability of
//!   `t1 ∧ … ∧ tn` — the same answer a fresh
//!   [`BvSolver::check`](crate::solver::BvSolver::check) on `[t1, …, tn]`
//!   would produce for decided (`Sat`/`Unsat`) results.
//! * Budget-exhausted [`QueryResult::Unknown`] outcomes are the one place the
//!   modes may diverge: the incremental CNF (and its learned clauses) depends
//!   on the query history of the instance, so where exactly a propagation
//!   budget runs out can differ from a fresh single-query run. Decided
//!   results never depend on history; `Unknown` is never cached either way.
//! * An instance is only meaningful against the [`TermPool`] it was first fed
//!   ([`TermId`]s are pool-local); this is enforced via the pool's
//!   [`epoch`](TermPool::epoch) in debug builds. The owning
//!   [`BvSolver`](crate::solver::BvSolver) replaces its instance whenever the
//!   pool changes, which in the checker means one instance per function — the
//!   function's fragments all share one encoding.

use crate::blast::BitBlaster;
use crate::lit::Lit;
use crate::model::Model;
use crate::sat::{Budget, SatResult, SatSolver, SatStats};
use crate::solver::QueryResult;
use crate::term::{TermId, TermPool};

/// Counters for one [`SolverInstance`] (folded into
/// [`SolverStats`](crate::solver::SolverStats) by the owning solver).
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// `check_assuming` calls answered by this instance.
    pub queries: u64,
    /// Clause slots that were already loaded when a query started — formula
    /// the instance reused instead of re-blasting. Summed over queries.
    pub reused_clauses: u64,
    /// Distinct terms registered as assumption literals.
    pub registered_terms: u64,
}

/// A persistent SAT instance for incremental solving under assumptions.
///
/// See the [module documentation](self) for the motivation and semantics.
/// Typical driver shape (the checker's Figure 8 loop):
///
/// ```
/// use stack_solver::{Budget, QueryResult, SolverInstance, TermPool};
///
/// let mut pool = TermPool::new();
/// let x = pool.bv_var("x", 8);
/// let zero = pool.bv_const(8, 0);
/// let pos = pool.bv_sgt(x, zero);
/// let neg = pool.bv_slt(x, zero);
///
/// let mut instance = SolverInstance::new();
/// let l_pos = instance.literal_for(&pool, pos); // encoded once…
/// let l_neg = instance.literal_for(&pool, neg);
/// // …then toggled as assumptions, query after query.
/// assert!(instance.check_assuming(&[l_pos]).is_sat());
/// assert!(instance.check_assuming(&[l_pos, l_neg]).is_unsat());
/// assert!(instance.check_assuming(&[l_neg]).is_sat());
/// ```
pub struct SolverInstance {
    sat: SatSolver,
    blaster: BitBlaster,
    budget: Budget,
    /// Epoch of the pool this instance has been fed terms from (set on first
    /// registration; mixing pools is a caller bug).
    epoch: Option<u64>,
    /// Clauses emitted by [`literal_for`](SolverInstance::literal_for) since
    /// the last query; everything older counts as reused by the next query.
    fresh_clauses: usize,
    /// Run the deterministic preprocessing pass before the first query.
    /// Bounded variable elimination stays off either way: later
    /// [`literal_for`](SolverInstance::literal_for) calls may add clauses
    /// over existing variables, which elimination does not survive. Probing,
    /// subsumption, and strengthening preserve logical equivalence, so they
    /// are safe under incremental additions.
    preprocess: bool,
    /// Whether the one-shot preprocessing pass has already run.
    preprocessed: bool,
    stats: InstanceStats,
}

impl Default for SolverInstance {
    fn default() -> SolverInstance {
        SolverInstance {
            sat: SatSolver::new(),
            blaster: BitBlaster::default(),
            budget: Budget::default(),
            epoch: None,
            fresh_clauses: 0,
            preprocess: true,
            preprocessed: false,
            stats: InstanceStats::default(),
        }
    }
}

impl std::fmt::Debug for SolverInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverInstance")
            .field("epoch", &self.epoch)
            .field("clauses", &self.sat.num_clauses())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SolverInstance {
    /// An empty instance with an unlimited per-query budget.
    pub fn new() -> SolverInstance {
        SolverInstance::default()
    }

    /// An empty instance with a per-query resource budget (applied to each
    /// [`check_assuming`](SolverInstance::check_assuming) call separately).
    pub fn with_budget(budget: Budget) -> SolverInstance {
        SolverInstance {
            budget,
            ..SolverInstance::default()
        }
    }

    /// Change the per-query budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Enable or disable the preprocessing/inprocessing layer (on by
    /// default). Off restores the pre-LBD solver behaviour: no simplification
    /// pass, no vivification between restarts, activity-only clause-database
    /// reduction.
    pub fn set_preprocessing(&mut self, on: bool) {
        self.preprocess = on;
        self.sat.set_preprocessing(on);
    }

    /// Enable or disable assumption-core memoization on the underlying SAT
    /// core (on by default). See [`SatSolver::set_core_caching`].
    pub fn set_core_caching(&mut self, on: bool) {
        self.sat.set_core_caching(on);
    }

    /// Enable or disable hyper-binary resolution during probing (on by
    /// default). See [`SatSolver::set_hbr`].
    pub fn set_hbr(&mut self, on: bool) {
        self.sat.set_hbr(on);
    }

    /// Attach the owning solver's cross-instance core store. See
    /// [`SatSolver::set_shared_cores`].
    pub fn set_shared_cores(
        &mut self,
        shared: Option<std::sync::Arc<std::sync::Mutex<crate::sat::SharedCoreCache>>>,
    ) {
        self.sat.set_shared_cores(shared);
    }

    /// The assumption core of the last `Unsat` answer: a subset of that
    /// query's assumption literals already unsatisfiable with the formula
    /// (empty when the formula itself is unsatisfiable). `None` after
    /// non-`Unsat` answers or with core caching off.
    pub fn last_core(&self) -> Option<&[Lit]> {
        self.sat.last_core()
    }

    /// The assumption literal a term was registered to, if it has been
    /// registered, without blasting anything new.
    pub fn registered_literal(&self, term: TermId) -> Option<Lit> {
        self.blaster.bool_literal(term)
    }

    /// Epoch of the pool this instance is tied to (`None` until the first
    /// term is registered).
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Counters accumulated by this instance.
    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// Number of clause slots currently loaded in the SAT core.
    pub fn num_clauses(&self) -> usize {
        self.sat.num_clauses()
    }

    /// Register a boolean term, returning its assumption literal.
    ///
    /// The term is Tseitin-encoded into the persistent CNF the first time it
    /// is seen; repeated registrations (of the term or any shared subterm)
    /// are cache lookups. The returned literal is *not* asserted — pass it to
    /// [`check_assuming`](SolverInstance::check_assuming) to enable the term
    /// for one query, or its negation to require the term false.
    pub fn literal_for(&mut self, pool: &TermPool, term: TermId) -> Lit {
        debug_assert!(
            self.epoch.is_none() || self.epoch == Some(pool.epoch()),
            "SolverInstance fed terms from two different pools"
        );
        self.epoch = Some(pool.epoch());
        debug_assert!(pool.sort(term).is_bool());
        // Blasting may add clauses; `add_clause` cancels to the root itself
        // when it does. Leaving the trail alone on the (common) all-cached
        // path lets the next solve reuse it for shared assumptions.
        let before = self.sat.num_clauses();
        let lit = self.blaster.blast_bool(pool, &mut self.sat, term);
        let added = self.sat.num_clauses() - before;
        if added > 0 {
            self.stats.registered_terms += 1;
            self.fresh_clauses += added;
        }
        lit
    }

    /// Decide the conjunction of the given assumption literals against the
    /// accumulated formula, under the per-query budget.
    ///
    /// Returns [`QueryResult::Sat`] with a model over every registered free
    /// variable, [`QueryResult::Unsat`], or [`QueryResult::Unknown`] on
    /// budget exhaustion. The formula itself is untouched: assumptions hold
    /// for this call only.
    pub fn check_assuming(&mut self, assumptions: &[Lit]) -> QueryResult {
        self.stats.queries += 1;
        // Clauses loaded before this query's own registrations were paid for
        // by an earlier query (or an earlier registration round): reuse.
        let reused = self.sat.num_clauses().saturating_sub(self.fresh_clauses);
        self.stats.reused_clauses += reused as u64;
        self.fresh_clauses = 0;
        if self.preprocess && !self.preprocessed {
            self.preprocessed = true;
            // Simplification rewrites clauses, which is only legal at the
            // root level. Its cost is charged to the budget and carried into
            // the solve below, so degraded verdicts stay byte-reproducible.
            self.sat.cancel_until_root();
            match self.sat.preprocess(self.budget, false) {
                // Root-unsat: fall through to `solve_with`, which answers
                // immediately and records the (empty) assumption core so
                // `last_core` cannot report a stale earlier core.
                Some(SatResult::Unsat) => {}
                Some(SatResult::Unknown) => return QueryResult::Unknown,
                _ => {}
            }
        }
        match self.sat.solve_with(assumptions, self.budget) {
            SatResult::Unsat => QueryResult::Unsat,
            SatResult::Unknown => QueryResult::Unknown,
            SatResult::Sat => QueryResult::Sat(self.blaster.extract_model(&self.sat)),
        }
    }

    /// Convenience wrapper: register each term and decide their conjunction
    /// in one call. Returns the model-bearing result like
    /// [`check_assuming`](SolverInstance::check_assuming).
    pub fn check_terms(&mut self, pool: &TermPool, terms: &[TermId]) -> QueryResult {
        let lits: Vec<Lit> = terms.iter().map(|&t| self.literal_for(pool, t)).collect();
        self.check_assuming(&lits)
    }

    /// Extract a model after a `Sat` answer (valid until the next query).
    pub fn model(&self) -> Model {
        self.blaster.extract_model(&self.sat)
    }

    /// Cumulative SAT-core statistics (propagations, conflicts, …) across
    /// every query this instance has answered.
    pub fn sat_stats(&self) -> SatStats {
        self.sat.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toggle assumption subsets and compare every answer against a fresh
    /// non-incremental solve of the same conjunction.
    #[test]
    fn check_assuming_agrees_with_fresh_solves() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 16);
        let y = pool.bv_var("y", 16);
        let c100 = pool.bv_const(16, 100);
        let sum = pool.bv_add(x, c100);
        let conds = [
            pool.bv_slt(sum, x),  // x + 100 < x (signed): needs wrap-around
            pool.bv_ult(x, y),    // x < y unsigned
            pool.bv_ugt(x, c100), // x > 100 unsigned
            pool.eq(y, c100),     // y == 100
        ];
        let mut instance = SolverInstance::new();
        let lits: Vec<Lit> = conds
            .iter()
            .map(|&t| instance.literal_for(&pool, t))
            .collect();
        // Walk every subset, in an order that toggles membership a lot.
        for mask in 0..(1u32 << conds.len()) {
            let subset: Vec<TermId> = conds
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t)
                .collect();
            let assumed: Vec<Lit> = lits
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &l)| l)
                .collect();
            let incremental = instance.check_assuming(&assumed);
            let fresh = crate::solver::BvSolver::new().check(&pool, &subset);
            assert_eq!(
                incremental.is_sat(),
                fresh.is_sat(),
                "subset mask {mask:#b} disagrees"
            );
            if let QueryResult::Sat(model) = &incremental {
                for &t in &subset {
                    assert!(model.eval_bool(&pool, t), "model violates a conjunct");
                }
            }
        }
        let stats = instance.stats();
        assert_eq!(stats.queries, 1 << conds.len());
        assert!(stats.reused_clauses > 0, "later queries must reuse clauses");
    }

    #[test]
    fn negated_assumption_literals_work() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 8);
        let zero = pool.bv_const(8, 0);
        let is_zero = pool.eq(x, zero);
        let mut instance = SolverInstance::new();
        let l = instance.literal_for(&pool, is_zero);
        assert!(instance.check_assuming(&[l]).is_sat());
        assert!(instance.check_assuming(&[!l]).is_sat());
        assert!(instance.check_assuming(&[l, !l]).is_unsat());
    }

    #[test]
    fn registration_is_memoized() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 8);
        let y = pool.bv_var("y", 8);
        let lt = pool.bv_ult(x, y);
        let mut instance = SolverInstance::new();
        let l1 = instance.literal_for(&pool, lt);
        let clauses = instance.num_clauses();
        let l2 = instance.literal_for(&pool, lt);
        assert_eq!(l1, l2);
        assert_eq!(instance.num_clauses(), clauses, "no re-blasting");
        assert_eq!(instance.stats().registered_terms, 1);
    }

    #[test]
    fn budget_applies_per_query() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 24);
        let y = pool.bv_var("y", 24);
        let prod = pool.bv_mul(x, y);
        let c = pool.bv_const(24, 0x123457);
        let eq = pool.eq(prod, c);
        let one = pool.bv_const(24, 1);
        let xg = pool.bv_ugt(x, one);
        let yg = pool.bv_ugt(y, one);
        let mut instance = SolverInstance::with_budget(Budget::propagations(10));
        let result = instance.check_terms(&pool, &[eq, xg, yg]);
        assert!(result.is_unknown());
        // Raising the budget on the same instance lets the query finish.
        instance.set_budget(Budget::unlimited());
        let result = instance.check_terms(&pool, &[eq, xg, yg]);
        assert!(!result.is_unknown());
    }
}
