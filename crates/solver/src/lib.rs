//! `stack-solver` — a self-contained QF_BV (bit-vector) decision procedure.
//!
//! This crate is the reproduction's stand-in for the Boolector SMT solver
//! used by the STACK checker (Wang et al., SOSP 2013). It provides:
//!
//! * a CDCL SAT core ([`sat::SatSolver`]) with two-watched-literal
//!   propagation, first-UIP clause learning, VSIDS, restarts, and solving
//!   under assumptions;
//! * a hash-consed bit-vector term language ([`term::TermPool`]) covering the
//!   operators needed to express the paper's undefined-behavior conditions
//!   (Figure 3): wrap-around arithmetic, comparisons (signed and unsigned),
//!   shifts, division, width conversion;
//! * a bit-blaster ([`blast::BitBlaster`]) translating terms to CNF;
//! * a query-level API ([`solver::BvSolver`]) with deterministic per-query
//!   resource budgets standing in for the paper's 5-second query timeout;
//! * a memoized query cache ([`cache::QueryCache`]) answering structurally
//!   identical queries across threads, functions, and modules;
//! * pluggable query stores ([`store::QueryStore`]): the in-memory cache or
//!   a disk-backed store ([`store::DiskQueryStore`]) that persists
//!   fingerprint→result pairs across processes, so repeated archive scans
//!   (the paper's §6.5 workload) start warm;
//! * incremental solving under assumptions ([`incremental::SolverInstance`]):
//!   one persistent SAT instance per function encoding, with UB-condition
//!   literals toggled as assumptions, so the checker's minimal-UB-set loop
//!   (paper Figure 8) stops re-paying bit-blasting per iteration.
//!
//! The checker builds elimination and simplification queries (paper §3.2) as
//! boolean terms and asks [`solver::BvSolver::check`] for SAT/UNSAT; UNSAT
//! means the corresponding fragment is unstable code.

pub mod blast;
pub mod cache;
pub mod cnf;
pub mod incremental;
pub mod lit;
pub mod model;
pub mod sat;
pub mod solver;
pub mod store;
pub mod term;

pub use blast::BitBlaster;
pub use cache::{canonical_key, CacheKey, CacheStats, QueryCache};
pub use cnf::{Clause, ClauseDb, ClauseRef, CnfFormula};
pub use incremental::{InstanceStats, SolverInstance};
pub use lit::{LBool, Lit, Var};
pub use model::Model;
pub use sat::{Budget, SatResult, SatSolver, SatStats};
pub use solver::{free_variables, BvSolver, QueryResult, SolverStats};
pub use store::{
    crc32, DiskQueryStore, MergeError, MergeStats, QueryStore, SalvageReport, StoreInspection,
    ENCODING_REVISION, STORE_FORMAT_VERSION,
};
pub use term::{mask, to_signed, Sort, Term, TermId, TermKind, TermPool, MAX_WIDTH};
