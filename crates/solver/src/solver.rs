//! The public bit-vector solver interface used by the checker.
//!
//! [`BvSolver::check`] decides the conjunction of the given boolean terms:
//! cheap pre-solve simplification, then a lookup in the attached
//! [`QueryCache`](crate::cache::QueryCache) (if any), and on a miss a bit-blast + CDCL run under a
//! deterministic resource budget. The budget plays the role of the per-query
//! wall-clock timeout the paper uses (5 seconds per Boolector query, §6.4)
//! while keeping results reproducible across machines. How a miss is solved
//! depends on the mode: by default each query gets a throwaway SAT instance;
//! in incremental mode ([`BvSolver::set_incremental`]) misses share one
//! persistent [`SolverInstance`] per [`TermPool`], which trades per-query
//! isolation for not re-paying bit-blasting across the checker's
//! near-identical Figure 8 queries.

use crate::blast::BitBlaster;
use crate::cache::FingerprintMemo;
use crate::incremental::SolverInstance;
use crate::model::Model;
use crate::sat::{Budget, SatResult, SatSolver, SharedCoreCache};
use crate::store::QueryStore;
use crate::term::{Sort, TermId, TermKind, TermPool};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Outcome of a single query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResult {
    /// Satisfiable, with a witness model over the free variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The resource budget was exhausted; treated as a solver timeout.
    Unknown,
}

impl QueryResult {
    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, QueryResult::Unsat)
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, QueryResult::Sat(_))
    }

    /// Whether the query timed out.
    pub fn is_unknown(&self) -> bool {
        matches!(self, QueryResult::Unknown)
    }
}

/// Aggregate statistics across all queries issued through one [`BvSolver`].
/// These feed the Figure 16 performance table (number of queries, timeouts).
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Total queries issued.
    pub queries: u64,
    /// Queries answered SAT.
    pub sat: u64,
    /// Queries answered UNSAT.
    pub unsat: u64,
    /// Queries that exhausted their budget ("timeouts").
    pub timeouts: u64,
    /// Total SAT-level propagations across all queries.
    pub propagations: u64,
    /// SAT-level propagations spent on queries that ended `Unsat` — the
    /// share of `propagations` the Unsat fast path (core cache, HBR,
    /// tiered clause database) is able to attack.
    pub unsat_propagations: u64,
    /// Total conflicts across all queries.
    pub conflicts: u64,
    /// Total restarts across all queries.
    pub restarts: u64,
    /// Clauses learned by conflict analysis across all queries.
    pub learned_clauses: u64,
    /// Learned clauses evicted by clause-database reduction.
    pub deleted_clauses: u64,
    /// Sum of literal-block-distance values over all learned clauses; divide
    /// by [`learned_clauses`](SolverStats::learned_clauses) for the average
    /// (see [`SolverStats::avg_lbd`]).
    pub lbd_sum: u64,
    /// Simplification steps by pre/inprocessing: failed literals asserted,
    /// clauses subsumed or strengthened, variables eliminated, learned
    /// clauses vivified.
    pub preprocess_eliminations: u64,
    /// Queries answered from the shared [`QueryCache`](crate::cache::QueryCache) without bit-blasting.
    pub cache_hits: u64,
    /// Queries that consulted the cache and missed.
    pub cache_misses: u64,
    /// Queries decided by a persistent [`SolverInstance`] (incremental mode)
    /// instead of a from-scratch bit-blast + CDCL run.
    pub incremental_queries: u64,
    /// Clause slots already loaded in an incremental instance when a query
    /// started — formula reused across queries instead of re-emitted. Summed
    /// over all incremental queries.
    pub reused_clauses: u64,
    /// `Sat` answers the SAT core served from its model cache (valid trail
    /// or cached-model store) in zero propagations.
    pub model_cache_hits: u64,
    /// `Unsat` answers the SAT core served from its assumption-core cache in
    /// zero propagations.
    pub core_cache_hits: u64,
    /// Assumption cores extracted and recorded after `Unsat` answers.
    pub cores_recorded: u64,
    /// Sum of literal counts over recorded cores (see
    /// [`SolverStats::avg_core_size`]).
    pub core_size_sum: u64,
    /// Binary clauses added by hyper-binary resolution during probing.
    pub hbr_binaries_added: u64,
    /// Learned clauses evicted from the mid (tier2) clause-database tier.
    pub deleted_tier2: u64,
    /// Learned clauses evicted from the local (high-LBD) tier.
    pub deleted_local: u64,
    /// Queries the checker's minimal-UB-set loop skipped because the last
    /// extracted assumption core already proved them `Unsat`.
    pub minimization_queries_saved: u64,
}

impl SolverStats {
    /// Fold another solver's counters into this one. The parallel checker
    /// runs one [`BvSolver`] per worker thread and merges their statistics
    /// at the end; summing every field keeps the aggregate identical to what
    /// a single sequential solver would have reported.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.timeouts += other.timeouts;
        self.propagations += other.propagations;
        self.unsat_propagations += other.unsat_propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned_clauses += other.learned_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.lbd_sum += other.lbd_sum;
        self.preprocess_eliminations += other.preprocess_eliminations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.incremental_queries += other.incremental_queries;
        self.reused_clauses += other.reused_clauses;
        self.model_cache_hits += other.model_cache_hits;
        self.core_cache_hits += other.core_cache_hits;
        self.cores_recorded += other.cores_recorded;
        self.core_size_sum += other.core_size_sum;
        self.hbr_binaries_added += other.hbr_binaries_added;
        self.deleted_tier2 += other.deleted_tier2;
        self.deleted_local += other.deleted_local;
        self.minimization_queries_saved += other.minimization_queries_saved;
    }

    /// Average literal-block-distance over all learned clauses (0.0 when
    /// nothing was learned). Low averages mean the solver mostly learns
    /// "glue" clauses that tie few decision levels together.
    pub fn avg_lbd(&self) -> f64 {
        if self.learned_clauses == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.learned_clauses as f64
        }
    }

    /// Average literal count of recorded assumption cores (0.0 when none
    /// were recorded). Small cores answer more future superset queries.
    pub fn avg_core_size(&self) -> f64 {
        if self.cores_recorded == 0 {
            0.0
        } else {
            self.core_size_sum as f64 / self.cores_recorded as f64
        }
    }
}

/// The bit-vector solver.
#[derive(Debug)]
pub struct BvSolver {
    budget: Budget,
    stats: SolverStats,
    store: Option<Arc<dyn QueryStore>>,
    memo: FingerprintMemo,
    /// Whether cache misses are decided by a persistent [`SolverInstance`]
    /// (one per pool epoch) instead of a from-scratch bit-blast.
    incremental: bool,
    /// Whether the SAT core runs its pre/inprocessing layer (on by default).
    preprocess: bool,
    /// In incremental mode, start a fresh [`SolverInstance`] per checker
    /// fragment ([`BvSolver::begin_fragment`]) instead of sharing one across
    /// the whole pool/function.
    fragment_instances: bool,
    /// Whether the SAT core extracts and memoizes assumption cores after
    /// `Unsat` answers (on by default).
    core_cache: bool,
    /// Whether the SAT core runs hyper-binary resolution during probing (on
    /// by default).
    hbr: bool,
    /// The subset of the last `Unsat` [`check`](BvSolver::check) call's
    /// assertion terms that its extracted assumption core maps back to —
    /// already unsatisfiable on their own. `None` after non-`Unsat` answers,
    /// store hits, presimplify shortcuts, fresh-mode solves (no assumptions,
    /// so no assumption core), or with core caching off.
    last_core_terms: Option<Vec<TermId>>,
    instance: Option<SolverInstance>,
    /// Assumption cores shared across this solver's successive instances,
    /// keyed on the blasted formula's fingerprint — structurally identical
    /// functions recur across a scan, and a core one instance derived
    /// answers the identical query in a later instance without search. See
    /// [`SharedCoreCache`].
    shared_cores: Arc<Mutex<SharedCoreCache>>,
}

impl Default for BvSolver {
    fn default() -> BvSolver {
        BvSolver::new()
    }
}

impl BvSolver {
    /// Create a solver with an unlimited per-query budget.
    pub fn new() -> BvSolver {
        BvSolver::with_budget(Budget::unlimited())
    }

    /// Create a solver with a per-query propagation budget (the deterministic
    /// analogue of a per-query timeout).
    pub fn with_budget(budget: Budget) -> BvSolver {
        BvSolver {
            budget,
            stats: SolverStats::default(),
            store: None,
            memo: FingerprintMemo::default(),
            incremental: false,
            preprocess: true,
            fragment_instances: false,
            core_cache: true,
            hbr: true,
            last_core_terms: None,
            instance: None,
            shared_cores: Arc::new(Mutex::new(SharedCoreCache::default())),
        }
    }

    /// Change the per-query budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
        if let Some(instance) = &mut self.instance {
            instance.set_budget(budget);
        }
    }

    /// Enable or disable incremental solving. When enabled, queries that miss
    /// the cache are decided by a persistent [`SolverInstance`] shared by
    /// every query against the same [`TermPool`]: each assertion is
    /// registered as an assumption literal on its first appearance — exactly
    /// once per pool, memoized — and toggled per query, so near-identical
    /// queries (the checker's Figure 8 minimization loop) stop paying
    /// repeated bit-blasting. The instance is replaced whenever the pool
    /// changes (in the checker: one instance per function).
    ///
    /// Registration is deliberately on-demand rather than up-front: encoding
    /// a function's full UB-condition set eagerly measured ~2× slower on
    /// miss-light workloads, because conditions that dominate no queried
    /// fragment were blasted (and then assigned by every Sat answer) for
    /// nothing.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
        if !incremental {
            self.instance = None;
        }
    }

    /// Builder-style variant of [`BvSolver::set_incremental`].
    pub fn with_incremental(mut self, incremental: bool) -> BvSolver {
        self.set_incremental(incremental);
        self
    }

    /// Enable or disable the SAT core's pre/inprocessing layer (on by
    /// default). With preprocessing on, fresh-mode queries run bounded
    /// variable elimination, subsumption/self-subsumption, and failed-literal
    /// probing before the CDCL loop, incremental instances run the
    /// elimination-free subset once before their first query, and the solve
    /// loop vivifies learned clauses between restarts and reduces the clause
    /// database LBD-first. Off restores the pre-LBD solver behaviour — the
    /// benchmark baseline, reachable from the CLI as `--no-preprocess`.
    ///
    /// Decided (`Sat`/`Unsat`) answers are identical either way: every
    /// simplification preserves satisfiability, and `Sat` models are
    /// reconstructed over eliminated variables. Only where a propagation
    /// budget runs out — and therefore which queries degrade to `Unknown` —
    /// can differ between the two settings.
    pub fn set_preprocessing(&mut self, on: bool) {
        self.preprocess = on;
        if let Some(instance) = &mut self.instance {
            instance.set_preprocessing(on);
        }
    }

    /// Builder-style variant of [`BvSolver::set_preprocessing`].
    pub fn with_preprocessing(mut self, on: bool) -> BvSolver {
        self.set_preprocessing(on);
        self
    }

    /// Enable or disable assumption-core memoization (on by default). With
    /// it on, every `Unsat` answer under assumptions extracts the final
    /// conflict's assumption core; future queries assuming a superset of a
    /// recorded core answer `Unsat` in zero propagations, and
    /// [`last_unsat_core`](BvSolver::last_unsat_core) exposes the core's
    /// assertion terms so the checker's minimization loop can skip queries
    /// the core already decides. Off is the exact prior Unsat path,
    /// reachable from the CLI as `--no-core-cache`.
    pub fn set_core_caching(&mut self, on: bool) {
        self.core_cache = on;
        if !on {
            self.last_core_terms = None;
        }
        if let Some(instance) = &mut self.instance {
            instance.set_core_caching(on);
        }
    }

    /// Builder-style variant of [`BvSolver::set_core_caching`].
    pub fn with_core_caching(mut self, on: bool) -> BvSolver {
        self.set_core_caching(on);
        self
    }

    /// Enable or disable hyper-binary resolution during the SAT core's
    /// probing pass (on by default; `--no-hbr` from the CLI).
    pub fn set_hbr(&mut self, on: bool) {
        self.hbr = on;
        if let Some(instance) = &mut self.instance {
            instance.set_hbr(on);
        }
    }

    /// Builder-style variant of [`BvSolver::set_hbr`].
    pub fn with_hbr(mut self, on: bool) -> BvSolver {
        self.set_hbr(on);
        self
    }

    /// The assertion-term core of the last `Unsat` [`check`](BvSolver::check)
    /// answer, when one was extracted: a subset of that call's assertions
    /// already unsatisfiable by itself. Conservative — terms the mapping
    /// cannot prove out of the SAT-level core stay in. `None` whenever no
    /// fresh core is available (see the field docs).
    pub fn last_unsat_core(&self) -> Option<&[TermId]> {
        self.last_core_terms.as_deref()
    }

    /// Record that the checker's minimal-UB-set loop skipped a query an
    /// extracted core already decided (threaded into the scan summary as
    /// `minimization_queries_saved`).
    pub fn note_minimization_saved(&mut self) {
        self.stats.minimization_queries_saved += 1;
    }

    /// Choose the incremental instance granularity: `false` (default) keeps
    /// one [`SolverInstance`] per [`TermPool`] — in the checker, one per
    /// function — while `true` starts a fresh instance at every
    /// [`BvSolver::begin_fragment`] call. Per-fragment instances trade the
    /// shared encoding and learned clauses of the function-wide instance for
    /// smaller CNFs per query; measurement (see `BENCH_checker.json`,
    /// `solver_speed`) says sharing wins, so per-function is the default.
    /// Has no effect outside incremental mode.
    pub fn set_fragment_instances(&mut self, on: bool) {
        self.fragment_instances = on;
    }

    /// Builder-style variant of [`BvSolver::set_fragment_instances`].
    pub fn with_fragment_instances(mut self, on: bool) -> BvSolver {
        self.set_fragment_instances(on);
        self
    }

    /// Notify the solver that the checker is starting a new fragment. In
    /// incremental mode with per-fragment granularity
    /// ([`BvSolver::set_fragment_instances`]) this retires the current
    /// persistent instance so the fragment's queries start on a fresh one;
    /// in every other configuration it is a no-op.
    pub fn begin_fragment(&mut self) {
        if self.incremental && self.fragment_instances {
            self.instance = None;
        }
    }

    /// The persistent instance for `pool`, creating or replacing it as
    /// needed. Only meaningful in incremental mode.
    fn instance_for(&mut self, pool: &TermPool) -> &mut SolverInstance {
        let stale =
            !matches!(&self.instance, Some(i) if i.epoch().is_none_or(|e| e == pool.epoch()));
        if stale {
            let mut instance = SolverInstance::with_budget(self.budget);
            instance.set_preprocessing(self.preprocess);
            instance.set_core_caching(self.core_cache);
            instance.set_hbr(self.hbr);
            if self.core_cache {
                instance.set_shared_cores(Some(Arc::clone(&self.shared_cores)));
            }
            self.instance = Some(instance);
        }
        self.instance.as_mut().expect("instance just ensured")
    }

    /// Replace the cross-instance core store with one shared more widely —
    /// typically session-owned, so cores survive this solver itself and
    /// reach the solvers of later modules. Only consulted with core caching
    /// on; safe to share across threads (the fingerprint key guarantees a
    /// looked-up core belongs to the byte-identical formula, whichever
    /// worker recorded it).
    pub fn set_shared_cores(&mut self, shared: Arc<Mutex<SharedCoreCache>>) {
        self.shared_cores = shared;
        self.instance = None;
    }

    /// Attach (or detach) a memoized query store, typically shared between
    /// several solvers via [`Arc`]. With a store attached, [`check`]
    /// consults it before bit-blasting and inserts every decided result;
    /// budget-exhausted `Unknown` results are never stored. Any
    /// [`QueryStore`] works: the in-memory [`QueryCache`](crate::cache::QueryCache) or the disk-backed
    /// [`DiskQueryStore`](crate::store::DiskQueryStore).
    ///
    /// [`check`]: BvSolver::check
    pub fn set_store(&mut self, store: Option<Arc<dyn QueryStore>>) {
        self.store = store;
    }

    /// Builder-style variant of [`BvSolver::set_store`].
    pub fn with_store(mut self, store: Arc<dyn QueryStore>) -> BvSolver {
        self.store = Some(store);
        self
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Reset the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Check satisfiability of the conjunction of `assertions`.
    ///
    /// The query pipeline is: cheap pre-solve simplification (conjunction
    /// flattening, constant folding, complementary-literal propagation),
    /// then a lookup in the attached [`QueryCache`](crate::cache::QueryCache) (if any), and only on a
    /// miss the full bit-blast + CDCL run. Decided results of full runs are
    /// stored back into the cache.
    pub fn check(&mut self, pool: &TermPool, assertions: &[TermId]) -> QueryResult {
        self.stats.queries += 1;
        // A core is only meaningful for the query that produced it; anything
        // short of a fresh incremental `Unsat` solve leaves this `None`.
        self.last_core_terms = None;

        // Pre-solve simplification of the assertion conjunction.
        let mut simplified = match presimplify(pool, assertions) {
            Presimplified::Unsat(clash) => {
                self.stats.unsat += 1;
                // The clashing pair (or lone `false` conjunct) is an unsat
                // core at the assertion level; expose it so the checker's
                // minimization loop can seed from trivially-decided queries
                // exactly as it does from solved ones.
                if self.core_cache {
                    self.last_core_terms = Some(clash);
                }
                return QueryResult::Unsat;
            }
            Presimplified::Sat => {
                self.stats.sat += 1;
                return QueryResult::Sat(Model::new());
            }
            Presimplified::Open(list) => list,
        };

        // Canonicalize unconditionally (not just when a cache is attached):
        // blasting in fingerprint order makes a fresh-mode CNF — and with it
        // a budget-boundary `Unknown` — depend only on the assertion *set*,
        // so answering a later query from the cache can never disagree with
        // what recomputing it would have produced. That is what keeps
        // parallel, sequential, cached, and uncached runs byte-identical in
        // fresh (non-incremental) mode. Incremental mode weakens this:
        // decided results are still mode- and history-independent facts, but
        // an instance's CNF depends on which earlier queries reached it —
        // under a shared cache and multiple threads, a timing-dependent set —
        // so budget-boundary `Unknown` outcomes (and anything derived from
        // them) are only reproducible on timeout-free workloads. The
        // checker's `--no-incremental` escape hatch restores the strict
        // guarantee.
        let key = self.memo.canonicalize(pool, &mut simplified);
        let key = self.store.is_some().then_some(key);
        if let (Some(store), Some(key)) = (&self.store, &key) {
            if let Some(result) = store.lookup(key) {
                self.stats.cache_hits += 1;
                match &result {
                    QueryResult::Sat(model) => {
                        self.stats.sat += 1;
                        // A cached model came from a structurally identical
                        // query, so it names the same variables; re-check it
                        // against this pool's terms in debug builds. An
                        // empty model is a disk-store hit with the witness
                        // elided (witnesses are process-local), not a claim
                        // that the all-zero assignment satisfies anything.
                        debug_assert!(
                            model.is_empty()
                                || assertions.iter().all(|&a| model.eval_bool(pool, a)),
                            "cached model does not satisfy the assertions"
                        );
                    }
                    QueryResult::Unsat => self.stats.unsat += 1,
                    QueryResult::Unknown => unreachable!("Unknown is never cached"),
                }
                return result;
            }
            self.stats.cache_misses += 1;
        }

        let outcome = if self.incremental {
            self.solve_incremental(pool, &simplified)
        } else {
            self.solve_fresh(pool, &simplified)
        };
        if self.incremental && outcome.is_unsat() {
            // `solve_with` actually ran for this query (the store missed and
            // root-unsat preprocessing falls through to it), so the
            // instance's `last_core` — if any — belongs to exactly this
            // assumption set and can be mapped back to assertion terms.
            self.last_core_terms = self.core_terms(assertions, &simplified);
        }
        match &outcome {
            QueryResult::Unsat => self.stats.unsat += 1,
            QueryResult::Unknown => self.stats.timeouts += 1,
            QueryResult::Sat(model) => {
                self.stats.sat += 1;
                // Sanity-check the extracted model against term semantics in
                // debug builds: every assertion must evaluate to true.
                debug_assert!(
                    assertions.iter().all(|&a| model.eval_bool(pool, a)),
                    "extracted model does not satisfy the assertions"
                );
            }
        }
        if let (Some(store), Some(key)) = (&self.store, key) {
            store.insert(key, &outcome);
        }
        outcome
    }

    /// Map the SAT-level assumption core of the last incremental `Unsat`
    /// back to assertion terms, conservatively: an assertion is dropped only
    /// when it provably sits outside the core — it survived presimplification
    /// as itself (so its registered literal *is* its assumption literal, not
    /// a literal hidden by flattening or dedup) and that literal is not in
    /// the core. Everything the mapping cannot account for stays in, which
    /// keeps the returned set unsatisfiable.
    fn core_terms(&self, assertions: &[TermId], simplified: &[TermId]) -> Option<Vec<TermId>> {
        let instance = self.instance.as_ref()?;
        let core = instance.last_core()?;
        let kept: Vec<TermId> = assertions
            .iter()
            .copied()
            .filter(|&t| {
                if !simplified.contains(&t) {
                    return true; // rewritten away; cannot attribute — keep
                }
                match instance.registered_literal(t) {
                    Some(l) => core.contains(&l),
                    None => true,
                }
            })
            .collect();
        Some(kept)
    }

    /// Decide a (pre-simplified) assertion set with a throwaway SAT instance:
    /// blast every assertion, assert its literal, solve once.
    fn solve_fresh(&mut self, pool: &TermPool, simplified: &[TermId]) -> QueryResult {
        let mut sat = SatSolver::new();
        sat.set_preprocessing(self.preprocess);
        sat.set_core_caching(self.core_cache);
        sat.set_hbr(self.hbr);
        let mut blaster = BitBlaster::new();
        for &a in simplified {
            let lit = blaster.blast_bool(pool, &mut sat, a);
            sat.add_clause(&[lit]);
        }
        // The instance is throwaway, so the full preprocessing pass — with
        // bounded variable elimination, which is only sound when no further
        // clauses will be added — runs before the solve. Its cost is charged
        // to the same budget the solve uses.
        let result = match sat.preprocess(self.budget, true) {
            Some(decided) => decided,
            None => sat.solve_with(&[], self.budget),
        };
        self.accumulate_sat_stats(&sat.stats());
        if matches!(result, SatResult::Unsat) {
            // Search work only: the one-shot preprocessing pass is instance
            // setup, not a cost of answering Unsat.
            self.stats.unsat_propagations +=
                sat.stats().propagations - sat.stats().preprocess_propagations;
        }
        match result {
            SatResult::Unsat => QueryResult::Unsat,
            SatResult::Unknown => QueryResult::Unknown,
            SatResult::Sat => QueryResult::Sat(blaster.extract_model(&sat)),
        }
    }

    /// Fold a SAT core's counters into the aggregate statistics.
    fn accumulate_sat_stats(&mut self, sat: &crate::sat::SatStats) {
        self.stats.propagations += sat.propagations;
        self.stats.conflicts += sat.conflicts;
        self.stats.restarts += sat.restarts;
        self.stats.learned_clauses += sat.learned_clauses;
        self.stats.deleted_clauses += sat.deleted_clauses;
        self.stats.lbd_sum += sat.lbd_sum;
        self.stats.preprocess_eliminations += sat.preprocess_eliminations;
        self.stats.model_cache_hits += sat.model_cache_hits;
        self.stats.core_cache_hits += sat.core_cache_hits;
        self.stats.cores_recorded += sat.cores_recorded;
        self.stats.core_size_sum += sat.core_size_sum;
        self.stats.hbr_binaries_added += sat.hbr_binaries_added;
        self.stats.deleted_tier2 += sat.deleted_tier2;
        self.stats.deleted_local += sat.deleted_local;
    }

    /// Decide a (pre-simplified) assertion set on the persistent instance for
    /// this pool: register each assertion as an assumption literal (a cache
    /// lookup for everything already encoded) and solve under assumptions.
    fn solve_incremental(&mut self, pool: &TermPool, simplified: &[TermId]) -> QueryResult {
        let instance = self.instance_for(pool);
        let (sat_before, inst_before) = (instance.sat_stats(), instance.stats());
        let outcome = instance.check_terms(pool, simplified);
        let (sat_after, inst_after) = (instance.sat_stats(), instance.stats());
        self.stats.propagations += sat_after.propagations - sat_before.propagations;
        if outcome.is_unsat() {
            // Charge search work only: the instance's one-shot preprocessing
            // pass and restart-time vivification are amortized maintenance,
            // not a cost of the query that happened to trigger them.
            let d = (sat_after.propagations - sat_before.propagations)
                - (sat_after.preprocess_propagations - sat_before.preprocess_propagations);
            self.stats.unsat_propagations += d;
        }
        self.stats.conflicts += sat_after.conflicts - sat_before.conflicts;
        self.stats.restarts += sat_after.restarts - sat_before.restarts;
        self.stats.learned_clauses += sat_after.learned_clauses - sat_before.learned_clauses;
        self.stats.deleted_clauses += sat_after.deleted_clauses - sat_before.deleted_clauses;
        self.stats.lbd_sum += sat_after.lbd_sum - sat_before.lbd_sum;
        self.stats.preprocess_eliminations +=
            sat_after.preprocess_eliminations - sat_before.preprocess_eliminations;
        self.stats.model_cache_hits += sat_after.model_cache_hits - sat_before.model_cache_hits;
        self.stats.core_cache_hits += sat_after.core_cache_hits - sat_before.core_cache_hits;
        self.stats.cores_recorded += sat_after.cores_recorded - sat_before.cores_recorded;
        self.stats.core_size_sum += sat_after.core_size_sum - sat_before.core_size_sum;
        self.stats.hbr_binaries_added +=
            sat_after.hbr_binaries_added - sat_before.hbr_binaries_added;
        self.stats.deleted_tier2 += sat_after.deleted_tier2 - sat_before.deleted_tier2;
        self.stats.deleted_local += sat_after.deleted_local - sat_before.deleted_local;
        self.stats.incremental_queries += 1;
        self.stats.reused_clauses += inst_after.reused_clauses - inst_before.reused_clauses;
        outcome
    }

    /// Check whether a single boolean term is satisfiable.
    pub fn check_one(&mut self, pool: &TermPool, assertion: TermId) -> QueryResult {
        self.check(pool, &[assertion])
    }

    /// Check whether `a` and `b` are equivalent (i.e. `a != b` is UNSAT).
    /// Both terms must be boolean.
    pub fn equivalent(&mut self, pool: &mut TermPool, a: TermId, b: TermId) -> bool {
        let distinct = pool.xor(a, b);
        self.check_one(pool, distinct).is_unsat()
    }

    /// Check whether `assumption -> conclusion` is valid.
    pub fn implies(&mut self, pool: &mut TermPool, assumption: TermId, conclusion: TermId) -> bool {
        let not_conclusion = pool.not(conclusion);
        let counterexample = pool.and(assumption, not_conclusion);
        self.check_one(pool, counterexample).is_unsat()
    }
}

/// Outcome of the pre-solve simplification of an assertion conjunction.
enum Presimplified {
    /// The conjunction is trivially false. Carries the top-level assertions
    /// that witness the contradiction — the one folding to `false`, or the
    /// pair whose flattened conjuncts complement each other — which form an
    /// unsat core of the query on their own.
    Unsat(Vec<TermId>),
    /// The conjunction is trivially true (empty after simplification).
    Sat,
    /// The remaining, flattened, deduplicated assertions.
    Open(Vec<TermId>),
}

/// Cheap pre-solve simplification of the assertion conjunction, run before
/// CNF conversion:
///
/// * **flattening** — a top-level `And(a, b)` assertion is split into the
///   assertions `a` and `b` (recursively), so the bit-blaster asserts the
///   conjuncts directly instead of building gate literals for them, and so
///   the cache key for `[and(a, b)]` coincides with the one for `[a, b]`;
/// * **constant folding** — `true` conjuncts are dropped, a `false` conjunct
///   decides the query (term constructors already fold ground subterms, so
///   this is a lookup, not an evaluation);
/// * **unit propagation** over asserted literals — duplicated conjuncts
///   collapse, and a conjunct asserted both positively and under a negation
///   (`t` and `not t`) decides the query as UNSAT.
fn presimplify(pool: &TermPool, assertions: &[TermId]) -> Presimplified {
    // `seen` maps each flattened conjunct to the index of the top-level
    // assertion it descends from, so a contradiction can name its witnesses.
    let mut out = Vec::with_capacity(assertions.len());
    let mut seen: HashMap<TermId, usize> = HashMap::with_capacity(assertions.len());
    let mut work: Vec<(TermId, usize)> = assertions
        .iter()
        .enumerate()
        .rev()
        .map(|(i, &t)| (t, i))
        .collect();
    let clash = |i: usize, j: usize| {
        let mut core = vec![assertions[i], assertions[j]];
        core.dedup();
        Presimplified::Unsat(core)
    };
    while let Some((t, origin)) = work.pop() {
        debug_assert!(pool.sort(t).is_bool());
        match &pool.term(t).kind {
            TermKind::BoolConst(true) => {}
            TermKind::BoolConst(false) => {
                return Presimplified::Unsat(vec![assertions[origin]]);
            }
            TermKind::And(a, b) => {
                // Preserve left-to-right order of the conjuncts.
                work.push((*b, origin));
                work.push((*a, origin));
            }
            TermKind::Not(inner) if seen.contains_key(inner) => {
                return clash(seen[inner], origin);
            }
            _ => {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(t) {
                    e.insert(origin);
                    out.push(t);
                }
            }
        }
    }
    // Second pass for complements discovered out of order (`t` asserted
    // after `not t`): any asserted `Not(x)` whose `x` is also asserted.
    for &t in &out {
        if let TermKind::Not(inner) = &pool.term(t).kind {
            if seen.contains_key(inner) {
                return clash(seen[&t], seen[inner]);
            }
        }
    }
    if out.is_empty() {
        Presimplified::Sat
    } else {
        Presimplified::Open(out)
    }
}

/// Collect the free variables of a term (name and sort), in first-occurrence
/// order. Useful for diagnostics and for the property-test harness.
pub fn free_variables(pool: &TermPool, term: TermId) -> Vec<(String, Sort)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![term];
    let mut visited = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        if !visited.insert(t) {
            continue;
        }
        match &pool.term(t).kind {
            TermKind::Var { name, sort } => {
                if seen.insert(name.clone()) {
                    out.push((name.clone(), *sort));
                }
            }
            TermKind::BoolConst(_) | TermKind::BvConst { .. } => {}
            TermKind::Not(a)
            | TermKind::BvNot(a)
            | TermKind::BvNeg(a)
            | TermKind::ZExt { value: a, .. }
            | TermKind::SExt { value: a, .. }
            | TermKind::Extract { value: a, .. } => stack.push(*a),
            TermKind::And(a, b)
            | TermKind::Or(a, b)
            | TermKind::Xor(a, b)
            | TermKind::Implies(a, b)
            | TermKind::Eq(a, b)
            | TermKind::BvAdd(a, b)
            | TermKind::BvSub(a, b)
            | TermKind::BvMul(a, b)
            | TermKind::BvUdiv(a, b)
            | TermKind::BvSdiv(a, b)
            | TermKind::BvUrem(a, b)
            | TermKind::BvSrem(a, b)
            | TermKind::BvAnd(a, b)
            | TermKind::BvOr(a, b)
            | TermKind::BvXor(a, b)
            | TermKind::BvShl(a, b)
            | TermKind::BvLshr(a, b)
            | TermKind::BvAshr(a, b)
            | TermKind::BvUlt(a, b)
            | TermKind::BvUle(a, b)
            | TermKind::BvSlt(a, b)
            | TermKind::BvSle(a, b)
            | TermKind::Concat(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            TermKind::Ite(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_queries() {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let t = pool.bool_const(true);
        let f = pool.bool_const(false);
        assert!(solver.check(&pool, &[t]).is_sat());
        assert!(solver.check(&pool, &[t, f]).is_unsat());
        assert!(solver.check(&pool, &[]).is_sat());
        assert_eq!(solver.stats().queries, 3);
    }

    #[test]
    fn model_satisfies_assertions() {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let x = pool.bv_var("x", 16);
        let y = pool.bv_var("y", 16);
        let c1000 = pool.bv_const(16, 1000);
        let sum = pool.bv_add(x, y);
        let a1 = pool.eq(sum, c1000);
        let c10 = pool.bv_const(16, 10);
        let a2 = pool.bv_ugt(x, c10);
        let a3 = pool.bv_ugt(y, c10);
        match solver.check(&pool, &[a1, a2, a3]) {
            QueryResult::Sat(model) => {
                assert!(model.eval_bool(&pool, a1));
                assert!(model.eval_bool(&pool, a2));
                assert!(model.eval_bool(&pool, a3));
                let xv = model.get("x");
                let yv = model.get("y");
                assert_eq!((xv + yv) & 0xFFFF, 1000);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn signed_overflow_check_contradiction() {
        // The classic x + 100 < x (signed) is UNSAT once signed overflow is
        // excluded: encode the no-overflow side condition explicitly.
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let x = pool.bv_var("x", 32);
        let c100 = pool.bv_const(32, 100);
        let sum = pool.bv_add(x, c100);
        let check = pool.bv_slt(sum, x);
        // No-overflow condition for x + 100 with positive 100: the 33-bit sum
        // equals the sign-extended 32-bit sum.
        let x64 = pool.sext(x, 33);
        let c64 = pool.sext(c100, 33);
        let wide = pool.bv_add(x64, c64);
        let narrow = pool.sext(sum, 33);
        let no_ovf = pool.eq(wide, narrow);
        assert!(solver.check(&pool, &[check, no_ovf]).is_unsat());
        // Without the assumption it is satisfiable (wrap-around exists).
        assert!(solver.check(&pool, &[check]).is_sat());
    }

    #[test]
    fn budget_produces_unknown() {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::with_budget(Budget::propagations(10));
        // A multiplication equality needs real work; with a 10-propagation
        // budget the solver must give up.
        let x = pool.bv_var("x", 24);
        let y = pool.bv_var("y", 24);
        let prod = pool.bv_mul(x, y);
        let c = pool.bv_const(24, 0x123457);
        let eq = pool.eq(prod, c);
        let one = pool.bv_const(24, 1);
        let xg = pool.bv_ugt(x, one);
        let yg = pool.bv_ugt(y, one);
        let result = solver.check(&pool, &[eq, xg, yg]);
        assert!(result.is_unknown());
        assert_eq!(solver.stats().timeouts, 1);
    }

    #[test]
    fn equivalence_and_implication_helpers() {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let x = pool.bv_var("x", 8);
        let zero = pool.bv_const(8, 0);
        let a = pool.bv_slt(x, zero);
        // x < 0 (signed) is equivalent to the sign bit being set.
        let sign = pool.extract(x, 7, 7);
        let one1 = pool.bv_const(1, 1);
        let b = pool.eq(sign, one1);
        assert!(solver.equivalent(&mut pool, a, b));
        // x == 0 implies x <= 5 unsigned.
        let is_zero = pool.eq(x, zero);
        let five = pool.bv_const(8, 5);
        let le5 = pool.bv_ule(x, five);
        assert!(solver.implies(&mut pool, is_zero, le5));
        assert!(!solver.implies(&mut pool, le5, is_zero));
    }

    #[test]
    fn incremental_mode_agrees_with_fresh_mode() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 16);
        let c1 = pool.bv_const(16, 1);
        let sum = pool.bv_add(x, c1);
        let wrap = pool.bv_slt(sum, x); // x + 1 < x (signed)
        let zero = pool.bv_const(16, 0);
        let pos = pool.bv_sgt(x, zero);
        let neg = pool.bv_slt(x, zero);
        let queries: Vec<Vec<TermId>> = vec![
            vec![wrap],
            vec![wrap, pos],
            vec![wrap, neg],
            vec![pos, neg],
            vec![wrap, pos, neg],
            vec![wrap], // repeat: still answered by the warm instance
        ];
        let mut fresh = BvSolver::new();
        let mut incremental = BvSolver::new().with_incremental(true);
        for q in &queries {
            let a = fresh.check(&pool, q);
            let b = incremental.check(&pool, q);
            assert_eq!(a.is_sat(), b.is_sat(), "query {q:?}");
            assert_eq!(a.is_unsat(), b.is_unsat(), "query {q:?}");
        }
        let stats = incremental.stats();
        assert_eq!(stats.incremental_queries, queries.len() as u64);
        assert!(stats.reused_clauses > 0);
        assert_eq!(fresh.stats().incremental_queries, 0);
    }

    #[test]
    fn incremental_instance_is_replaced_per_pool() {
        let mut solver = BvSolver::new().with_incremental(true);
        for _ in 0..2 {
            let mut pool = TermPool::new();
            let x = pool.bv_var("x", 8);
            let zero = pool.bv_const(8, 0);
            let q = pool.bv_slt(x, zero);
            assert!(solver.check(&pool, &[q]).is_sat());
        }
        assert_eq!(solver.stats().incremental_queries, 2);
        // The second pool's query started on a fresh instance (no clause
        // carry-over across pools), so nothing was reused.
        assert_eq!(solver.stats().reused_clauses, 0);
    }

    #[test]
    fn free_variable_collection() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 8);
        let y = pool.bv_var("y", 8);
        let b = pool.bool_var("flag");
        let sum = pool.bv_add(x, y);
        let cmp = pool.bv_ult(sum, x);
        let both = pool.and(cmp, b);
        let vars = free_variables(&pool, both);
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(vars.len(), 3);
        assert!(names.contains(&"x"));
        assert!(names.contains(&"y"));
        assert!(names.contains(&"flag"));
    }
}
