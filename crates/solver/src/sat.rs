//! A CDCL SAT solver.
//!
//! The solver implements the standard conflict-driven clause learning loop:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause minimization by self-subsumption against reason clauses, VSIDS
//! variable activity with phase saving, Luby restarts, and learned-clause
//! database reduction keyed on literal block distance (LBD, "glue"). It
//! supports solving under assumptions (needed by the minimal-UB-set
//! computation in the checker) and a deterministic resource budget measured
//! in propagations so that "timeouts" are reproducible.
//!
//! On top of the search loop sits a deterministic simplification layer
//! ([`preprocess`](SatSolver::preprocess)): failed-literal probing at the
//! root level, clause subsumption + self-subsumption strengthening, and
//! (for one-shot solving) bounded variable elimination with model
//! reconstruction, plus periodic clause vivification between restarts. All
//! of it is charged against the same propagation budget as the search
//! itself, so a degraded `Unknown` verdict is byte-reproducible no matter
//! where the budget ran out.

use crate::cnf::{Clause, ClauseDb, ClauseRef};
use crate::lit::{LBool, Lit, Var};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Capacity of a per-solver assumption-core cache (both the instance-local
/// list and each formula's bucket in the shared store).
const CORE_CACHE: usize = 32;

/// Assumption cores shared across solver instances, keyed on a formula
/// fingerprint. Structurally identical functions bit-blast to identical
/// clause sequences over identically numbered variables, so their
/// instances compute the same fingerprint — and a core recorded by one is
/// a valid core for the others (the formulas are equal, not merely
/// similar, so entailment carries over verbatim). Instances with any
/// difference in their clause stream get different keys and never share.
///
/// The store is owned by a [`BvSolver`](crate::solver::BvSolver) (one per
/// worker) and handed to each of its instances; the mutex makes the handle
/// `Send` but is never contended. Bounded FIFO over formula keys.
#[derive(Default, Debug)]
pub struct SharedCoreCache {
    map: HashMap<(u64, u64), Vec<Vec<Lit>>>,
    order: VecDeque<(u64, u64)>,
}

/// Formula keys retained in a [`SharedCoreCache`] before FIFO eviction.
const SHARED_CORE_KEYS: usize = 256;

impl SharedCoreCache {
    /// A cached core of the fingerprinted formula that the assumption set
    /// covers, if any.
    fn lookup(&self, fp: (u64, u64), assumptions: &[Lit]) -> Option<Vec<Lit>> {
        self.map.get(&fp)?.iter().find_map(|core| {
            core.iter()
                .all(|l| assumptions.contains(l))
                .then(|| core.clone())
        })
    }

    /// Bank a core under the formula's fingerprint, dropping entries the
    /// new core subsumes (same policy as the instance-local cache).
    fn record(&mut self, fp: (u64, u64), core: &[Lit]) {
        if !self.map.contains_key(&fp) {
            if self.order.len() == SHARED_CORE_KEYS {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
            self.order.push_back(fp);
        }
        let bucket = self.map.entry(fp).or_default();
        if bucket.iter().any(|c| c.iter().all(|l| core.contains(l))) {
            return;
        }
        bucket.retain(|c| !core.iter().all(|l| c.contains(l)));
        if bucket.len() == CORE_CACHE {
            bucket.remove(0);
        }
        bucket.push(core.to_vec());
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The resource budget was exhausted before a decision was reached.
    Unknown,
}

/// A watcher entry: a clause reference plus a "blocker" literal that is often
/// already true, letting propagation skip the clause without touching it.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Deterministic resource budget for a single `solve` call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of unit propagations; `u64::MAX` means unlimited.
    pub max_propagations: u64,
    /// Maximum number of conflicts; `u64::MAX` means unlimited.
    pub max_conflicts: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_propagations: u64::MAX,
            max_conflicts: u64::MAX,
        }
    }
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget bounded by a number of propagations.
    pub fn propagations(n: u64) -> Budget {
        Budget {
            max_propagations: n,
            max_conflicts: u64::MAX,
        }
    }
}

/// Statistics accumulated across `solve` calls.
#[derive(Clone, Copy, Default, Debug)]
pub struct SatStats {
    pub decisions: u64,
    pub propagations: u64,
    /// The subset of `propagations` spent inside the pre/inprocessing
    /// passes (probing + HBR harvest, subsumption, BVE, vivification).
    /// Instance setup and restart-time maintenance, not per-query search —
    /// callers attributing propagation cost to individual queries subtract
    /// this so the query that happens to trigger a pass is not charged for
    /// work amortized across the whole instance.
    pub preprocess_propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub learned_literals: u64,
    /// Clauses learned by conflict analysis.
    pub learned_clauses: u64,
    /// Learned clauses evicted by database reduction.
    pub deleted_clauses: u64,
    /// Sum of learn-time LBD over all learned clauses; the average glue is
    /// `lbd_sum / learned_clauses`.
    pub lbd_sum: u64,
    /// Facts removed by pre/inprocessing: eliminated variables, subsumed
    /// clauses, strengthened literals, failed literals, vivified clauses.
    pub preprocess_eliminations: u64,
    /// `Sat` answers served from the still-valid trail or the cached-model
    /// store in zero propagations.
    pub model_cache_hits: u64,
    /// `Unsat` answers served from the assumption-core cache in zero
    /// propagations.
    pub core_cache_hits: u64,
    /// Assumption cores extracted after `Unsat` answers and stored in the
    /// core cache.
    pub cores_recorded: u64,
    /// Sum of literal counts over recorded cores; the average core size is
    /// `core_size_sum / cores_recorded`.
    pub core_size_sum: u64,
    /// Binary clauses added by hyper-binary resolution during probing.
    pub hbr_binaries_added: u64,
    /// Learned clauses evicted from the mid (tier2) tier for staying unused
    /// across a whole sweep interval.
    pub deleted_tier2: u64,
    /// Learned clauses evicted from the local (high-LBD) tier.
    pub deleted_local: u64,
}

impl SatStats {
    /// Average learn-time LBD over all learned clauses (0 when nothing was
    /// learned).
    pub fn avg_lbd(&self) -> f64 {
        if self.learned_clauses == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.learned_clauses as f64
        }
    }

    /// Average literal count of recorded assumption cores (0 when none were
    /// recorded).
    pub fn avg_core_size(&self) -> f64 {
        if self.cores_recorded == 0 {
            0.0
        } else {
            self.core_size_sum as f64 / self.cores_recorded as f64
        }
    }
}

/// The CDCL solver.
pub struct SatSolver {
    clauses: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    /// Binary clauses get a dedicated implication list per literal (the
    /// other literal plus the clause reference for conflict analysis), so
    /// propagating them never dereferences clause memory — on blasted
    /// circuits binary clauses dominate the watch traffic, and this is the
    /// difference between one cache line and three per implication. Only
    /// populated when `preprocessing` is on; with it off every clause goes
    /// through the plain watch lists, reproducing the prior solver.
    binary_watches: Vec<Vec<(Lit, ClauseRef)>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable, used as the decision polarity.
    phases: Vec<bool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Binary-heap order of unassigned variables by activity.
    heap: Vec<Var>,
    heap_index: Vec<Option<usize>>,
    /// Scratch space for conflict analysis.
    seen: Vec<bool>,
    /// Whether the root-level formula is already known to be unsatisfiable.
    unsat: bool,
    stats: SatStats,
    budget_propagations: u64,
    budget_conflicts: u64,
    /// Conflicts seen in the current solve call (for budget accounting).
    solve_conflicts: u64,
    solve_propagations: u64,
    /// Budget-charged work a `preprocess` call performed; consumed (counted
    /// against the budget) by the next `solve_with` call.
    carryover: u64,
    max_learned: usize,
    /// Whether pre/inprocessing and LBD-aware reduction are enabled
    /// (disabling reverts to the plain activity-only CDCL loop).
    preprocessing: bool,
    /// Variables removed by bounded variable elimination; never decided,
    /// their model values come from reconstruction.
    eliminated: Vec<bool>,
    /// Elimination stack: each eliminated variable with the clauses it
    /// occurred in, replayed in reverse to reconstruct Sat models.
    elim: Vec<(Var, Vec<Vec<Lit>>)>,
    /// Reconstructed model values for eliminated variables, refreshed after
    /// every Sat answer.
    elim_values: Vec<LBool>,
    /// The assumption sequence the current trail's decision levels were
    /// established for (level i+1 holds assumption i). Lets the next
    /// `solve_with` keep the still-matching prefix of the trail instead of
    /// re-propagating the whole circuit from the root — consecutive queries
    /// on one instance typically share all but one assumption. Only
    /// maintained when `preprocessing` is on.
    last_assumptions: Vec<Lit>,
    /// Whether the trail currently holds the total assignment of the last
    /// `Sat` answer with the formula unchanged since. If that model already
    /// satisfies the next query's assumptions it is a witness for that query
    /// too, and the solve is answered in zero propagations. Cleared by
    /// anything that touches the formula or the trail from outside.
    model_valid: bool,
    /// Recent total models (newest last), kept in side storage so they
    /// survive Unsat queries and trail churn. Every derived clause (learned,
    /// probed, strengthened) is entailed by the original formula, so a total
    /// model stays a model until `add_clause` grows the formula — the only
    /// point that clears this cache. Checked at solve entry: any cached
    /// model satisfying all assumptions answers `Sat` in zero propagations.
    cached_models: Vec<Vec<bool>>,
    /// Index into `cached_models` the last `Sat` answer was served from,
    /// so `model_value` reads the witness that was actually returned rather
    /// than whatever the trail holds. Cleared at the next solve call.
    cached_model_hit: Option<usize>,
    /// Whether assumption-core extraction and the core cache are enabled.
    /// The Unsat mirror of the model cache; see `core_cache`.
    core_caching: bool,
    /// Whether hyper-binary resolution runs during failed-literal probing.
    hbr: bool,
    /// Cached assumption cores (each sorted by literal index). Every core is
    /// entailed-Unsat by the formula, and `add_clause` only adds constraints,
    /// so a core stays Unsat forever: any later query whose assumption set is
    /// a superset of a cached core is answered `Unsat` in zero propagations.
    /// Never invalidated; bounded FIFO (see `record_core`).
    core_cache: Vec<Vec<Lit>>,
    /// The assumption core of the last `Unsat` answer (empty when the
    /// formula itself is root-unsat), for callers seeding minimization.
    /// `None` after `Sat`/`Unknown` answers or when core caching is off.
    last_core: Option<Vec<Lit>>,
    /// Core clauses (`!a1 | ... | !ak` for a recorded core `{a1..ak}`)
    /// waiting to be attached. A core clause is formula-entailed, so
    /// learning it is sound and keeps cached models valid; it lets related
    /// later queries conflict after propagating just the core's assumptions
    /// instead of re-deriving the refutation. Attachment is deferred to the
    /// next solve's root level because at record time assumption literals
    /// are still assigned on the trail.
    pending_core_clauses: Vec<Vec<Lit>>,
    /// Fingerprint of the original formula: a running two-lane hash over
    /// every `new_var` and the raw literals of every `add_clause` call, in
    /// order. Learned clauses never fold in, so two instances fed the same
    /// variable/clause stream keep equal fingerprints regardless of search
    /// history — the key for [`SharedCoreCache`].
    formula_fp: (u64, u64),
    /// Cross-instance core store, if the owning solver attached one.
    shared_cores: Option<Arc<Mutex<SharedCoreCache>>>,
    /// Count of `reduce_db` invocations, pacing the tier2 sweep cadence.
    reduce_calls: u64,
}

impl Default for SatSolver {
    fn default() -> SatSolver {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Create an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: ClauseDb::new(),
            watches: Vec::new(),
            binary_watches: Vec::new(),
            last_assumptions: Vec::new(),
            model_valid: false,
            cached_models: Vec::new(),
            cached_model_hit: None,
            assigns: Vec::new(),
            phases: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SatStats::default(),
            budget_propagations: u64::MAX,
            budget_conflicts: u64::MAX,
            solve_conflicts: 0,
            solve_propagations: 0,
            carryover: 0,
            max_learned: 4000,
            preprocessing: true,
            eliminated: Vec::new(),
            elim: Vec::new(),
            elim_values: Vec::new(),
            core_caching: true,
            hbr: true,
            core_cache: Vec::new(),
            last_core: None,
            pending_core_clauses: Vec::new(),
            formula_fp: (0xcbf2_9ce4_8422_2325, 0x9e37_79b9_7f4a_7c15),
            shared_cores: None,
            reduce_calls: 0,
        }
    }

    /// Fold one datum into the formula fingerprint. Two independent lanes
    /// (FNV-1a style and a rotate-multiply mix) so an accidental collision
    /// needs to defeat both at once.
    fn fp_fold(&mut self, datum: u64) {
        let (a, b) = self.formula_fp;
        self.formula_fp = (
            (a ^ datum).wrapping_mul(0x0000_0100_0000_01b3),
            b.rotate_left(23)
                .wrapping_add(datum)
                .wrapping_mul(0xc6a4_a793_5bd1_e995),
        );
    }

    /// Attach the owning solver's cross-instance core store. Queries then
    /// consult it (after the instance-local cache) and recorded cores are
    /// banked in it under the current formula fingerprint.
    pub fn set_shared_cores(&mut self, shared: Option<Arc<Mutex<SharedCoreCache>>>) {
        self.shared_cores = shared;
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.fp_fold(u64::MAX);
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phases.push(false);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.binary_watches.push(Vec::new());
        self.binary_watches.push(Vec::new());
        self.heap_index.push(None);
        self.eliminated.push(false);
        self.elim_values.push(LBool::Undef);
        self.heap_insert(v);
        v
    }

    /// Enable or disable pre/inprocessing and LBD-aware clause management.
    /// With it off, [`preprocess`](SatSolver::preprocess) is a no-op, no
    /// vivification runs between restarts, and database reduction falls back
    /// to the plain activity ordering — the pre-LBD solver, kept reachable
    /// as the benchmark baseline and via `--no-preprocess`.
    pub fn set_preprocessing(&mut self, on: bool) {
        self.preprocessing = on;
    }

    /// Enable or disable assumption-core extraction and memoization. With it
    /// off, `Unsat` answers record no core, the core cache is never
    /// consulted, and [`last_core`](SatSolver::last_core) stays `None` — the
    /// exact PR 9 Unsat path, kept reachable via `--no-core-cache`.
    pub fn set_core_caching(&mut self, on: bool) {
        self.core_caching = on;
        if !on {
            self.core_cache.clear();
            self.last_core = None;
            self.pending_core_clauses.clear();
        }
    }

    /// Enable or disable hyper-binary resolution during failed-literal
    /// probing (`--no-hbr` reverts to plain probing).
    pub fn set_hbr(&mut self, on: bool) {
        self.hbr = on;
    }

    /// The assumption core of the last `Unsat` answer: a subset of the
    /// query's assumptions that is already unsatisfiable with the formula
    /// (empty when the formula is root-unsat, so *any* assumption set is
    /// Unsat). `None` after non-`Unsat` answers or with core caching off.
    pub fn last_core(&self) -> Option<&[Lit]> {
        self.last_core.as_deref()
    }

    /// The currently cached assumption cores (each sorted by literal index).
    /// Exposed for tests that re-solve cores fresh to audit soundness.
    pub fn cached_cores(&self) -> &[Vec<Lit>] {
        &self.core_cache
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clause slots in the database (original and learned,
    /// including slots whose clause was deleted by database reduction).
    /// Incremental callers use this to measure how much already-loaded
    /// formula a [`solve_with`](SatSolver::solve_with) call reuses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Undo every assignment above the root decision level.
    ///
    /// After a `Sat` answer the trail is intentionally left intact so
    /// [`model_value`](SatSolver::model_value) can read the assignment;
    /// incremental callers must return to the root level before adding more
    /// clauses. Calling this at the root level is a no-op.
    pub fn cancel_until_root(&mut self) {
        self.model_valid = false;
        self.backtrack(0);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Current truth value of a literal.
    fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.assigns[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Current decision level.
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause to the formula. Returns `false` if the clause makes the
    /// formula trivially unsatisfiable at the root level.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // Fingerprint the raw clause as given, before any normalization —
        // normalization depends on the root trail, and the fingerprint must
        // be a pure function of the caller's variable/clause stream.
        for &lit in lits {
            self.fp_fold(lit.index() as u64);
        }
        self.fp_fold(u64::MAX - 1);
        // Clauses join the formula at the root: cancel any leftover trail
        // (kept around between solves so a later query can reuse it) before
        // normalizing against root values. The old models no longer speak
        // for the grown formula.
        self.model_valid = false;
        self.cached_models.clear();
        self.cached_model_hit = None;
        self.backtrack(0);
        if self.unsat {
            return false;
        }
        // Normalize: drop duplicate and false literals, detect tautologies
        // and already-satisfied clauses.
        let mut norm: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.value_lit(lit) {
                LBool::True => return true,
                LBool::False => continue,
                LBool::Undef => {}
            }
            if norm.contains(&!lit) {
                return true; // tautology
            }
            if !norm.contains(&lit) {
                norm.push(lit);
            }
        }
        match norm.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(norm[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.clauses.add(Clause::new(norm, false));
                self.attach(cref);
                true
            }
        }
    }

    /// Attach the first two literals of a clause to the watch lists. Binary
    /// clauses go to the dedicated implication lists when pre/inprocessing
    /// is enabled (see `binary_watches`); a clause stays wherever it was
    /// attached until detached, so flipping the flag mid-life is safe.
    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1, binary) = {
            let c = self.clauses.get(cref);
            (c.lits[0], c.lits[1], c.len() == 2)
        };
        if binary && self.preprocessing {
            self.binary_watches[(!l0).index()].push((l1, cref));
            self.binary_watches[(!l1).index()].push((l0, cref));
        } else {
            self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
        }
    }

    /// Assign a literal true, recording its reason clause.
    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.value_lit(lit).is_undef());
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.phases[v.index()] = lit.is_positive();
        self.levels[v.index()] = self.decision_level();
        self.reasons[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause if a conflict arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            self.solve_propagations += 1;

            // Binary implications first: the watch entry carries everything
            // needed, so no clause memory is touched. The list is never
            // mutated while scanning (enqueue only grows the trail).
            let mut k = 0;
            while k < self.binary_watches[p.index()].len() {
                let (other, cref) = self.binary_watches[p.index()][k];
                k += 1;
                match self.value_lit(other) {
                    LBool::True => {}
                    LBool::Undef => self.enqueue(other, Some(cref)),
                    LBool::False => {
                        conflict = Some(cref);
                        self.qhead = self.trail.len();
                        break;
                    }
                }
            }
            if conflict.is_some() {
                break;
            }

            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: the blocker literal is already true.
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses.get(cref).deleted {
                    continue;
                }
                // Make sure the false literal (!p) is at position 1.
                {
                    let c = self.clauses.get_mut(cref);
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses.get(cref).lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses.get(cref).len();
                for k in 2..len {
                    let lk = self.clauses.get(cref).lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses.get_mut(cref).lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: the clause is unit or conflicting.
                ws[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: copy the remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// Bump a variable's VSIDS activity.
    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if let Some(pos) = self.heap_index[v.index()] {
            self.heap_sift_up(pos);
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = self.clauses.get_mut(cref);
        if !c.learned {
            return;
        }
        c.used = true;
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let refs = self.clauses.learned_refs();
            for r in refs {
                self.clauses.get_mut(r).activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (with the
    /// asserting literal first), the backtrack level, and the clause's
    /// literal block distance.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learned: Vec<Lit> = vec![Lit::new(Var(0), true)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clauses.get(cref).lits.clone();
            // Skip the implied literal by variable, not by position: long
            // clauses keep it at slot 0, but binary implications enqueue
            // straight off the implication list without reordering.
            for &q in &lits {
                if p.is_some_and(|pl| pl.var() == q.var()) {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.levels[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail that participates in the
            // conflict at the current level.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.unwrap().var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !p.unwrap();
                break;
            }
            cref = self.reasons[pv.index()].expect("non-decision literal must have a reason");
        }

        // Clause minimization: drop literals whose reason clause is entirely
        // covered by the rest of the learned clause (local minimization).
        // Note: the `seen` flags must be cleared for the *original* clause
        // afterwards, not the minimized one, or stale flags corrupt the next
        // conflict analysis.
        let original = learned.clone();
        let mut minimized = vec![learned[0]];
        for &lit in &learned[1..] {
            let v = lit.var();
            let redundant = match self.reasons[v.index()] {
                None => false,
                Some(reason) => self.clauses.get(reason).lits.iter().all(|&q| {
                    q.var() == v || self.seen[q.var().index()] || self.levels[q.var().index()] == 0
                }),
            };
            if !redundant {
                minimized.push(lit);
            }
        }
        let learned = minimized;

        // Compute the backtrack level: the highest level among the non-asserting
        // literals (0 for unit learned clauses).
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_level = 0;
            for &lit in &learned[1..] {
                max_level = max_level.max(self.levels[lit.var().index()]);
            }
            max_level
        };

        // LBD: the number of distinct decision levels among the (minimized)
        // learned clause's literals. Computed before backtracking, while the
        // levels are still those of the conflicting assignment.
        let mut lbd_levels: Vec<u32> = learned
            .iter()
            .map(|&lit| self.levels[lit.var().index()])
            .collect();
        lbd_levels.sort_unstable();
        lbd_levels.dedup();
        let lbd = lbd_levels.len() as u32;

        for &lit in &original {
            self.seen[lit.var().index()] = false;
        }
        self.stats.learned_literals += learned.len() as u64;
        self.stats.learned_clauses += 1;
        self.stats.lbd_sum += u64::from(lbd);
        (learned, backtrack_level, lbd)
    }

    /// Undo assignments above the given decision level.
    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for idx in (target..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.phases[v.index()] = lit.is_positive();
            self.reasons[v.index()] = None;
            if self.heap_index[v.index()].is_none() {
                self.heap_insert(v);
            }
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    /// Record the learned clause and assert its first literal.
    fn learn(&mut self, learned: Vec<Lit>, lbd: u32) {
        let asserting = learned[0];
        if learned.len() == 1 {
            self.enqueue(asserting, None);
        } else {
            // Ensure the second watched literal has the highest level so the
            // clause becomes unit exactly at the backtrack level.
            let mut lits = learned;
            let mut best = 1;
            for k in 2..lits.len() {
                if self.levels[lits[k].var().index()] > self.levels[lits[best].var().index()] {
                    best = k;
                }
            }
            lits.swap(1, best);
            let cref = self.clauses.add(Clause::learned_with_lbd(lits, lbd));
            self.attach(cref);
            self.bump_clause(cref);
            self.enqueue(asserting, Some(cref));
        }
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Learned-clause database reduction. With preprocessing on, the
    /// database is managed in three tiers by learn-time LBD:
    ///
    /// - **core** (`lbd <= 2`): glue clauses, never evicted;
    /// - **tier2** (`2 < lbd <= TIER2_MAX_LBD`): kept while recently used.
    ///   Every second reduction sweeps the tier, evicting clauses whose
    ///   `used` stamp stayed clear since the previous sweep and clearing
    ///   the stamp on survivors;
    /// - **local** (`lbd > TIER2_MAX_LBD`): half evicted on every call,
    ///   worst first.
    ///
    /// With preprocessing off this is the plain lowest-activity-first
    /// halving of the pre-LBD solver. All orderings end with the clause id
    /// so float-equal activities cannot make eviction order run-dependent.
    fn reduce_db(&mut self) {
        const TIER2_MAX_LBD: u32 = 6;
        self.reduce_calls += 1;
        let mut refs = self.clauses.learned_refs();
        refs.retain(|&r| {
            let c = self.clauses.get(r);
            if self.preprocessing && c.lbd <= 2 {
                return false; // glue: never an eviction candidate
            }
            // Keep clauses that are the reason of a current assignment.
            !c.lits
                .first()
                .map(|&l| self.reasons[l.var().index()] == Some(r))
                .unwrap_or(false)
        });
        if self.preprocessing {
            // Local tier: halve, worst (highest LBD, lowest activity) first.
            let mut local: Vec<ClauseRef> = refs
                .iter()
                .copied()
                .filter(|&r| self.clauses.get(r).lbd > TIER2_MAX_LBD)
                .collect();
            local.sort_by(|&a, &b| {
                let (ca, cb) = (self.clauses.get(a), self.clauses.get(b));
                cb.lbd
                    .cmp(&ca.lbd)
                    .then(
                        ca.activity
                            .partial_cmp(&cb.activity)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.0.cmp(&b.0))
            });
            let evict = local.len() / 2;
            for &r in local.iter().take(evict) {
                self.detach(r);
                self.clauses.delete(r);
                self.stats.deleted_clauses += 1;
                self.stats.deleted_local += 1;
            }
            // Tier2 sweep on alternate calls: evict what stayed unused over
            // the whole interval, re-arm survivors for the next one.
            if self.reduce_calls.is_multiple_of(2) {
                let tier2: Vec<ClauseRef> = refs
                    .iter()
                    .copied()
                    .filter(|&r| self.clauses.get(r).lbd <= TIER2_MAX_LBD)
                    .collect();
                for r in tier2 {
                    if self.clauses.get(r).used {
                        self.clauses.get_mut(r).used = false;
                    } else {
                        self.detach(r);
                        self.clauses.delete(r);
                        self.stats.deleted_clauses += 1;
                        self.stats.deleted_tier2 += 1;
                    }
                }
            }
        } else {
            refs.sort_by(|&a, &b| {
                self.clauses
                    .get(a)
                    .activity
                    .partial_cmp(&self.clauses.get(b).activity)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for &r in refs.iter().take(refs.len() / 2) {
                self.detach(r);
                self.clauses.delete(r);
                self.stats.deleted_clauses += 1;
            }
        }
    }

    /// Remove a clause from the watch lists. Binary clauses scrub both the
    /// implication lists and the plain lists: which one the clause lives in
    /// depends on the preprocessing flag at attach time, not now.
    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1, binary) = {
            let c = self.clauses.get(cref);
            (c.lits[0], c.lits[1], c.len() == 2)
        };
        if binary {
            self.binary_watches[(!l0).index()].retain(|&(_, r)| r != cref);
            self.binary_watches[(!l1).index()].retain(|&(_, r)| r != cref);
        }
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    // ---- VSIDS order heap -------------------------------------------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        let pos = self.heap.len();
        self.heap.push(v);
        self.heap_index[v.index()] = Some(pos);
        self.heap_sift_up(pos);
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap_less(self.heap[pos], self.heap[parent]) {
                self.heap_swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len() && self.heap_less(self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && self.heap_less(self.heap[right], self.heap[best]) {
                best = right;
            }
            if best == pos {
                break;
            }
            self.heap_swap(pos, best);
            pos = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = Some(a);
        self.heap_index[self.heap[b].index()] = Some(b);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_index[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Pick the next decision variable: the unassigned variable with the
    /// highest activity, assigned its saved phase.
    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()].is_undef() {
                self.stats.decisions += 1;
                return Some(Lit::new(v, self.phases[v.index()]));
            }
        }
        None
    }

    // ---- Top-level solving ------------------------------------------------

    /// Solve the formula with no assumptions and no budget.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[], Budget::unlimited())
    }

    /// Solve under assumptions, with a resource budget.
    ///
    /// Assumptions are treated as forced decisions at the bottom of the
    /// search; if any assumption conflicts with the formula the result is
    /// `Unsat` (for this call only — the formula itself is untouched).
    pub fn solve_with(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        // Eliminated variables occur in no remaining clause, so an assumption
        // over one cannot constrain the search — resolution already committed
        // to "some value works", not the assumed one. BVE is therefore only
        // enabled on the one-shot (assumption-free) path; see `preprocess`.
        debug_assert!(
            assumptions
                .iter()
                .all(|a| self.eliminated.get(a.var().index()) != Some(&true)),
            "assumptions over BVE-eliminated variables are unsupported"
        );
        self.last_core = None;
        if self.unsat {
            // Root-unsat: the empty core. Any assumption set is a superset.
            if self.core_caching {
                self.last_core = Some(Vec::new());
            }
            return SatResult::Unsat;
        }
        // Model shortcut: the last query's total assignment is still on the
        // trail and the formula has not changed since. If it satisfies every
        // assumption it is a witness for this query too — answer without a
        // single propagation. Alternating easy Sat queries on one instance
        // hit this constantly.
        self.cached_model_hit = None;
        if self.preprocessing
            && self.model_valid
            && !assumptions.is_empty()
            && assumptions
                .iter()
                .all(|&a| self.value_lit(a) == LBool::True)
        {
            self.stats.model_cache_hits += 1;
            return SatResult::Sat;
        }
        // Second chance: a slightly older cached model. Unlike the trail,
        // the cache survives intervening Unsat answers, so a run of mixed
        // verdicts doesn't forfeit every later Sat shortcut. Scanned newest
        // first; the trail and saved phases are left untouched so the kept
        // decision levels stay reusable for the next full search.
        if self.preprocessing && !assumptions.is_empty() {
            let hit = self.cached_models.iter().rposition(|m| {
                assumptions
                    .iter()
                    .all(|&a| m.get(a.var().index()).copied() == Some(a.is_positive()))
            });
            if let Some(i) = hit {
                self.cached_model_hit = Some(i);
                self.stats.model_cache_hits += 1;
                return SatResult::Sat;
            }
        }
        // Unsat shortcut, the mirror image: a cached assumption core whose
        // every literal this query also assumes proves this query Unsat —
        // cores are formula-entailed and `add_clause` only adds constraints,
        // so a recorded core never goes stale. The trail, saved phases, and
        // cached models are left untouched.
        if self.core_caching && !assumptions.is_empty() {
            let hit = self
                .core_cache
                .iter()
                .position(|core| core.iter().all(|l| assumptions.contains(l)));
            if let Some(i) = hit {
                self.last_core = Some(self.core_cache[i].clone());
                self.stats.core_cache_hits += 1;
                return SatResult::Unsat;
            }
            // Cross-instance fallback: a core another instance recorded for
            // the byte-identical formula (equal fingerprints) answers here
            // too. Bank it locally so the next superset query skips the
            // shared store.
            if let Some(shared) = &self.shared_cores {
                let hit = shared
                    .lock()
                    .expect("shared core store lock")
                    .lookup(self.formula_fp, assumptions);
                if let Some(core) = hit {
                    if self.core_cache.len() == CORE_CACHE {
                        self.core_cache.remove(0);
                    }
                    self.core_cache.push(core.clone());
                    self.last_core = Some(core);
                    self.stats.core_cache_hits += 1;
                    return SatResult::Unsat;
                }
            }
        }
        self.budget_propagations = budget.max_propagations;
        self.budget_conflicts = budget.max_conflicts;
        self.solve_conflicts = 0;
        // Work a preceding `preprocess` call performed counts against this
        // call's budget, so a budget-degraded verdict lands on exactly the
        // same query no matter how the work was split between the phases.
        self.solve_propagations = std::mem::take(&mut self.carryover);

        // Trail reuse: consecutive queries on one instance typically share
        // most of their assumptions, and re-establishing a shared assumption
        // re-propagates the whole blasted circuit. Reorder the new
        // assumptions to front-load the overlap with the previous query and
        // keep the still-matching decision levels. Kept literals are entailed
        // by the formula plus the kept assumptions, and learned clauses are
        // formula-entailed, so delayed propagation of them is sound: a Sat
        // answer is still checked by every original clause, and Unsat
        // derivations only resolve existing clauses. Anything that touches
        // the clause set (add_clause, preprocess, cancel_until_root)
        // backtracks to the root first, which disables reuse on its own.
        let ordered: Vec<Lit>;
        let assumptions: &[Lit] = if self.preprocessing && !assumptions.is_empty() {
            ordered = self.reorder_assumptions(assumptions);
            let mut keep = 0u32;
            while (keep as usize) < ordered.len()
                && keep < self.decision_level()
                && self.last_assumptions.get(keep as usize) == Some(&ordered[keep as usize])
            {
                keep += 1;
            }
            self.backtrack(keep);
            self.last_assumptions.clone_from(&ordered);
            &ordered
        } else {
            self.backtrack(0);
            self.last_assumptions.clear();
            assumptions
        };
        // Learn queued core clauses, but only when this query naturally
        // lands at the root — forcing a backtrack just to attach them would
        // forfeit trail reuse, which costs more than the clauses save. The
        // clauses are an optimization (cache lookups already answer exact
        // supersets), so deferring them across reused-trail queries is fine.
        // Root-false literals are dropped (the remainder stays entailed),
        // root-satisfied clauses are skipped, and a clause emptied by the
        // filter proves the formula itself unsat.
        if self.decision_level() == 0 && !self.pending_core_clauses.is_empty() {
            for mut lits in std::mem::take(&mut self.pending_core_clauses) {
                lits.retain(|&l| self.value_lit(l) != LBool::False);
                if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
                    continue;
                }
                match lits.len() {
                    0 => {
                        self.unsat = true;
                        if self.core_caching {
                            self.last_core = Some(Vec::new());
                        }
                        return SatResult::Unsat;
                    }
                    1 => self.enqueue(lits[0], None),
                    _ => {
                        let cref = self.clauses.add(Clause::learned_with_lbd(lits, 2));
                        self.attach(cref);
                    }
                }
            }
        }
        if self.decision_level() == 0 && self.propagate().is_some() {
            self.unsat = true;
            if self.core_caching {
                self.last_core = Some(Vec::new());
            }
            return SatResult::Unsat;
        }

        let mut restart_count = 0u64;
        let mut conflicts_since_restart = 0u64;
        let result = loop {
            // (Re-)establish the assumptions after any restart.
            if self.decision_level() < assumptions.len() as u32 {
                let a = assumptions[self.decision_level() as usize];
                match self.value_lit(a) {
                    LBool::True => {
                        // Already implied; open an empty decision level so the
                        // remaining assumptions keep their positions.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    LBool::False => {
                        // The assumption is already falsified: the trail
                        // implies `!a` from the formula plus earlier
                        // assumptions. The core is `a` itself plus whatever
                        // assumptions forced `!a`.
                        if self.core_caching {
                            let core = self.analyze_final_from(&[!a], vec![a]);
                            self.record_core(core);
                        }
                        break SatResult::Unsat;
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else if let Some(decision) = self.decide() {
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, None);
            } else {
                break SatResult::Sat;
            }

            loop {
                match self.propagate() {
                    None => break,
                    Some(conflict) => {
                        self.stats.conflicts += 1;
                        self.solve_conflicts += 1;
                        conflicts_since_restart += 1;
                        if self.decision_level() == 0 {
                            self.unsat = true;
                            if self.core_caching {
                                self.last_core = Some(Vec::new());
                            }
                            return SatResult::Unsat;
                        }
                        if self.decision_level() <= assumptions.len() as u32 {
                            // Conflict within the assumption levels: the
                            // assumptions are inconsistent with the formula.
                            // Extract the responsible assumption subset from
                            // the conflicting clause before the trail goes.
                            if self.core_caching {
                                let seeds = self.clauses.get(conflict).lits.clone();
                                let core = self.analyze_final_from(&seeds, Vec::new());
                                self.record_core(core);
                            }
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        let (learned, level, lbd) = self.analyze(conflict);
                        let level = level.max(assumptions.len() as u32);
                        self.backtrack(level);
                        // If backtracking landed inside assumption levels and
                        // the asserting literal is already false there, the
                        // assumptions are inconsistent.
                        if self.value_lit(learned[0]) == LBool::False {
                            // The learned clause is formula-entailed and all
                            // its literals are falsified by the remaining
                            // (assumption-level) trail: its seeds trace to an
                            // assumption core.
                            if self.core_caching {
                                let core = self.analyze_final_from(&learned, Vec::new());
                                self.record_core(core);
                            }
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        if self.value_lit(learned[0]) == LBool::True {
                            // Already satisfied after backtracking (can happen
                            // when clamped to the assumption level); just
                            // record the clause if it is not unit.
                            if learned.len() > 1 {
                                let mut lits = learned;
                                let cref = {
                                    let mut best = 1;
                                    for k in 2..lits.len() {
                                        if self.levels[lits[k].var().index()]
                                            > self.levels[lits[best].var().index()]
                                        {
                                            best = k;
                                        }
                                    }
                                    lits.swap(1, best);
                                    self.clauses.add(Clause::learned_with_lbd(lits, lbd))
                                };
                                self.attach(cref);
                            }
                        } else {
                            self.learn(learned, lbd);
                        }
                    }
                }
                if self.solve_propagations > self.budget_propagations
                    || self.solve_conflicts > self.budget_conflicts
                {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
            }

            if self.solve_propagations > self.budget_propagations
                || self.solve_conflicts > self.budget_conflicts
            {
                self.backtrack(0);
                return SatResult::Unknown;
            }

            // Luby restarts, with periodic clause vivification between them
            // (inprocessing; its propagations are budget-charged like any
            // other, so degraded verdicts stay deterministic).
            let restart_limit = 64 * luby(restart_count);
            if conflicts_since_restart >= restart_limit {
                restart_count += 1;
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                self.backtrack(0);
                if self.preprocessing && restart_count.is_multiple_of(4) {
                    let pre_start = self.stats.propagations;
                    self.vivify_round(24);
                    self.stats.preprocess_propagations += self.stats.propagations - pre_start;
                    if self.unsat {
                        if self.core_caching {
                            self.last_core = Some(Vec::new());
                        }
                        return SatResult::Unsat;
                    }
                }
            }

            if self.clauses.num_learned > self.max_learned + self.trail.len() {
                self.reduce_db();
            }
        };

        if result == SatResult::Sat && !self.elim.is_empty() {
            // Extend the model over eliminated variables so callers reading
            // `model_value` see an assignment that satisfies the original
            // (pre-elimination) clauses. The trail itself stays intact; the
            // next solve call backtracks to level 0 first.
            self.reconstruct_model();
        }
        self.model_valid = result == SatResult::Sat;
        if result == SatResult::Sat && self.preprocessing {
            self.cache_model();
        }
        result
    }

    /// Snapshot the current total model (as [`model_value`] reports it,
    /// eliminated variables included) into the bounded model cache.
    fn cache_model(&mut self) {
        const MODEL_CACHE: usize = 4;
        let m: Vec<bool> = (0..self.assigns.len())
            .map(|i| self.model_value(Var(i as u32)))
            .collect();
        if self.cached_models.last() == Some(&m) {
            return;
        }
        if self.cached_models.len() == MODEL_CACHE {
            self.cached_models.remove(0);
        }
        self.cached_models.push(m);
    }

    /// Final-conflict analysis: compute the subset of the current query's
    /// assumptions responsible for falsifying the seed literals' negations —
    /// i.e. every seed's variable is assigned on the trail and the walk
    /// explains those assignments down to assumption decisions. `core`
    /// arrives pre-seeded with literals already known to belong (the
    /// directly falsified assumption at the establish-assumption exit) and
    /// is returned sorted by literal index, making cores canonical.
    ///
    /// Soundness relies on an invariant of the assumption exits: every
    /// reason-`None` trail literal above the root level is an assumption of
    /// the current query, because conflicts at or below the assumption
    /// levels occur before any real decision survives on the trail.
    fn analyze_final_from(&mut self, seeds: &[Lit], mut core: Vec<Lit>) -> Vec<Lit> {
        let root = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for s in seeds {
            if self.levels[s.var().index()] > 0 {
                self.seen[s.var().index()] = true;
            }
        }
        for idx in (root..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            if !self.seen[v.index()] {
                continue;
            }
            self.seen[v.index()] = false;
            match self.reasons[v.index()] {
                None => core.push(lit),
                Some(reason) => {
                    let lits: Vec<Lit> = self.clauses.get(reason).lits.clone();
                    for q in lits {
                        if q.var() != v && self.levels[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
        }
        // Every marked variable sits at or above `root` on the trail and is
        // visited by the walk; scrub the seeds anyway so a future invariant
        // slip cannot leak flags into conflict analysis.
        for s in seeds {
            self.seen[s.var().index()] = false;
        }
        core.sort_unstable_by_key(|l| l.index());
        core.dedup();
        core
    }

    /// Store a freshly extracted assumption core: set `last_core`, account
    /// stats, and insert it into the bounded FIFO cache unless a cached core
    /// already covers it (a subset answers strictly more queries). Cached
    /// supersets of the new core are pruned for the same reason. Empty cores
    /// are never cached — the root-unsat flag already answers everything.
    fn record_core(&mut self, core: Vec<Lit>) {
        self.stats.cores_recorded += 1;
        self.stats.core_size_sum += core.len() as u64;
        let covered = self
            .core_cache
            .iter()
            .any(|c| c.iter().all(|l| core.contains(l)));
        if !core.is_empty() && !covered {
            self.core_cache
                .retain(|c| !core.iter().all(|l| c.contains(l)));
            if self.core_cache.len() == CORE_CACHE {
                self.core_cache.remove(0);
            }
            self.core_cache.push(core.clone());
            // Queue the entailed core clause `!a1 | ... | !ak` for learning:
            // related later queries then refute themselves by unit
            // propagation over the core instead of re-running the search
            // that derived it. Deferred — the core's literals are still
            // assigned here (see `pending_core_clauses`). Cores from
            // contradictory assumption sets (containing both l and !l)
            // would yield tautological clauses; skip those.
            let tautology = core.iter().any(|&l| core.contains(&!l));
            if !tautology {
                self.pending_core_clauses
                    .push(core.iter().map(|&l| !l).collect());
            }
            // Publish for sibling instances of the identical formula.
            if let Some(shared) = &self.shared_cores {
                shared
                    .lock()
                    .expect("shared core store lock")
                    .record(self.formula_fp, &core);
            }
        }
        self.last_core = Some(core);
    }

    /// Value of a variable in the model found by the last successful solve.
    pub fn model_value(&self, v: Var) -> bool {
        // A `Sat` served from the model cache reports that cached witness,
        // not whatever older assignment the (untouched) trail holds.
        if let Some(i) = self.cached_model_hit {
            if let Some(&b) = self.cached_models[i].get(v.index()) {
                return b;
            }
        }
        // Eliminated variables answer from the reconstructed values: the
        // search may still have assigned them arbitrarily (they occur in no
        // clause after elimination), and that arbitrary value need not
        // satisfy the saved pre-elimination clauses.
        match self.elim_values[v.index()] {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => match self.assigns[v.index()] {
                LBool::True => true,
                LBool::False => false,
                // Variables not constrained by any clause may remain
                // unassigned; any value satisfies the formula, pick the
                // saved phase.
                LBool::Undef => self.phases[v.index()],
            },
        }
    }

    /// Truth of a literal under [`model_value`](SatSolver::model_value).
    fn model_lit_true(&self, lit: Lit) -> bool {
        let b = self.model_value(lit.var());
        if lit.is_positive() {
            b
        } else {
            !b
        }
    }

    /// Replay the elimination stack in reverse, assigning each eliminated
    /// variable a value that satisfies every clause it was resolved out of.
    /// The resolvents guarantee such a value exists: if some saved clause
    /// forces the variable one way, no other saved clause can force it the
    /// other way under the current model.
    fn reconstruct_model(&mut self) {
        for slot in &mut self.elim_values {
            *slot = LBool::Undef;
        }
        let elim = std::mem::take(&mut self.elim);
        for (v, saved) in elim.iter().rev() {
            let pos = v.positive();
            let forced = |target: Lit, this: &SatSolver| {
                saved.iter().any(|clause| {
                    clause.contains(&target)
                        && clause
                            .iter()
                            .all(|&l| l.var() == *v || !this.model_lit_true(l))
                })
            };
            let value = if forced(pos, self) {
                true
            } else if forced(!pos, self) {
                false
            } else {
                self.phases[v.index()]
            };
            self.elim_values[v.index()] = LBool::from_bool(value);
        }
        self.elim = elim;
    }

    // ---- Pre/inprocessing -------------------------------------------------

    /// One-shot deterministic preprocessing, run at the root level before
    /// (or between) solves: failed-literal probing, clause subsumption +
    /// self-subsumption strengthening, and — when `enable_bve` is set —
    /// bounded variable elimination. `enable_bve` is only sound when no
    /// further clauses will be added over existing variables (one-shot
    /// solving); probing and subsumption preserve logical equivalence and
    /// are safe under later incremental additions.
    ///
    /// All work is charged against `budget` and carried into the next
    /// `solve_with` call. Returns `Some(Unsat)` if simplification refutes
    /// the formula, `Some(Unknown)` if the budget ran out mid-pass (partial
    /// simplification is kept — every committed step preserves
    /// satisfiability), and `None` when solving should proceed.
    pub fn preprocess(&mut self, budget: Budget, enable_bve: bool) -> Option<SatResult> {
        if !self.preprocessing {
            return None;
        }
        if self.unsat {
            return Some(SatResult::Unsat);
        }
        self.model_valid = false;
        self.backtrack(0);
        let pre_start = self.stats.propagations;
        self.solve_propagations = std::mem::take(&mut self.carryover);
        if self.propagate().is_some() {
            self.unsat = true;
            self.stats.preprocess_propagations += self.stats.propagations - pre_start;
            return Some(SatResult::Unsat);
        }
        let mut outcome = self.probe_failed_literals(&budget);
        if outcome.is_none() {
            outcome = self.simplify_clauses(&budget);
        }
        if outcome.is_none() && enable_bve {
            outcome = self.eliminate_variables(&budget);
        }
        self.stats.preprocess_propagations += self.stats.propagations - pre_start;
        match outcome {
            Some(result) => {
                // The budget is spent (Unknown) or the answer is final
                // (Unsat); either way nothing carries over.
                self.solve_propagations = 0;
                Some(result)
            }
            None => {
                self.carryover = self.solve_propagations;
                self.solve_propagations = 0;
                None
            }
        }
    }

    /// Order a query's assumptions to maximize trail reuse: the literals
    /// shared with the previous query's assumption sequence first (in that
    /// sequence's order, stopping at the first mismatch, since decision
    /// levels beyond it cannot be kept anyway), then the rest. Assumption
    /// order never changes Sat/Unsat, and the ordering is a pure function of
    /// this instance's query history, so determinism is preserved.
    fn reorder_assumptions(&self, assumptions: &[Lit]) -> Vec<Lit> {
        let mut ordered: Vec<Lit> = Vec::with_capacity(assumptions.len());
        for &a in &self.last_assumptions {
            if assumptions.contains(&a) && !ordered.contains(&a) {
                ordered.push(a);
            } else {
                break;
            }
        }
        for &a in assumptions {
            if !ordered.contains(&a) {
                ordered.push(a);
            }
        }
        ordered
    }

    /// Whether the preprocessing work done so far exceeds the budget.
    fn over_budget(&self, budget: &Budget) -> bool {
        self.solve_propagations > budget.max_propagations
    }

    /// Per-pass effort ceiling for pre/inprocessing, in budget-charge units:
    /// a constant floor (so small formulas are always fully simplified) plus
    /// a term linear in the formula size. Each pass stops — cleanly, keeping
    /// whatever it simplified so far — once its own charge exceeds this, so
    /// total preprocessing charge stays proportional to the formula and can
    /// never eat a solve-sized share of the query budget on big circuits.
    /// A pure function of the formula, so degraded verdicts stay
    /// deterministic.
    fn pass_cap(&self) -> u64 {
        4_000 + 4 * self.clauses.len() as u64
    }

    /// Failed-literal probing at the root: for every variable watched by a
    /// binary clause, assume each polarity in turn and propagate; a conflict
    /// proves the negation, which is asserted at the root. Variable order is
    /// index order, so the pass is deterministic.
    fn probe_failed_literals(&mut self, budget: &Budget) -> Option<SatResult> {
        // Only probe variables that head implication chains: those occurring
        // in some binary clause. Probing everything is quadratic pain on
        // blasted circuits for little extra root knowledge — and even the
        // binary-clause subset is capped so a large circuit can't turn a
        // cheap query into a probing marathon. The cap takes a deterministic
        // prefix in index order, which on blasted formulas means the
        // problem's input variables (created first) are probed before gate
        // variables. On top of the variable cap, the pass stops once its
        // budget charge exceeds a linear function of the formula size
        // (see `pass_cap`): preprocessing effort must stay proportional to
        // the formula, or its budget charge would eat the solve's budget on
        // large instances.
        const PROBE_CAP: usize = 64;
        let cap = self.pass_cap();
        let pass_start = self.solve_propagations;
        // Probe propagations overwrite saved phases as a side effect of
        // enqueue/backtrack; snapshot and restore them so probing leaves the
        // search heuristics exactly as it found them (probing is supposed to
        // extract root facts, not steer the upcoming search).
        let saved_phases = self.phases.clone();
        let mut candidate = vec![false; self.num_vars()];
        for idx in 0..self.clauses.len() {
            let c = self.clauses.get(ClauseRef(idx as u32));
            if !c.deleted && c.len() == 2 {
                candidate[c.lits[0].var().index()] = true;
                candidate[c.lits[1].var().index()] = true;
            }
        }
        // Hyper-binary resolution piggybacks on the same probes: every
        // literal `q` the probe `lit` forced through a *long* (len > 2)
        // reason chain is a transitive implication `lit -> q` the binary
        // implication lists don't know yet. Materializing it as a binary
        // clause (entailed, so cached models stay valid) lets future
        // propagation reach `q` in one cache-friendly step and future
        // probes/vivification resolve against it. Capped per pass and
        // budget-charged like everything else here.
        const HBR_CAP: usize = 64;
        let mut hbr_added = 0usize;
        let mut probed = 0usize;
        let mut result = None;
        'probe: for (idx, &is_candidate) in candidate.iter().enumerate() {
            if self.over_budget(budget) {
                result = Some(SatResult::Unknown);
                break;
            }
            if probed >= PROBE_CAP || self.solve_propagations - pass_start > cap {
                break;
            }
            if !is_candidate || self.eliminated[idx] || !self.assigns[idx].is_undef() {
                continue;
            }
            probed += 1;
            let v = Var(idx as u32);
            for positive in [true, false] {
                let lit = Lit::new(v, positive);
                if !self.value_lit(lit).is_undef() {
                    break; // the other phase's failure already decided it
                }
                self.trail_lim.push(self.trail.len());
                let level_start = self.trail.len();
                self.enqueue(lit, None);
                let failed = self.propagate().is_some();
                let mut hyper: Vec<Lit> = Vec::new();
                if !failed && self.hbr && hbr_added < HBR_CAP {
                    for &q in &self.trail[level_start + 1..] {
                        if let Some(r) = self.reasons[q.var().index()] {
                            if self.clauses.get(r).len() > 2
                                && !self.binary_watches[lit.index()]
                                    .iter()
                                    .any(|&(other, _)| other == q)
                            {
                                hyper.push(q);
                            }
                        }
                    }
                }
                self.backtrack(0);
                if failed {
                    self.stats.preprocess_eliminations += 1;
                    self.enqueue(!lit, None);
                    if self.propagate().is_some() {
                        self.unsat = true;
                        result = Some(SatResult::Unsat);
                        break 'probe;
                    }
                } else {
                    for q in hyper {
                        if hbr_added >= HBR_CAP {
                            break;
                        }
                        let cref = self.clauses.add(Clause::learned_with_lbd(vec![!lit, q], 2));
                        self.attach(cref);
                        self.stats.hbr_binaries_added += 1;
                        self.solve_propagations += 1;
                        hbr_added += 1;
                    }
                }
            }
        }
        for (idx, &phase) in saved_phases.iter().enumerate() {
            if self.assigns[idx].is_undef() {
                self.phases[idx] = phase;
            }
        }
        result
    }

    /// Remove root-satisfied clauses, strip root-false literals, then run
    /// one backward subsumption + self-subsumption pass over the remaining
    /// clauses. Everything here preserves logical equivalence of the
    /// (clauses + root trail) representation.
    fn simplify_clauses(&mut self, budget: &Budget) -> Option<SatResult> {
        let n_clauses = self.clauses.len();
        // Pass 1: clean up against the root trail.
        for idx in 0..n_clauses {
            if self.over_budget(budget) {
                return Some(SatResult::Unknown);
            }
            let cref = ClauseRef(idx as u32);
            if self.clauses.get(cref).deleted {
                continue;
            }
            let len = self.clauses.get(cref).len();
            self.solve_propagations += len as u64;
            let lits = self.clauses.get(cref).lits.clone();
            if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
                self.detach(cref);
                self.clauses.delete(cref);
                self.stats.preprocess_eliminations += 1;
                continue;
            }
            if lits.iter().any(|&l| self.value_lit(l) == LBool::False) {
                let kept: Vec<Lit> = lits
                    .into_iter()
                    .filter(|&l| self.value_lit(l).is_undef())
                    .collect();
                self.stats.preprocess_eliminations += 1;
                if let Some(result) = self.replace_clause(cref, kept) {
                    return Some(result);
                }
            }
        }
        // Pass 2: backward subsumption. For each clause C, candidates are
        // the clauses sharing C's least-occurring literal (either phase);
        // C ⊆ D deletes D, and C matching D except for one flipped literal
        // strengthens D by removing that literal. Effort-capped like every
        // pass (see `pass_cap`).
        let cap = self.pass_cap();
        let pass_start = self.solve_propagations;
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * self.num_vars()];
        for idx in 0..n_clauses {
            let cref = ClauseRef(idx as u32);
            let c = self.clauses.get(cref);
            if c.deleted {
                continue;
            }
            for &l in &c.lits {
                occ[l.index()].push(cref);
            }
        }
        for idx in 0..n_clauses {
            if self.over_budget(budget) {
                return Some(SatResult::Unknown);
            }
            if self.solve_propagations - pass_start > cap {
                break;
            }
            let cref = ClauseRef(idx as u32);
            if self.clauses.get(cref).deleted {
                continue;
            }
            let c_lits = self.clauses.get(cref).lits.clone();
            // Long clauses subsume almost nothing; clauses whose every
            // literal is ubiquitous would drag in huge candidate lists. Both
            // caps keep the pass near-linear on blasted circuits.
            const MAX_SUBSUMER_LEN: usize = 12;
            const MAX_CANDIDATES: usize = 32;
            if c_lits.len() > MAX_SUBSUMER_LEN {
                continue;
            }
            // A tautological C subsumes nothing, and self-subsuming
            // resolution against it is the identity — `subsumes` would
            // still report a flipped literal and unsoundly strengthen D.
            if c_lits.iter().any(|&l| c_lits.contains(&!l)) {
                continue;
            }
            let key = c_lits
                .iter()
                .copied()
                .min_by_key(|l| occ[l.index()].len() + occ[(!*l).index()].len());
            let Some(key) = key else { continue };
            if occ[key.index()].len() + occ[(!key).index()].len() > MAX_CANDIDATES {
                continue;
            }
            let mut candidates: Vec<ClauseRef> = occ[key.index()].clone();
            candidates.extend_from_slice(&occ[(!key).index()]);
            for dref in candidates {
                if dref == cref || self.clauses.get(dref).deleted {
                    continue;
                }
                if self.clauses.get(cref).deleted {
                    break; // C itself got strengthened away meanwhile
                }
                let d_lits = &self.clauses.get(dref).lits;
                self.solve_propagations += (c_lits.len() + d_lits.len()) as u64;
                if d_lits.len() < c_lits.len() {
                    continue;
                }
                match subsumes(&c_lits, d_lits) {
                    None => {}
                    Some(None) => {
                        // C ⊆ D: D is redundant.
                        self.detach(dref);
                        self.clauses.delete(dref);
                        self.stats.preprocess_eliminations += 1;
                    }
                    Some(Some(remove)) => {
                        // Self-subsumption: resolve C against D on `remove`.
                        let kept: Vec<Lit> = self
                            .clauses
                            .get(dref)
                            .lits
                            .iter()
                            .copied()
                            .filter(|&l| l != remove)
                            .collect();
                        self.stats.preprocess_eliminations += 1;
                        if let Some(result) = self.replace_clause(dref, kept) {
                            return Some(result);
                        }
                    }
                }
            }
        }
        None
    }

    /// Replace an attached clause's literals with a (shorter) implied set,
    /// maintaining the watch lists. An empty set refutes the formula; a unit
    /// is asserted at the root and the clause deleted. Returns `Some` only
    /// for a final verdict.
    fn replace_clause(&mut self, cref: ClauseRef, kept: Vec<Lit>) -> Option<SatResult> {
        self.detach(cref);
        match kept.len() {
            0 => {
                self.unsat = true;
                Some(SatResult::Unsat)
            }
            1 => {
                self.clauses.delete(cref);
                match self.value_lit(kept[0]) {
                    LBool::True => None,
                    LBool::False => {
                        self.unsat = true;
                        Some(SatResult::Unsat)
                    }
                    LBool::Undef => {
                        self.enqueue(kept[0], None);
                        if self.propagate().is_some() {
                            self.unsat = true;
                            Some(SatResult::Unsat)
                        } else {
                            None
                        }
                    }
                }
            }
            _ => {
                self.clauses.get_mut(cref).lits = kept;
                self.attach(cref);
                None
            }
        }
    }

    /// Bounded variable elimination: resolve out variables with small
    /// occurrence lists when the resolvent set is no larger than the clause
    /// set it replaces. The removed clauses go on the elimination stack for
    /// model reconstruction. Variable order is index order (deterministic).
    fn eliminate_variables(&mut self, budget: &Budget) -> Option<SatResult> {
        const MAX_OCC: usize = 10;
        let cap = self.pass_cap();
        let pass_start = self.solve_propagations;
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * self.num_vars()];
        for idx in 0..self.clauses.len() {
            let cref = ClauseRef(idx as u32);
            let c = self.clauses.get(cref);
            if c.deleted {
                continue;
            }
            for &l in &c.lits {
                occ[l.index()].push(cref);
            }
        }
        for idx in 0..self.num_vars() {
            if self.over_budget(budget) {
                return Some(SatResult::Unknown);
            }
            if self.solve_propagations - pass_start > cap {
                break;
            }
            if self.eliminated[idx] || !self.assigns[idx].is_undef() {
                continue;
            }
            let v = Var(idx as u32);
            let live = |this: &SatSolver, refs: &[ClauseRef], lit: Lit| -> Vec<ClauseRef> {
                refs.iter()
                    .copied()
                    .filter(|&r| {
                        let c = this.clauses.get(r);
                        !c.deleted && c.lits.contains(&lit)
                    })
                    .collect()
            };
            let pos = live(self, &occ[v.positive().index()], v.positive());
            let neg = live(self, &occ[v.negative().index()], v.negative());
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() > MAX_OCC || neg.len() > MAX_OCC {
                continue;
            }
            // Build the non-tautological resolvents.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'pairs: for &pc in &pos {
                for &nc in &neg {
                    let p_lits = &self.clauses.get(pc).lits;
                    let n_lits = &self.clauses.get(nc).lits;
                    self.solve_propagations += (p_lits.len() + n_lits.len()) as u64;
                    let mut resolvent: Vec<Lit> =
                        p_lits.iter().copied().filter(|&l| l.var() != v).collect();
                    let mut tautology = false;
                    for &l in n_lits.iter().filter(|&&l| l.var() != v) {
                        if resolvent.contains(&!l) {
                            tautology = true;
                            break;
                        }
                        if !resolvent.contains(&l) {
                            resolvent.push(l);
                        }
                    }
                    if tautology {
                        continue;
                    }
                    resolvents.push(resolvent);
                    if resolvents.len() > pos.len() + neg.len() {
                        too_many = true;
                        break 'pairs;
                    }
                }
            }
            if too_many {
                continue;
            }
            // Commit: save and remove the originals, add the resolvents.
            let mut saved = Vec::with_capacity(pos.len() + neg.len());
            for &r in pos.iter().chain(neg.iter()) {
                saved.push(self.clauses.get(r).lits.clone());
                self.detach(r);
                self.clauses.delete(r);
            }
            self.elim.push((v, saved));
            self.eliminated[idx] = true;
            self.stats.preprocess_eliminations += 1;
            for resolvent in resolvents {
                let before = self.clauses.len();
                if !self.add_clause(&resolvent) {
                    return Some(SatResult::Unsat);
                }
                if self.clauses.len() > before {
                    let new_ref = ClauseRef(before as u32);
                    for &l in &self.clauses.get(new_ref).lits.clone() {
                        occ[l.index()].push(new_ref);
                    }
                }
            }
        }
        None
    }

    /// One bounded round of clause vivification: re-derive learned clauses
    /// under their own negation and keep the (often shorter) implied prefix.
    /// Runs at the root between restarts; examines at most `max_clauses`
    /// live learned clauses in reference order.
    fn vivify_round(&mut self, max_clauses: usize) {
        debug_assert_eq!(self.decision_level(), 0);
        // Vivification propagates assumed negations and backtracks, which
        // overwrites saved phases; mid-search those encode the trajectory the
        // restart is about to resume, so snapshot and restore them.
        let saved_phases = self.phases.clone();
        let refs = self.clauses.learned_refs();
        let mut examined = 0usize;
        for r in refs {
            if examined >= max_clauses {
                break;
            }
            let c = self.clauses.get(r);
            if c.deleted || c.len() < 3 {
                continue;
            }
            if self
                .clauses
                .get(r)
                .lits
                .first()
                .map(|&l| self.reasons[l.var().index()] == Some(r))
                .unwrap_or(false)
            {
                continue; // reason of a root assignment
            }
            examined += 1;
            let lits = self.clauses.get(r).lits.clone();
            let lbd = self.clauses.get(r).lbd;
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut shortened = false;
            self.trail_lim.push(self.trail.len());
            for &l in &lits {
                match self.value_lit(l) {
                    LBool::True => {
                        // l is implied by the negation of the kept prefix:
                        // (kept ∪ {l}) is an implied subclause.
                        kept.push(l);
                        shortened = true;
                        break;
                    }
                    LBool::False => {
                        // l is falsified by the kept prefix alone (or the
                        // root): it contributes nothing.
                        shortened = true;
                        continue;
                    }
                    LBool::Undef => {
                        kept.push(l);
                        self.enqueue(!l, None);
                        if self.propagate().is_some() {
                            // ¬kept refutes the formula: `kept` is implied.
                            shortened = true;
                            break;
                        }
                    }
                }
            }
            self.backtrack(0);
            if shortened && !kept.is_empty() && kept.len() < lits.len() {
                self.stats.preprocess_eliminations += 1;
                self.detach(r);
                self.clauses.delete(r);
                match kept.len() {
                    1 => {
                        if self.value_lit(kept[0]).is_undef() {
                            self.enqueue(kept[0], None);
                            if self.propagate().is_some() {
                                self.unsat = true;
                                return;
                            }
                        } else if self.value_lit(kept[0]) == LBool::False {
                            self.unsat = true;
                            return;
                        }
                    }
                    _ => {
                        let new_lbd = lbd.min(kept.len() as u32);
                        let cref = self.clauses.add(Clause::learned_with_lbd(kept, new_lbd));
                        self.attach(cref);
                    }
                }
            }
        }
        for (idx, &phase) in saved_phases.iter().enumerate() {
            if self.assigns[idx].is_undef() {
                self.phases[idx] = phase;
            }
        }
    }
}

/// Subsumption check: does clause `c` subsume `d` (`Some(None)`), strengthen
/// it by resolving on exactly one flipped literal (`Some(Some(lit))` — the
/// literal to drop from `d`), or neither (`None`)?
fn subsumes(c: &[Lit], d: &[Lit]) -> Option<Option<Lit>> {
    let mut flipped: Option<Lit> = None;
    for &lc in c {
        if d.contains(&lc) {
            continue;
        }
        if d.contains(&!lc) {
            if flipped.is_some() {
                return None;
            }
            flipped = Some(!lc);
            continue;
        }
        return None;
    }
    Some(flipped)
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u64) -> u64 {
    // Work with the 1-based index x = i + 1; if x = 2^k - 1 the value is
    // 2^(k-1), otherwise recurse on x minus the largest full block below it.
    let mut x = i + 1;
    loop {
        let k = 64 - u64::from(x.leading_zeros()); // 2^(k-1) <= x < 2^k
        if x == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(solver: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert!(!s.add_clause(&[v.negative()]) || s.solve() == SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a -> b), (b -> c), a  =>  c must be true.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive()]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: x0 and x1 each must be placed (true), but
        // they cannot both be true.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[1].positive()]);
        s.add_clause(&[v[0].negative(), v[1].negative()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p[i][j]: j indexes the inner dim
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon in some hole; no two
        // pigeons share a hole. Classic small UNSAT instance that requires
        // real search.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in [0, 1] {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 3);
        let xor_clauses = |s: &mut SatSolver, a: Var, b: Var| {
            s.add_clause(&[a.positive(), b.positive()]);
            s.add_clause(&[a.negative(), b.negative()]);
        };
        xor_clauses(&mut s, v[0], v[1]);
        xor_clauses(&mut s, v[1], v[2]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]));
        assert!(!s.model_value(v[1]));
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        let w = s.new_var();
        s.add_clause(&[v.positive(), w.positive()]);
        assert_eq!(
            s.solve_with(&[v.negative(), w.negative()], Budget::unlimited()),
            SatResult::Unsat
        );
        // The formula itself is still satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(
            s.solve_with(&[v.negative()], Budget::unlimited()),
            SatResult::Sat
        );
        assert!(s.model_value(w));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p[i][j]: j indexes the inner dim
    fn budget_exhaustion_returns_unknown() {
        // A hard-ish pigeonhole instance with a tiny budget must give Unknown.
        let n = 7usize; // pigeons
        let m = 6usize; // holes
        let mut s = SatSolver::new();
        let mut p = vec![vec![Var(0); m]; n];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        let result = s.solve_with(&[], Budget::propagations(50));
        assert_eq!(result, SatResult::Unknown);
        // With an unlimited budget it is UNSAT.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn preprocess_keeps_pigeonhole_unsat() {
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in [0, 1] {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        let pre = s.preprocess(Budget::unlimited(), true);
        match pre {
            Some(SatResult::Unsat) | None => {}
            other => panic!("unexpected preprocess outcome {other:?}"),
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn probing_derives_failed_literals() {
        // a implies both b and ¬b, so probing a must fail and assert ¬a at
        // the root; the model then has a = false.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[a.negative(), b.negative()]);
        assert_eq!(s.preprocess(Budget::unlimited(), false), None);
        assert!(s.stats().preprocess_eliminations > 0);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.model_value(a));
    }

    #[test]
    fn subsumption_strengthens_and_stays_equisatisfiable() {
        // (a ∨ b) subsumes (a ∨ b ∨ c); (¬a ∨ b) self-subsumes (a ∨ b)
        // down to the unit b.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        assert_eq!(s.preprocess(Budget::unlimited(), false), None);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[1]), "b is implied by resolution");
    }

    #[test]
    fn bve_model_satisfies_original_clauses() {
        // Random-ish low-density 3-SAT: eliminate what is cheap, then the
        // reconstructed model must satisfy every *original* clause.
        let nv = 24usize;
        let mut s = SatSolver::new();
        let v = vars(&mut s, nv);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut clauses = Vec::new();
        for _ in 0..40 {
            let mut clause = Vec::new();
            for _ in 0..3 {
                clause.push(Lit::new(v[next() % nv], next() % 2 == 0));
            }
            clauses.push(clause.clone());
            s.add_clause(&clause);
        }
        assert_eq!(s.preprocess(Budget::unlimited(), true), None);
        if s.solve() == SatResult::Sat {
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&l| {
                        let val = s.model_value(l.var());
                        if l.is_positive() {
                            val
                        } else {
                            !val
                        }
                    }),
                    "model must satisfy pre-elimination clause {clause:?}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p[i][j]: j indexes the inner dim
    fn preprocess_budget_exhaustion_returns_unknown() {
        let n = 7usize;
        let m = 6usize;
        let mut s = SatSolver::new();
        let mut p = vec![vec![Var(0); m]; n];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        assert_eq!(
            s.preprocess(Budget::propagations(1), false),
            Some(SatResult::Unknown),
            "probing alone must exhaust a one-propagation budget"
        );
        // A later call with an unlimited budget still decides the formula.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn preprocessing_off_is_a_noop() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[a.negative(), b.negative()]);
        s.set_preprocessing(false);
        assert_eq!(s.preprocess(Budget::unlimited(), true), None);
        assert_eq!(s.stats().preprocess_eliminations, 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix[0], 1);
        assert_eq!(prefix[1], 1);
        assert_eq!(prefix[2], 2);
        // The sequence must be positive and bounded by powers of two.
        assert!(prefix.iter().all(|&x| x >= 1 && x.is_power_of_two()));
    }

    #[test]
    fn many_random_like_clauses_stay_consistent() {
        // A deterministic pseudo-random 3-SAT instance at low clause density
        // (should be SAT) — checks the model against the clauses.
        let nv = 30usize;
        let mut s = SatSolver::new();
        let v = vars(&mut s, nv);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut clauses = Vec::new();
        for _ in 0..60 {
            let mut clause = Vec::new();
            for _ in 0..3 {
                let var = v[next() % nv];
                let pos = next() % 2 == 0;
                clause.push(Lit::new(var, pos));
            }
            clauses.push(clause.clone());
            s.add_clause(&clause);
        }
        if s.solve() == SatResult::Sat {
            for clause in &clauses {
                assert!(clause.iter().any(|&l| {
                    let val = s.model_value(l.var());
                    if l.is_positive() {
                        val
                    } else {
                        !val
                    }
                }));
            }
        }
    }
}
