//! A CDCL SAT solver.
//!
//! The solver implements the standard conflict-driven clause learning loop:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause minimization by self-subsumption against reason clauses, VSIDS
//! variable activity with phase saving, Luby restarts, and learned-clause
//! database reduction. It supports solving under assumptions (needed by the
//! minimal-UB-set computation in the checker) and a deterministic resource
//! budget measured in propagations so that "timeouts" are reproducible.

use crate::cnf::{Clause, ClauseDb, ClauseRef};
use crate::lit::{LBool, Lit, Var};

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The resource budget was exhausted before a decision was reached.
    Unknown,
}

/// A watcher entry: a clause reference plus a "blocker" literal that is often
/// already true, letting propagation skip the clause without touching it.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Deterministic resource budget for a single `solve` call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of unit propagations; `u64::MAX` means unlimited.
    pub max_propagations: u64,
    /// Maximum number of conflicts; `u64::MAX` means unlimited.
    pub max_conflicts: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_propagations: u64::MAX,
            max_conflicts: u64::MAX,
        }
    }
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget bounded by a number of propagations.
    pub fn propagations(n: u64) -> Budget {
        Budget {
            max_propagations: n,
            max_conflicts: u64::MAX,
        }
    }
}

/// Statistics accumulated across `solve` calls.
#[derive(Clone, Copy, Default, Debug)]
pub struct SatStats {
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub learned_literals: u64,
}

/// The CDCL solver.
pub struct SatSolver {
    clauses: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable, used as the decision polarity.
    phases: Vec<bool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Binary-heap order of unassigned variables by activity.
    heap: Vec<Var>,
    heap_index: Vec<Option<usize>>,
    /// Scratch space for conflict analysis.
    seen: Vec<bool>,
    /// Whether the root-level formula is already known to be unsatisfiable.
    unsat: bool,
    stats: SatStats,
    budget_propagations: u64,
    budget_conflicts: u64,
    /// Conflicts seen in the current solve call (for budget accounting).
    solve_conflicts: u64,
    solve_propagations: u64,
    max_learned: usize,
}

impl Default for SatSolver {
    fn default() -> SatSolver {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Create an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phases: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SatStats::default(),
            budget_propagations: u64::MAX,
            budget_conflicts: u64::MAX,
            solve_conflicts: 0,
            solve_propagations: 0,
            max_learned: 4000,
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phases.push(false);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_index.push(None);
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clause slots in the database (original and learned,
    /// including slots whose clause was deleted by database reduction).
    /// Incremental callers use this to measure how much already-loaded
    /// formula a [`solve_with`](SatSolver::solve_with) call reuses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Undo every assignment above the root decision level.
    ///
    /// After a `Sat` answer the trail is intentionally left intact so
    /// [`model_value`](SatSolver::model_value) can read the assignment;
    /// incremental callers must return to the root level before adding more
    /// clauses. Calling this at the root level is a no-op.
    pub fn cancel_until_root(&mut self) {
        self.backtrack(0);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Current truth value of a literal.
    fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.assigns[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Current decision level.
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause to the formula. Returns `false` if the clause makes the
    /// formula trivially unsatisfiable at the root level.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.unsat {
            return false;
        }
        // Normalize: drop duplicate and false literals, detect tautologies
        // and already-satisfied clauses.
        let mut norm: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.value_lit(lit) {
                LBool::True => return true,
                LBool::False => continue,
                LBool::Undef => {}
            }
            if norm.contains(&!lit) {
                return true; // tautology
            }
            if !norm.contains(&lit) {
                norm.push(lit);
            }
        }
        match norm.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(norm[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.clauses.add(Clause::new(norm, false));
                self.attach(cref);
                true
            }
        }
    }

    /// Attach the first two literals of a clause to the watch lists.
    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.clauses.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    /// Assign a literal true, recording its reason clause.
    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.value_lit(lit).is_undef());
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.phases[v.index()] = lit.is_positive();
        self.levels[v.index()] = self.decision_level();
        self.reasons[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause if a conflict arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            self.solve_propagations += 1;

            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: the blocker literal is already true.
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses.get(cref).deleted {
                    continue;
                }
                // Make sure the false literal (!p) is at position 1.
                {
                    let c = self.clauses.get_mut(cref);
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses.get(cref).lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses.get(cref).len();
                for k in 2..len {
                    let lk = self.clauses.get(cref).lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses.get_mut(cref).lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: the clause is unit or conflicting.
                ws[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: copy the remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// Bump a variable's VSIDS activity.
    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if let Some(pos) = self.heap_index[v.index()] {
            self.heap_sift_up(pos);
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = self.clauses.get_mut(cref);
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let refs = self.clauses.learned_refs();
            for r in refs {
                self.clauses.get_mut(r).activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (with the
    /// asserting literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::new(Var(0), true)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clauses.get(cref).lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.levels[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail that participates in the
            // conflict at the current level.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.unwrap().var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !p.unwrap();
                break;
            }
            cref = self.reasons[pv.index()].expect("non-decision literal must have a reason");
        }

        // Clause minimization: drop literals whose reason clause is entirely
        // covered by the rest of the learned clause (local minimization).
        // Note: the `seen` flags must be cleared for the *original* clause
        // afterwards, not the minimized one, or stale flags corrupt the next
        // conflict analysis.
        let original = learned.clone();
        let mut minimized = vec![learned[0]];
        for &lit in &learned[1..] {
            let v = lit.var();
            let redundant = match self.reasons[v.index()] {
                None => false,
                Some(reason) => self.clauses.get(reason).lits.iter().all(|&q| {
                    q.var() == v || self.seen[q.var().index()] || self.levels[q.var().index()] == 0
                }),
            };
            if !redundant {
                minimized.push(lit);
            }
        }
        let learned = minimized;

        // Compute the backtrack level: the highest level among the non-asserting
        // literals (0 for unit learned clauses).
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_level = 0;
            for &lit in &learned[1..] {
                max_level = max_level.max(self.levels[lit.var().index()]);
            }
            max_level
        };

        for &lit in &original {
            self.seen[lit.var().index()] = false;
        }
        self.stats.learned_literals += learned.len() as u64;
        (learned, backtrack_level)
    }

    /// Undo assignments above the given decision level.
    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for idx in (target..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.phases[v.index()] = lit.is_positive();
            self.reasons[v.index()] = None;
            if self.heap_index[v.index()].is_none() {
                self.heap_insert(v);
            }
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    /// Record the learned clause and assert its first literal.
    fn learn(&mut self, learned: Vec<Lit>) {
        let asserting = learned[0];
        if learned.len() == 1 {
            self.enqueue(asserting, None);
        } else {
            // Ensure the second watched literal has the highest level so the
            // clause becomes unit exactly at the backtrack level.
            let mut lits = learned;
            let mut best = 1;
            for k in 2..lits.len() {
                if self.levels[lits[k].var().index()] > self.levels[lits[best].var().index()] {
                    best = k;
                }
            }
            lits.swap(1, best);
            let cref = self.clauses.add(Clause::new(lits, true));
            self.attach(cref);
            self.bump_clause(cref);
            self.enqueue(asserting, Some(cref));
        }
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Remove half of the learned clauses with the lowest activity.
    fn reduce_db(&mut self) {
        let mut refs = self.clauses.learned_refs();
        refs.retain(|&r| {
            let c = self.clauses.get(r);
            // Keep clauses that are the reason of a current assignment.
            !c.lits
                .first()
                .map(|&l| self.reasons[l.var().index()] == Some(r))
                .unwrap_or(false)
        });
        refs.sort_by(|&a, &b| {
            self.clauses
                .get(a)
                .activity
                .partial_cmp(&self.clauses.get(b).activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &r in refs.iter().take(refs.len() / 2) {
            self.detach(r);
            self.clauses.delete(r);
        }
    }

    /// Remove a clause from the watch lists.
    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.clauses.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    // ---- VSIDS order heap -------------------------------------------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        let pos = self.heap.len();
        self.heap.push(v);
        self.heap_index[v.index()] = Some(pos);
        self.heap_sift_up(pos);
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap_less(self.heap[pos], self.heap[parent]) {
                self.heap_swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len() && self.heap_less(self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && self.heap_less(self.heap[right], self.heap[best]) {
                best = right;
            }
            if best == pos {
                break;
            }
            self.heap_swap(pos, best);
            pos = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = Some(a);
        self.heap_index[self.heap[b].index()] = Some(b);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_index[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Pick the next decision variable: the unassigned variable with the
    /// highest activity, assigned its saved phase.
    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()].is_undef() {
                self.stats.decisions += 1;
                return Some(Lit::new(v, self.phases[v.index()]));
            }
        }
        None
    }

    // ---- Top-level solving ------------------------------------------------

    /// Solve the formula with no assumptions and no budget.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[], Budget::unlimited())
    }

    /// Solve under assumptions, with a resource budget.
    ///
    /// Assumptions are treated as forced decisions at the bottom of the
    /// search; if any assumption conflicts with the formula the result is
    /// `Unsat` (for this call only — the formula itself is untouched).
    pub fn solve_with(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.budget_propagations = budget.max_propagations;
        self.budget_conflicts = budget.max_conflicts;
        self.solve_conflicts = 0;
        self.solve_propagations = 0;

        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }

        let mut restart_count = 0u64;
        let mut conflicts_since_restart = 0u64;
        let result = loop {
            // (Re-)establish the assumptions after any restart.
            if self.decision_level() < assumptions.len() as u32 {
                let a = assumptions[self.decision_level() as usize];
                match self.value_lit(a) {
                    LBool::True => {
                        // Already implied; open an empty decision level so the
                        // remaining assumptions keep their positions.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    LBool::False => break SatResult::Unsat,
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else if let Some(decision) = self.decide() {
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, None);
            } else {
                break SatResult::Sat;
            }

            loop {
                match self.propagate() {
                    None => break,
                    Some(conflict) => {
                        self.stats.conflicts += 1;
                        self.solve_conflicts += 1;
                        conflicts_since_restart += 1;
                        if self.decision_level() == 0 {
                            self.unsat = true;
                            return SatResult::Unsat;
                        }
                        if self.decision_level() <= assumptions.len() as u32 {
                            // Conflict within the assumption levels: the
                            // assumptions are inconsistent with the formula.
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        let (learned, level) = self.analyze(conflict);
                        let level = level.max(assumptions.len() as u32);
                        self.backtrack(level);
                        // If backtracking landed inside assumption levels and
                        // the asserting literal is already false there, the
                        // assumptions are inconsistent.
                        if self.value_lit(learned[0]) == LBool::False {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        if self.value_lit(learned[0]) == LBool::True {
                            // Already satisfied after backtracking (can happen
                            // when clamped to the assumption level); just
                            // record the clause if it is not unit.
                            if learned.len() > 1 {
                                let mut lits = learned;
                                let cref = {
                                    let mut best = 1;
                                    for k in 2..lits.len() {
                                        if self.levels[lits[k].var().index()]
                                            > self.levels[lits[best].var().index()]
                                        {
                                            best = k;
                                        }
                                    }
                                    lits.swap(1, best);
                                    self.clauses.add(Clause::new(lits, true))
                                };
                                self.attach(cref);
                            }
                        } else {
                            self.learn(learned);
                        }
                    }
                }
                if self.solve_propagations > self.budget_propagations
                    || self.solve_conflicts > self.budget_conflicts
                {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
            }

            if self.solve_propagations > self.budget_propagations
                || self.solve_conflicts > self.budget_conflicts
            {
                self.backtrack(0);
                return SatResult::Unknown;
            }

            // Luby restarts.
            let restart_limit = 64 * luby(restart_count);
            if conflicts_since_restart >= restart_limit {
                restart_count += 1;
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                self.backtrack(0);
            }

            if self.clauses.num_learned > self.max_learned + self.trail.len() {
                self.reduce_db();
            }
        };

        if result == SatResult::Sat {
            // Leave the trail intact so `model_value` can read the assignment;
            // the next solve call backtracks to level 0 first.
        }
        result
    }

    /// Value of a variable in the model found by the last successful solve.
    pub fn model_value(&self, v: Var) -> bool {
        match self.assigns[v.index()] {
            LBool::True => true,
            LBool::False => false,
            // Variables not constrained by any clause may remain unassigned;
            // any value satisfies the formula, pick the saved phase.
            LBool::Undef => self.phases[v.index()],
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u64) -> u64 {
    // Work with the 1-based index x = i + 1; if x = 2^k - 1 the value is
    // 2^(k-1), otherwise recurse on x minus the largest full block below it.
    let mut x = i + 1;
    loop {
        let k = 64 - u64::from(x.leading_zeros()); // 2^(k-1) <= x < 2^k
        if x == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(solver: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert!(!s.add_clause(&[v.negative()]) || s.solve() == SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a -> b), (b -> c), a  =>  c must be true.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive()]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: x0 and x1 each must be placed (true), but
        // they cannot both be true.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[1].positive()]);
        s.add_clause(&[v[0].negative(), v[1].negative()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p[i][j]: j indexes the inner dim
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon in some hole; no two
        // pigeons share a hole. Classic small UNSAT instance that requires
        // real search.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
        let mut s = SatSolver::new();
        let v = vars(&mut s, 3);
        let xor_clauses = |s: &mut SatSolver, a: Var, b: Var| {
            s.add_clause(&[a.positive(), b.positive()]);
            s.add_clause(&[a.negative(), b.negative()]);
        };
        xor_clauses(&mut s, v[0], v[1]);
        xor_clauses(&mut s, v[1], v[2]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]));
        assert!(!s.model_value(v[1]));
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        let w = s.new_var();
        s.add_clause(&[v.positive(), w.positive()]);
        assert_eq!(
            s.solve_with(&[v.negative(), w.negative()], Budget::unlimited()),
            SatResult::Unsat
        );
        // The formula itself is still satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(
            s.solve_with(&[v.negative()], Budget::unlimited()),
            SatResult::Sat
        );
        assert!(s.model_value(w));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // p[i][j]: j indexes the inner dim
    fn budget_exhaustion_returns_unknown() {
        // A hard-ish pigeonhole instance with a tiny budget must give Unknown.
        let n = 7usize; // pigeons
        let m = 6usize; // holes
        let mut s = SatSolver::new();
        let mut p = vec![vec![Var(0); m]; n];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[p[i][j].negative(), p[k][j].negative()]);
                }
            }
        }
        let result = s.solve_with(&[], Budget::propagations(50));
        assert_eq!(result, SatResult::Unknown);
        // With an unlimited budget it is UNSAT.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix[0], 1);
        assert_eq!(prefix[1], 1);
        assert_eq!(prefix[2], 2);
        // The sequence must be positive and bounded by powers of two.
        assert!(prefix.iter().all(|&x| x >= 1 && x.is_power_of_two()));
    }

    #[test]
    fn many_random_like_clauses_stay_consistent() {
        // A deterministic pseudo-random 3-SAT instance at low clause density
        // (should be SAT) — checks the model against the clauses.
        let nv = 30usize;
        let mut s = SatSolver::new();
        let v = vars(&mut s, nv);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut clauses = Vec::new();
        for _ in 0..60 {
            let mut clause = Vec::new();
            for _ in 0..3 {
                let var = v[next() % nv];
                let pos = next() % 2 == 0;
                clause.push(Lit::new(var, pos));
            }
            clauses.push(clause.clone());
            s.add_clause(&clause);
        }
        if s.solve() == SatResult::Sat {
            for clause in &clauses {
                assert!(clause.iter().any(|&l| {
                    let val = s.model_value(l.var());
                    if l.is_positive() {
                        val
                    } else {
                        !val
                    }
                }));
            }
        }
    }
}
