//! Bit-blasting: translating bit-vector terms into CNF for the SAT core.
//!
//! Every boolean term maps to a single literal and every bit-vector term to a
//! vector of literals (least-significant bit first). Structural sharing in
//! the term DAG carries over: each term is translated once and cached.
//! Arithmetic uses ripple-carry adders, shift-and-add multiplication,
//! restoring division, and a staged barrel shifter — all emitted as Tseitin
//! gates over fresh variables.

use std::collections::HashMap;

use crate::lit::Lit;
use crate::model::Model;
use crate::sat::SatSolver;
use crate::term::{TermId, TermKind, TermPool};

/// Translator state: caches from terms to literals plus the variable map used
/// for model extraction.
#[derive(Default)]
pub struct BitBlaster {
    bool_cache: HashMap<TermId, Lit>,
    bv_cache: HashMap<TermId, Vec<Lit>>,
    /// Literal constrained to be true (allocated lazily).
    true_lit: Option<Lit>,
    /// Bits allocated for each free variable, by name, for model extraction.
    var_bits: HashMap<String, Vec<Lit>>,
}

impl BitBlaster {
    /// Create an empty bit-blaster.
    pub fn new() -> BitBlaster {
        BitBlaster::default()
    }

    /// The SAT literals backing a free variable, if it appears in any blasted
    /// term. Boolean variables have a single literal.
    pub fn variable_bits(&self, name: &str) -> Option<&[Lit]> {
        self.var_bits.get(name).map(|v| v.as_slice())
    }

    /// All blasted variables and their literals.
    pub fn variables(&self) -> impl Iterator<Item = (&String, &Vec<Lit>)> {
        self.var_bits.iter()
    }

    /// Read back a [`Model`] for every blasted free variable from the SAT
    /// solver's current assignment (valid after a `Sat` answer, before the
    /// next solve call backtracks the trail).
    pub fn extract_model(&self, sat: &SatSolver) -> Model {
        let mut model = Model::new();
        for (name, bits) in self.variables() {
            let mut value = 0u64;
            for (i, &lit) in bits.iter().enumerate() {
                if sat.model_value(lit.var()) == lit.is_positive() {
                    value |= 1u64 << i;
                }
            }
            model.set(name, value);
        }
        model
    }

    /// A literal that is always true.
    pub fn true_lit(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = sat.new_var().positive();
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// A literal that is always false.
    pub fn false_lit(&mut self, sat: &mut SatSolver) -> Lit {
        !self.true_lit(sat)
    }

    fn fresh(&mut self, sat: &mut SatSolver) -> Lit {
        sat.new_var().positive()
    }

    // ---- Tseitin gates -------------------------------------------------------

    /// Output literal constrained to `a AND b`.
    fn gate_and(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit(sat);
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!o, a]);
        sat.add_clause(&[!o, b]);
        sat.add_clause(&[o, !a, !b]);
        o
    }

    /// Output literal constrained to `a OR b`.
    fn gate_or(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        !self.gate_and(sat, !a, !b)
    }

    /// Output literal constrained to `a XOR b`.
    fn gate_xor(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.false_lit(sat);
        }
        if a == !b {
            return self.true_lit(sat);
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!o, a, b]);
        sat.add_clause(&[!o, !a, !b]);
        sat.add_clause(&[o, !a, b]);
        sat.add_clause(&[o, a, !b]);
        o
    }

    /// Output literal constrained to `cond ? t : e`.
    fn gate_mux(&mut self, sat: &mut SatSolver, cond: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let o = self.fresh(sat);
        sat.add_clause(&[!cond, !t, o]);
        sat.add_clause(&[!cond, t, !o]);
        sat.add_clause(&[cond, !e, o]);
        sat.add_clause(&[cond, e, !o]);
        o
    }

    /// Majority-of-three gate (the carry of a full adder).
    fn gate_maj(&mut self, sat: &mut SatSolver, a: Lit, b: Lit, c: Lit) -> Lit {
        let o = self.fresh(sat);
        sat.add_clause(&[!o, a, b]);
        sat.add_clause(&[!o, a, c]);
        sat.add_clause(&[!o, b, c]);
        sat.add_clause(&[o, !a, !b]);
        sat.add_clause(&[o, !a, !c]);
        sat.add_clause(&[o, !b, !c]);
        o
    }

    /// AND over a slice of literals.
    fn gate_and_many(&mut self, sat: &mut SatSolver, lits: &[Lit]) -> Lit {
        let mut acc = self.true_lit(sat);
        for &l in lits {
            acc = self.gate_and(sat, acc, l);
        }
        acc
    }

    /// OR over a slice of literals.
    fn gate_or_many(&mut self, sat: &mut SatSolver, lits: &[Lit]) -> Lit {
        let mut acc = self.false_lit(sat);
        for &l in lits {
            acc = self.gate_or(sat, acc, l);
        }
        acc
    }

    // ---- Word-level gadgets ----------------------------------------------------

    /// Ripple-carry addition; returns (sum bits, carry out).
    fn adder(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        b: &[Lit],
        carry_in: Lit,
    ) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = Vec::with_capacity(a.len());
        let mut carry = carry_in;
        for i in 0..a.len() {
            let axb = self.gate_xor(sat, a[i], b[i]);
            let s = self.gate_xor(sat, axb, carry);
            let cout = self.gate_maj(sat, a[i], b[i], carry);
            sum.push(s);
            carry = cout;
        }
        (sum, carry)
    }

    /// Subtraction `a - b`; returns (difference bits, "no borrow" flag which
    /// equals `a >= b` unsigned).
    fn subtractor(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let one = self.true_lit(sat);
        self.adder(sat, a, &nb, one)
    }

    /// Per-bit multiplexer between two words.
    fn mux_word(&mut self, sat: &mut SatSolver, cond: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(t.len(), e.len());
        t.iter()
            .zip(e.iter())
            .map(|(&ti, &ei)| self.gate_mux(sat, cond, ti, ei))
            .collect()
    }

    /// Unsigned comparison `a < b`.
    fn ult(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  a - b borrows  iff  NOT carry-out of a + ~b + 1.
        let (_, no_borrow) = self.subtractor(sat, a, b);
        !no_borrow
    }

    /// Signed comparison `a < b`.
    fn slt(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let n = a.len();
        let sign_a = a[n - 1];
        let sign_b = b[n - 1];
        let unsigned_lt = self.ult(sat, a, b);
        // If the signs differ, a < b iff a is negative; otherwise use the
        // unsigned comparison (two's complement ordering coincides there).
        let diff = self.gate_xor(sat, sign_a, sign_b);
        self.gate_mux(sat, diff, sign_a, unsigned_lt)
    }

    /// Word equality.
    fn eq_word(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Lit {
        let bits: Vec<Lit> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| !self.gate_xor(sat, x, y))
            .collect();
        self.gate_and_many(sat, &bits)
    }

    /// Shift-and-add multiplication (low `n` bits of the product).
    fn multiplier(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let n = a.len();
        let fl = self.false_lit(sat);
        let mut acc = vec![fl; n];
        for i in 0..n {
            // Partial product: (a << i) AND b[i], truncated to n bits.
            let mut partial = vec![fl; n];
            for j in 0..n - i {
                partial[i + j] = self.gate_and(sat, a[j], b[i]);
            }
            let (sum, _) = self.adder(sat, &acc, &partial, fl);
            acc = sum;
        }
        acc
    }

    /// Restoring division; returns (quotient, remainder) with the SMT-LIB
    /// convention for a zero divisor (quotient all ones, remainder = dividend).
    fn divider(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let n = a.len();
        let fl = self.false_lit(sat);
        // Work with an (n+1)-bit remainder so the compare/subtract never
        // overflows.
        let mut rem: Vec<Lit> = vec![fl; n + 1];
        let mut quot: Vec<Lit> = vec![fl; n];
        let divisor: Vec<Lit> = b.iter().copied().chain(std::iter::once(fl)).collect();
        for i in (0..n).rev() {
            // rem = (rem << 1) | a[i]
            let mut shifted = Vec::with_capacity(n + 1);
            shifted.push(a[i]);
            shifted.extend_from_slice(&rem[..n]);
            // If rem >= divisor, subtract and set the quotient bit.
            let (diff, no_borrow) = self.subtractor(sat, &shifted, &divisor);
            rem = self.mux_word(sat, no_borrow, &diff, &shifted);
            quot[i] = no_borrow;
        }
        (quot, rem[..n].to_vec())
    }

    /// Two's-complement negation of a word.
    fn negate(&mut self, sat: &mut SatSolver, a: &[Lit]) -> Vec<Lit> {
        let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
        let fl = self.false_lit(sat);
        let tl = self.true_lit(sat);
        let zero = vec![fl; a.len()];
        let (sum, _) = self.adder(sat, &inverted, &zero, tl);
        sum
    }

    /// Conditional negation: `cond ? -a : a`.
    fn negate_if(&mut self, sat: &mut SatSolver, cond: Lit, a: &[Lit]) -> Vec<Lit> {
        let neg = self.negate(sat, a);
        self.mux_word(sat, cond, &neg, a)
    }

    /// Barrel shifter. `kind` selects logical-left, logical-right, or
    /// arithmetic-right; shift amounts `>= width` saturate to the fill value.
    fn shifter(
        &mut self,
        sat: &mut SatSolver,
        a: &[Lit],
        amount: &[Lit],
        kind: ShiftKind,
    ) -> Vec<Lit> {
        let n = a.len();
        let fl = self.false_lit(sat);
        let fill = match kind {
            ShiftKind::Left | ShiftKind::LogicalRight => fl,
            ShiftKind::ArithRight => a[n - 1],
        };
        let stages = usize::try_from(64 - (n as u64 - 1).leading_zeros()).unwrap(); // ceil(log2 n)
        let mut cur: Vec<Lit> = a.to_vec();
        for (k, &cond) in amount.iter().enumerate().take(stages) {
            let shift_by = 1usize << k;
            let mut shifted = vec![fill; n];
            match kind {
                ShiftKind::Left => {
                    shifted[shift_by..n].copy_from_slice(&cur[..n - shift_by]);
                }
                ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                    for i in 0..n {
                        shifted[i] = if i + shift_by < n {
                            cur[i + shift_by]
                        } else {
                            fill
                        };
                    }
                }
            }
            cur = self.mux_word(sat, cond, &shifted, &cur);
        }
        // If the amount is >= n (any high bit set, or the low bits encode a
        // value >= n when n is not a power of two), the result is all fill.
        let mut overshift_bits: Vec<Lit> = amount[stages..].to_vec();
        if !n.is_power_of_two() {
            // Compare the low `stages` bits against n.
            let low = &amount[..stages];
            let n_bits: Vec<Lit> = (0..stages)
                .map(|i| {
                    if (n >> i) & 1 == 1 {
                        self.true_lit(sat)
                    } else {
                        fl
                    }
                })
                .collect();
            let lt = self.ult(sat, low, &n_bits);
            overshift_bits.push(!lt);
        }
        let overshift = self.gate_or_many(sat, &overshift_bits);
        let filled = vec![fill; n];
        self.mux_word(sat, overshift, &filled, &cur)
    }

    // ---- Term translation --------------------------------------------------------

    /// The literal a boolean term was already translated to, if any. A
    /// read-only probe into the memo table: callers mapping assumption cores
    /// back to terms must not trigger fresh blasting.
    pub fn bool_literal(&self, t: TermId) -> Option<Lit> {
        self.bool_cache.get(&t).copied()
    }

    /// Translate a boolean term to a literal.
    pub fn blast_bool(&mut self, pool: &TermPool, sat: &mut SatSolver, t: TermId) -> Lit {
        debug_assert!(pool.sort(t).is_bool(), "blast_bool on non-boolean term");
        if let Some(&l) = self.bool_cache.get(&t) {
            return l;
        }
        let kind = pool.term(t).kind.clone();
        let lit = match kind {
            TermKind::BoolConst(true) => self.true_lit(sat),
            TermKind::BoolConst(false) => self.false_lit(sat),
            TermKind::Var { name, sort } => {
                debug_assert!(sort.is_bool());
                let l = self.fresh(sat);
                self.var_bits.entry(name).or_insert_with(|| vec![l]);
                l
            }
            TermKind::Not(a) => {
                let la = self.blast_bool(pool, sat, a);
                !la
            }
            TermKind::And(a, b) => {
                let la = self.blast_bool(pool, sat, a);
                let lb = self.blast_bool(pool, sat, b);
                self.gate_and(sat, la, lb)
            }
            TermKind::Or(a, b) => {
                let la = self.blast_bool(pool, sat, a);
                let lb = self.blast_bool(pool, sat, b);
                self.gate_or(sat, la, lb)
            }
            TermKind::Xor(a, b) => {
                let la = self.blast_bool(pool, sat, a);
                let lb = self.blast_bool(pool, sat, b);
                self.gate_xor(sat, la, lb)
            }
            TermKind::Implies(a, b) => {
                let la = self.blast_bool(pool, sat, a);
                let lb = self.blast_bool(pool, sat, b);
                self.gate_or(sat, !la, lb)
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, sat, c);
                let la = self.blast_bool(pool, sat, a);
                let lb = self.blast_bool(pool, sat, b);
                self.gate_mux(sat, lc, la, lb)
            }
            TermKind::Eq(a, b) => {
                if pool.sort(a).is_bool() {
                    let la = self.blast_bool(pool, sat, a);
                    let lb = self.blast_bool(pool, sat, b);
                    !self.gate_xor(sat, la, lb)
                } else {
                    let wa = self.blast_bv(pool, sat, a);
                    let wb = self.blast_bv(pool, sat, b);
                    self.eq_word(sat, &wa, &wb)
                }
            }
            TermKind::BvUlt(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.ult(sat, &wa, &wb)
            }
            TermKind::BvUle(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                !self.ult(sat, &wb, &wa)
            }
            TermKind::BvSlt(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.slt(sat, &wa, &wb)
            }
            TermKind::BvSle(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                !self.slt(sat, &wb, &wa)
            }
            other => panic!("blast_bool: unexpected boolean term kind {other:?}"),
        };
        self.bool_cache.insert(t, lit);
        lit
    }

    /// Translate a bit-vector term to its literals (LSB first).
    pub fn blast_bv(&mut self, pool: &TermPool, sat: &mut SatSolver, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bv_cache.get(&t) {
            return bits.clone();
        }
        let width = pool.width(t) as usize;
        let kind = pool.term(t).kind.clone();
        let bits: Vec<Lit> = match kind {
            TermKind::BvConst { value, .. } => {
                let tl = self.true_lit(sat);
                (0..width)
                    .map(|i| if (value >> i) & 1 == 1 { tl } else { !tl })
                    .collect()
            }
            TermKind::Var { name, .. } => {
                if let Some(bits) = self.var_bits.get(&name) {
                    bits.clone()
                } else {
                    let bits: Vec<Lit> = (0..width).map(|_| self.fresh(sat)).collect();
                    self.var_bits.insert(name, bits.clone());
                    bits
                }
            }
            TermKind::BvNot(a) => {
                let wa = self.blast_bv(pool, sat, a);
                wa.iter().map(|&l| !l).collect()
            }
            TermKind::BvNeg(a) => {
                let wa = self.blast_bv(pool, sat, a);
                self.negate(sat, &wa)
            }
            TermKind::BvAdd(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                let fl = self.false_lit(sat);
                self.adder(sat, &wa, &wb, fl).0
            }
            TermKind::BvSub(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.subtractor(sat, &wa, &wb).0
            }
            TermKind::BvMul(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.multiplier(sat, &wa, &wb)
            }
            TermKind::BvUdiv(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.divider(sat, &wa, &wb).0
            }
            TermKind::BvUrem(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.divider(sat, &wa, &wb).1
            }
            TermKind::BvSdiv(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                let sign_a = wa[width - 1];
                let sign_b = wb[width - 1];
                let abs_a = self.negate_if(sat, sign_a, &wa);
                let abs_b = self.negate_if(sat, sign_b, &wb);
                let (q, _) = self.divider(sat, &abs_a, &abs_b);
                let diff_sign = self.gate_xor(sat, sign_a, sign_b);
                self.negate_if(sat, diff_sign, &q)
            }
            TermKind::BvSrem(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                let sign_a = wa[width - 1];
                let sign_b = wb[width - 1];
                let abs_a = self.negate_if(sat, sign_a, &wa);
                let abs_b = self.negate_if(sat, sign_b, &wb);
                let (_, r) = self.divider(sat, &abs_a, &abs_b);
                self.negate_if(sat, sign_a, &r)
            }
            TermKind::BvAnd(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                wa.iter()
                    .zip(wb.iter())
                    .map(|(&x, &y)| self.gate_and(sat, x, y))
                    .collect()
            }
            TermKind::BvOr(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                wa.iter()
                    .zip(wb.iter())
                    .map(|(&x, &y)| self.gate_or(sat, x, y))
                    .collect()
            }
            TermKind::BvXor(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                wa.iter()
                    .zip(wb.iter())
                    .map(|(&x, &y)| self.gate_xor(sat, x, y))
                    .collect()
            }
            TermKind::BvShl(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.shifter(sat, &wa, &wb, ShiftKind::Left)
            }
            TermKind::BvLshr(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.shifter(sat, &wa, &wb, ShiftKind::LogicalRight)
            }
            TermKind::BvAshr(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.shifter(sat, &wa, &wb, ShiftKind::ArithRight)
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, sat, c);
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                self.mux_word(sat, lc, &wa, &wb)
            }
            TermKind::ZExt { value, .. } => {
                let wa = self.blast_bv(pool, sat, value);
                let fl = self.false_lit(sat);
                let mut bits = wa;
                bits.resize(width, fl);
                bits
            }
            TermKind::SExt { value, .. } => {
                let wa = self.blast_bv(pool, sat, value);
                let sign = *wa.last().expect("non-empty word");
                let mut bits = wa;
                bits.resize(width, sign);
                bits
            }
            TermKind::Extract { value, hi, lo } => {
                let wa = self.blast_bv(pool, sat, value);
                wa[lo as usize..=hi as usize].to_vec()
            }
            TermKind::Concat(a, b) => {
                let wa = self.blast_bv(pool, sat, a);
                let wb = self.blast_bv(pool, sat, b);
                let mut bits = wb;
                bits.extend_from_slice(&wa);
                bits
            }
            other => panic!("blast_bv: unexpected bit-vector term kind {other:?}"),
        };
        debug_assert_eq!(bits.len(), width);
        self.bv_cache.insert(t, bits.clone());
        bits
    }
}

/// Direction/fill behaviour of the barrel shifter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    /// Assert a boolean term and check satisfiability from scratch.
    fn check(pool: &mut TermPool, t: TermId) -> SatResult {
        let mut sat = SatSolver::new();
        let mut blaster = BitBlaster::new();
        let lit = blaster.blast_bool(pool, &mut sat, t);
        sat.add_clause(&[lit]);
        sat.solve()
    }

    #[test]
    fn add_commutes_with_constants() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let y = p.bv_var("y", 8);
        let xy = p.bv_add(x, y);
        let yx = p.bv_add(y, x);
        // x + y != y + x must be UNSAT.
        let neq = p.ne(xy, yx);
        assert_eq!(check(&mut p, neq), SatResult::Unsat);
    }

    #[test]
    fn unsigned_overflow_is_possible() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let c = p.bv_const(8, 100);
        let sum = p.bv_add(x, c);
        // exists x: x + 100 < x (unsigned wraparound) — SAT.
        let wrap = p.bv_ult(sum, x);
        assert_eq!(check(&mut p, wrap), SatResult::Sat);
    }

    #[test]
    fn mul_matches_shift_for_power_of_two() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let four = p.bv_const(8, 4);
        let two = p.bv_const(8, 2);
        let by_mul = p.bv_mul(x, four);
        let by_shift = p.bv_shl(x, two);
        let neq = p.ne(by_mul, by_shift);
        assert_eq!(check(&mut p, neq), SatResult::Unsat);
    }

    #[test]
    fn division_identity() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 6);
        let y = p.bv_var("y", 6);
        let zero = p.bv_const(6, 0);
        // y != 0 -> (x / y) * y + (x % y) == x
        let q = p.bv_udiv(x, y);
        let r = p.bv_urem(x, y);
        let prod = p.bv_mul(q, y);
        let back = p.bv_add(prod, r);
        let identity = p.eq(back, x);
        let y_nonzero = p.ne(y, zero);
        let violated = p.not(identity);
        let query = p.and(y_nonzero, violated);
        assert_eq!(check(&mut p, query), SatResult::Unsat);
    }

    #[test]
    fn signed_division_int_min_wraps() {
        let mut p = TermPool::new();
        // -128 / -1 == -128 in 8-bit wrap-around semantics.
        let int_min = p.bv_const(8, 0x80);
        let minus_one = p.bv_const(8, 0xFF);
        let x = p.bv_var("x", 8);
        let q = p.bv_sdiv(x, minus_one);
        let x_is_min = p.eq(x, int_min);
        let q_is_min = p.eq(q, int_min);
        let not_wrapping = p.not(q_is_min);
        let query = p.and(x_is_min, not_wrapping);
        assert_eq!(check(&mut p, query), SatResult::Unsat);
    }

    #[test]
    fn shift_semantics() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let three = p.bv_const(8, 3);
        let eight = p.bv_const(8, 8);
        let zero = p.bv_const(8, 0);
        // Oversized shift gives zero.
        let over = p.bv_shl(x, eight);
        let nonzero = p.ne(over, zero);
        assert_eq!(check(&mut p, nonzero), SatResult::Unsat);
        // x << 3 == x * 8.
        let shifted = p.bv_shl(x, three);
        let scaled = p.bv_mul(x, eight);
        let neq = p.ne(shifted, scaled);
        assert_eq!(check(&mut p, neq), SatResult::Unsat);
    }

    #[test]
    fn ashr_keeps_sign() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let seven = p.bv_const(8, 7);
        let zero = p.bv_const(8, 0);
        let minus_one = p.bv_const(8, 0xFF);
        // x >> 7 (arithmetic) is either 0 or -1.
        let sh = p.bv_ashr(x, seven);
        let is_zero = p.eq(sh, zero);
        let is_m1 = p.eq(sh, minus_one);
        let either = p.or(is_zero, is_m1);
        let violated = p.not(either);
        assert_eq!(check(&mut p, violated), SatResult::Unsat);
    }

    #[test]
    fn signed_comparison_orders_negative_first() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let zero = p.bv_const(8, 0);
        let c100 = p.bv_const(8, 100);
        // exists x: x < 0 (signed) AND x > 100 (unsigned view of negatives) — SAT.
        let neg = p.bv_slt(x, zero);
        let big = p.bv_ugt(x, c100);
        let q = p.and(neg, big);
        assert_eq!(check(&mut p, q), SatResult::Sat);
        // No x is both signed-negative and signed-greater-than 100.
        let sbig = p.bv_sgt(x, c100);
        let q2 = p.and(neg, sbig);
        assert_eq!(check(&mut p, q2), SatResult::Unsat);
    }

    #[test]
    fn sext_zext_differ_only_for_negatives() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 8);
        let zero = p.bv_const(8, 0);
        let se = p.sext(x, 16);
        let ze = p.zext(x, 16);
        let differ = p.ne(se, ze);
        let nonneg = p.bv_sge(x, zero);
        let q = p.and(differ, nonneg);
        assert_eq!(check(&mut p, q), SatResult::Unsat);
        let negative = p.bv_slt(x, zero);
        let q2 = p.and(differ, negative);
        assert_eq!(check(&mut p, q2), SatResult::Sat);
    }

    #[test]
    fn pointer_overflow_check_is_unstable_shape() {
        // The Figure 1 shape: for unsigned len, buf + len < buf is satisfiable
        // in wrap-around semantics but contradicts the no-pointer-overflow
        // assumption (buf + len computed in infinite precision stays in range).
        let mut p = TermPool::new();
        let buf = p.bv_var("buf", 16);
        let len = p.bv_var("len", 16);
        let sum = p.bv_add(buf, len);
        let wrapped = p.bv_ult(sum, buf);
        // Wrap-around semantics (C*): satisfiable.
        assert_eq!(check(&mut p, wrapped), SatResult::Sat);
        // With the well-defined assumption (no overflow in infinite precision,
        // modeled by checking the 17-bit sum does not exceed 16 bits):
        let buf17 = p.zext(buf, 17);
        let len17 = p.zext(len, 17);
        let wide_sum = p.bv_add(buf17, len17);
        let max16 = p.bv_const(17, 0xFFFF);
        let no_ovf = p.bv_ule(wide_sum, max16);
        let query = p.and(wrapped, no_ovf);
        assert_eq!(check(&mut p, query), SatResult::Unsat);
    }
}
