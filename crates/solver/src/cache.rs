//! Memoized SAT/UNSAT query cache.
//!
//! The checker re-issues structurally identical QF_BV queries across
//! fragments and functions: the same `p != NULL` / overflow side conditions
//! appear in the elimination query of every block a condition dominates, and
//! the synthetic Debian population (§6.5) instantiates the same unstable
//! idioms over and over. The paper reports that solver time dominates the
//! analysis (Figure 16), so answering a repeated query from a lookup instead
//! of a fresh bit-blast + CDCL run is the single highest-leverage shortcut.
//!
//! Keys are *structural*: each assertion is reduced to a 128-bit fingerprint
//! of its term DAG (operator tags, constant payloads, variable names), and a
//! query's key is the sorted, deduplicated multiset of its assertions'
//! fingerprints. This makes the key
//!
//! * **pool-independent** — every function is encoded in its own
//!   [`TermPool`], so raw [`TermId`]s never coincide
//!   across functions, but structurally identical formulas do;
//! * **order-insensitive** — `check(&[a, b])` and `check(&[b, a])` hit the
//!   same entry, as does `check(&[and(a, b)])` after conjunction flattening;
//! * cheap — hash-consing means the DAG walk is linear in distinct subterms,
//!   and the per-solver fingerprint memo amortizes it across the many
//!   queries the checker issues against one function encoding.
//!
//! Only decided results are cached: `Sat` (with its witness model — variable
//! names are part of the fingerprint, so a cached model is valid for every
//! structurally identical query) and `Unsat`. Budget-exhausted `Unknown`
//! results are never cached, so raising the budget can never be masked by a
//! stale timeout. The witness is an in-process convenience only: it is
//! whatever assignment the search landed on, not a canonical property of
//! the query, so the disk-backed store persists the decided fact without it
//! (see `store.rs`).
//!
//! The cache is sharded (`Mutex<HashMap>` per shard, shard picked by key
//! hash) and shared across the parallel checker's worker threads through an
//! [`Arc`](std::sync::Arc).

use crate::model::Model;
use crate::solver::QueryResult;
use crate::term::{Sort, TermId, TermKind, TermPool};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards; a small power of two keeps contention low
/// without bloating the structure.
const SHARDS: usize = 16;

/// A canonical, pool-independent key for an assertion set: the sorted,
/// deduplicated structural fingerprints of the assertions.
pub type CacheKey = Vec<u128>;

/// A decided query outcome, as stored in the cache (`Unknown` is excluded by
/// construction).
#[derive(Clone, Debug)]
enum CachedResult {
    Sat(Model),
    Unsat,
}

/// Aggregate cache counters (process-wide for one cache instance).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and, for decided queries, later inserted).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// Fold the (already well-mixed) fingerprints of a key into a shard index.
/// Shared with the disk store's last-used-generation side table so both
/// structures split contention identically.
pub(crate) fn shard_index(key: &CacheKey) -> usize {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for fp in key {
        acc ^= (*fp as u64) ^ ((*fp >> 64) as u64);
        acc = acc.wrapping_mul(0x100_0000_01b3);
    }
    (acc as usize) % SHARDS
}

/// Number of shards [`shard_index`] distributes over (the cache's own
/// shard count).
pub(crate) const STAMP_SHARDS: usize = SHARDS;

/// A sharded, thread-safe memoization table for solver queries.
#[derive(Debug, Default)]
pub struct QueryCache {
    shards: [Mutex<HashMap<CacheKey, CachedResult>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, CachedResult>> {
        &self.shards[shard_index(key)]
    }

    /// Look up a decided result for `key`, updating hit/miss counters.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned();
        match found {
            Some(CachedResult::Sat(model)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(QueryResult::Sat(model))
            }
            Some(CachedResult::Unsat) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(QueryResult::Unsat)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a decided result. `Unknown` is silently ignored: a budget
    /// exhaustion is a property of the budget, not of the formula.
    pub(crate) fn insert(&self, key: CacheKey, result: &QueryResult) {
        let value = match result {
            QueryResult::Sat(model) => CachedResult::Sat(model.clone()),
            QueryResult::Unsat => CachedResult::Unsat,
            QueryResult::Unknown => return,
        };
        let mut shard = self
            .shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.insert(key, value).is_none() {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of every stored entry, as `(key, decided result)` pairs, in
    /// unspecified order. Used by the disk-backed store to persist the table
    /// and by diagnostics; not a hot path.
    pub fn entries_snapshot(&self) -> Vec<(CacheKey, QueryResult)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, value) in shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                let result = match value {
                    CachedResult::Sat(model) => QueryResult::Sat(model.clone()),
                    CachedResult::Unsat => QueryResult::Unsat,
                };
                out.push((key.clone(), result));
            }
        }
        out
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    }
}

// ---- Structural fingerprints ------------------------------------------------

/// Per-solver fingerprint memo. [`TermId`]s are only meaningful within one
/// pool, so the memo records the pool's epoch and resets itself whenever it
/// sees a different pool (the checker drives one function — one pool — at a
/// time through a solver, so in practice this is a clear-per-function).
#[derive(Debug, Default)]
pub(crate) struct FingerprintMemo {
    epoch: u64,
    memo: HashMap<TermId, u128>,
}

impl FingerprintMemo {
    /// Canonicalize an assertion set: the assertions sorted by structural
    /// fingerprint (ties are impossible within one pool — hash-consing makes
    /// structurally equal terms the *same* `TermId`, and duplicates are
    /// assumed already removed). The solver bit-blasts in this order, so the
    /// CNF it builds — and therefore a budget-boundary `Unknown` outcome —
    /// is a function of the canonical key alone, not of the order the
    /// checker happened to list the assertions in. That property is what
    /// makes a cache hit indistinguishable from recomputation.
    pub(crate) fn canonicalize(&mut self, pool: &TermPool, assertions: &mut [TermId]) -> CacheKey {
        if self.epoch != pool.epoch() {
            self.epoch = pool.epoch();
            self.memo.clear();
        }
        let mut pairs: Vec<(u128, TermId)> = assertions
            .iter()
            .map(|&a| (fingerprint(pool, a, &mut self.memo), a))
            .collect();
        pairs.sort_unstable();
        for (slot, (_, term)) in assertions.iter_mut().zip(&pairs) {
            *slot = *term;
        }
        let mut key: Vec<u128> = pairs.into_iter().map(|(fp, _)| fp).collect();
        key.dedup();
        key
    }
}

/// Canonical key for an assertion set (sorted, deduplicated structural
/// fingerprints), with a throwaway memo. Prefer a long-lived
/// [`BvSolver`](crate::solver::BvSolver) (which keeps a memo across
/// queries); this entry point exists for tests and diagnostics.
pub fn canonical_key(pool: &TermPool, assertions: &[TermId]) -> CacheKey {
    let mut seen = HashSet::new();
    let mut unique: Vec<TermId> = assertions
        .iter()
        .copied()
        .filter(|&t| seen.insert(t))
        .collect();
    FingerprintMemo::default().canonicalize(pool, &mut unique)
}

/// 128-bit mixing step (two rounds of a splitmix-style finalizer over the
/// halves, cross-fed so both halves depend on all inputs).
#[inline]
fn mix(acc: u128, value: u128) -> u128 {
    let mut lo = (acc as u64) ^ (value as u64);
    let mut hi = ((acc >> 64) as u64) ^ ((value >> 64) as u64);
    lo = lo.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(27);
    hi ^= lo.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hi = hi.rotate_left(31).wrapping_mul(0x94d0_49bb_1331_11eb);
    lo ^= hi >> 29;
    ((hi as u128) << 64) | lo as u128
}

#[inline]
fn mix_str(acc: u128, s: &str) -> u128 {
    let mut h = acc;
    for chunk in s.as_bytes().chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u128::from_le_bytes(block));
    }
    mix(h, s.len() as u128)
}

/// Operator tag and direct children of a term (for the DAG walk).
fn node_shape(pool: &TermPool, id: TermId) -> (u64, [Option<TermId>; 3]) {
    use TermKind::*;
    match &pool.term(id).kind {
        BoolConst(_) => (1, [None; 3]),
        BvConst { .. } => (2, [None; 3]),
        Var { .. } => (3, [None; 3]),
        Not(a) => (4, [Some(*a), None, None]),
        And(a, b) => (5, [Some(*a), Some(*b), None]),
        Or(a, b) => (6, [Some(*a), Some(*b), None]),
        Xor(a, b) => (7, [Some(*a), Some(*b), None]),
        Implies(a, b) => (8, [Some(*a), Some(*b), None]),
        Ite(c, a, b) => (9, [Some(*c), Some(*a), Some(*b)]),
        Eq(a, b) => (10, [Some(*a), Some(*b), None]),
        BvNot(a) => (11, [Some(*a), None, None]),
        BvNeg(a) => (12, [Some(*a), None, None]),
        BvAdd(a, b) => (13, [Some(*a), Some(*b), None]),
        BvSub(a, b) => (14, [Some(*a), Some(*b), None]),
        BvMul(a, b) => (15, [Some(*a), Some(*b), None]),
        BvUdiv(a, b) => (16, [Some(*a), Some(*b), None]),
        BvSdiv(a, b) => (17, [Some(*a), Some(*b), None]),
        BvUrem(a, b) => (18, [Some(*a), Some(*b), None]),
        BvSrem(a, b) => (19, [Some(*a), Some(*b), None]),
        BvAnd(a, b) => (20, [Some(*a), Some(*b), None]),
        BvOr(a, b) => (21, [Some(*a), Some(*b), None]),
        BvXor(a, b) => (22, [Some(*a), Some(*b), None]),
        BvShl(a, b) => (23, [Some(*a), Some(*b), None]),
        BvLshr(a, b) => (24, [Some(*a), Some(*b), None]),
        BvAshr(a, b) => (25, [Some(*a), Some(*b), None]),
        BvUlt(a, b) => (26, [Some(*a), Some(*b), None]),
        BvUle(a, b) => (27, [Some(*a), Some(*b), None]),
        BvSlt(a, b) => (28, [Some(*a), Some(*b), None]),
        BvSle(a, b) => (29, [Some(*a), Some(*b), None]),
        ZExt { value, .. } => (30, [Some(*value), None, None]),
        SExt { value, .. } => (31, [Some(*value), None, None]),
        Extract { value, .. } => (32, [Some(*value), None, None]),
        Concat(a, b) => (33, [Some(*a), Some(*b), None]),
    }
}

/// Leaf/operator payload folded into the hash alongside the tag.
fn node_payload(pool: &TermPool, id: TermId) -> u128 {
    use TermKind::*;
    match &pool.term(id).kind {
        BoolConst(b) => u128::from(*b),
        BvConst { width, value } => ((*width as u128) << 64) | *value as u128,
        Var { name, sort } => {
            let sort_tag: u128 = match sort {
                Sort::Bool => 1 << 96,
                Sort::BitVec(w) => (2u128 << 96) | ((*w as u128) << 64),
            };
            mix_str(sort_tag, name)
        }
        ZExt { width, .. } | SExt { width, .. } => *width as u128,
        Extract { hi, lo, .. } => ((*hi as u128) << 32) | *lo as u128,
        _ => 0,
    }
}

/// Structural fingerprint of a term: a 128-bit hash over the DAG below it.
/// Iterative post-order walk (encoded reachability conditions can nest
/// deeply, so recursion is off the table), memoized per node.
fn fingerprint(pool: &TermPool, root: TermId, memo: &mut HashMap<TermId, u128>) -> u128 {
    if let Some(&fp) = memo.get(&root) {
        return fp;
    }
    let mut stack = vec![root];
    while let Some(&id) = stack.last() {
        if memo.contains_key(&id) {
            stack.pop();
            continue;
        }
        let (tag, children) = node_shape(pool, id);
        let mut ready = true;
        for child in children.iter().flatten() {
            if !memo.contains_key(child) {
                stack.push(*child);
                ready = false;
            }
        }
        if !ready {
            continue;
        }
        let mut h = mix(0x0005_7ac4_c0de_0001_u128, tag as u128);
        h = mix(h, node_payload(pool, id));
        for child in children.iter().flatten() {
            h = mix(h, memo[child]);
        }
        memo.insert(id, h);
        stack.pop();
    }
    memo[&root]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_order_insensitive_and_dedups() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 32);
        let y = pool.bv_var("y", 32);
        let a = pool.bv_ult(x, y);
        let b = pool.bv_ult(y, x);
        assert_eq!(canonical_key(&pool, &[a, b]), canonical_key(&pool, &[b, a]));
        assert_eq!(
            canonical_key(&pool, &[a, b, a]),
            canonical_key(&pool, &[b, a])
        );
        assert_ne!(canonical_key(&pool, &[a]), canonical_key(&pool, &[b]));
    }

    #[test]
    fn key_is_pool_independent() {
        let build = |pool: &mut TermPool| {
            // Interleave some pool-local garbage so TermIds differ.
            let x = pool.bv_var("x", 16);
            let y = pool.bv_var("y", 16);
            let sum = pool.bv_add(x, y);
            pool.bv_ult(sum, x)
        };
        let mut p1 = TermPool::new();
        let _noise = p1.bv_var("noise", 8);
        let a1 = build(&mut p1);
        let mut p2 = TermPool::new();
        let a2 = build(&mut p2);
        assert_eq!(canonical_key(&p1, &[a1]), canonical_key(&p2, &[a2]));
    }

    #[test]
    fn distinct_structures_get_distinct_keys() {
        let mut pool = TermPool::new();
        let x = pool.bv_var("x", 32);
        let zero = pool.bv_const(32, 0);
        let slt = pool.bv_slt(x, zero);
        let ult = pool.bv_ult(x, zero);
        let z = pool.bv_var("z", 32);
        let slt_z = pool.bv_slt(z, zero);
        assert_ne!(canonical_key(&pool, &[slt]), canonical_key(&pool, &[ult]));
        assert_ne!(canonical_key(&pool, &[slt]), canonical_key(&pool, &[slt_z]));
    }

    #[test]
    fn cache_roundtrip_and_counters() {
        let cache = QueryCache::new();
        let key = vec![1u128, 2u128];
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), &QueryResult::Unsat);
        assert!(matches!(cache.lookup(&key), Some(QueryResult::Unsat)));
        // Unknown is never stored.
        let key2 = vec![3u128];
        cache.insert(key2.clone(), &QueryResult::Unknown);
        assert!(cache.lookup(&key2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }
}
