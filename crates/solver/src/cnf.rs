//! Clause storage and CNF formula representation.
//!
//! Clauses live in a flat arena indexed by [`ClauseRef`]; the SAT core holds
//! watch lists of clause references rather than owning clause data itself.
//! Learned clauses carry an activity score and a literal-block-distance
//! (LBD, "glue") value so that clause-database reduction can evict the least
//! useful ones while keeping the clauses that tie few decision levels
//! together.

use crate::lit::Lit;

/// Index of a clause in the [`ClauseDb`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub u32);

/// A disjunction of literals.
#[derive(Clone, Debug)]
pub struct Clause {
    /// Literals of the clause. For clauses under two-watched-literal
    /// maintenance, the watched literals are kept at positions 0 and 1.
    pub lits: Vec<Lit>,
    /// Whether this clause was learned during conflict analysis (as opposed
    /// to being part of the original problem).
    pub learned: bool,
    /// Activity for learned-clause eviction.
    pub activity: f64,
    /// Literal block distance at learn time: the number of distinct decision
    /// levels among the clause's literals. Low-LBD ("glue") clauses connect
    /// few decision levels and are empirically the most reusable, so
    /// database reduction keeps `lbd <= 2` clauses unconditionally. Original
    /// clauses carry 0 (they are never eviction candidates).
    pub lbd: u32,
    /// Recent-use stamp for tiered database reduction: set whenever the
    /// clause participates in conflict analysis, cleared when the mid tier
    /// is swept. A mid-tier clause that stayed unused across a whole sweep
    /// interval is evicted. Fresh learned clauses start marked so they
    /// survive at least one interval.
    pub used: bool,
    /// Marked for deletion by clause-database reduction.
    pub deleted: bool,
}

impl Clause {
    /// Create a new clause over the given literals.
    pub fn new(lits: Vec<Lit>, learned: bool) -> Clause {
        Clause {
            lits,
            learned,
            activity: 0.0,
            lbd: 0,
            used: true,
            deleted: false,
        }
    }

    /// Create a learned clause carrying its literal block distance.
    pub fn learned_with_lbd(lits: Vec<Lit>, lbd: u32) -> Clause {
        Clause {
            lits,
            learned: true,
            activity: 0.0,
            lbd,
            used: true,
            deleted: false,
        }
    }

    /// Number of literals in the clause.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (an immediate contradiction).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// Arena of clauses referenced by [`ClauseRef`].
#[derive(Default, Debug)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live (non-deleted) learned clauses, used to trigger
    /// clause-database reduction.
    pub num_learned: usize,
}

impl ClauseDb {
    /// Create an empty clause database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Add a clause and return its reference.
    pub fn add(&mut self, clause: Clause) -> ClauseRef {
        if clause.learned {
            self.num_learned += 1;
        }
        let idx = self.clauses.len() as u32;
        self.clauses.push(clause);
        ClauseRef(idx)
    }

    /// Borrow a clause.
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    /// Mutably borrow a clause.
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    /// Mark a learned clause as deleted. The slot is kept (references remain
    /// valid) but the clause is skipped by the watch lists after detachment.
    pub fn delete(&mut self, cref: ClauseRef) {
        let clause = &mut self.clauses[cref.0 as usize];
        if clause.learned && !clause.deleted {
            self.num_learned -= 1;
        }
        clause.deleted = true;
    }

    /// Total number of clause slots (including deleted ones).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the database holds no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Iterate over references of all live learned clauses.
    pub fn learned_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learned && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }
}

/// A plain CNF formula, used as the bit-blasting output before it is loaded
/// into the SAT core and by the property-test reference solver.
#[derive(Default, Clone, Debug)]
pub struct CnfFormula {
    /// Number of variables referenced (upper bound on variable index + 1).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Create an empty formula.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Add a clause, updating the variable count.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        for lit in &lits {
            let need = lit.var().index() + 1;
            if need > self.num_vars {
                self.num_vars = need;
            }
        }
        self.clauses.push(lits);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluate the formula under a complete assignment (indexed by variable).
    /// Used by tests as a reference semantics.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|lit| {
                let value = assignment[lit.var().index()];
                if lit.is_positive() {
                    value
                } else {
                    !value
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn clause_db_add_get_delete() {
        let mut db = ClauseDb::new();
        let a = Var(0).positive();
        let b = Var(1).negative();
        let c1 = db.add(Clause::new(vec![a, b], false));
        let c2 = db.add(Clause::new(vec![!a], true));
        assert_eq!(db.get(c1).len(), 2);
        assert!(db.get(c2).learned);
        assert_eq!(db.num_learned, 1);
        db.delete(c2);
        assert_eq!(db.num_learned, 0);
        assert!(db.get(c2).deleted);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn cnf_formula_eval() {
        let mut f = CnfFormula::new();
        let x = Var(0);
        let y = Var(1);
        // (x | y) & (!x | y)
        f.add_clause(vec![x.positive(), y.positive()]);
        f.add_clause(vec![x.negative(), y.positive()]);
        assert_eq!(f.num_vars, 2);
        assert!(f.evaluate(&[true, true]));
        assert!(f.evaluate(&[false, true]));
        assert!(!f.evaluate(&[true, false]));
        assert!(!f.evaluate(&[false, false]));
    }

    #[test]
    fn learned_refs_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = Var(0).positive();
        let r1 = db.add(Clause::new(vec![a], true));
        let _r2 = db.add(Clause::new(vec![!a], true));
        db.delete(r1);
        let refs = db.learned_refs();
        assert_eq!(refs.len(), 1);
    }
}
