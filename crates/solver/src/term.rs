//! Hash-consed bit-vector / boolean term DAG (the QF_BV fragment).
//!
//! The checker builds formulas over this representation: every IR value of
//! interest maps to a term, undefined-behavior conditions and reachability
//! conditions are boolean terms, and the elimination / simplification queries
//! of the paper are conjunctions handed to [`crate::solver::BvSolver`].
//!
//! Terms are immutable and deduplicated in a [`TermPool`]; constructors
//! perform light constant folding and algebraic normalization so the
//! bit-blaster sees smaller formulas.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of pool identities (see [`TermPool::epoch`]).
static POOL_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Maximum supported bit-vector width. The checker models C types up to
/// 64-bit integers and pointers, matching the paper's examples.
pub const MAX_WIDTH: u32 = 64;

/// Identifier of a term inside a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// Sort (type) of a term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// A propositional value.
    Bool,
    /// A bit-vector of the given width (1..=64).
    BitVec(u32),
}

impl Sort {
    /// Width of a bit-vector sort; panics on `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("width() on Bool sort"),
        }
    }

    /// Whether this is the boolean sort.
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }
}

/// Operator / node kind of a term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermKind {
    /// Boolean constant.
    BoolConst(bool),
    /// Bit-vector constant (value is masked to `width` bits).
    BvConst {
        width: u32,
        value: u64,
    },
    /// Free variable (bit-vector or boolean depending on its sort).
    Var {
        name: String,
        sort: Sort,
    },

    // Boolean connectives.
    Not(TermId),
    And(TermId, TermId),
    Or(TermId, TermId),
    Xor(TermId, TermId),
    Implies(TermId, TermId),
    /// If-then-else; the branches may be boolean or bit-vector terms.
    Ite(TermId, TermId, TermId),
    /// Equality over two terms of the same sort.
    Eq(TermId, TermId),

    // Bit-vector arithmetic and bitwise operators.
    BvNot(TermId),
    BvNeg(TermId),
    BvAdd(TermId, TermId),
    BvSub(TermId, TermId),
    BvMul(TermId, TermId),
    BvUdiv(TermId, TermId),
    BvSdiv(TermId, TermId),
    BvUrem(TermId, TermId),
    BvSrem(TermId, TermId),
    BvAnd(TermId, TermId),
    BvOr(TermId, TermId),
    BvXor(TermId, TermId),
    BvShl(TermId, TermId),
    BvLshr(TermId, TermId),
    BvAshr(TermId, TermId),

    // Predicates over bit-vectors.
    BvUlt(TermId, TermId),
    BvUle(TermId, TermId),
    BvSlt(TermId, TermId),
    BvSle(TermId, TermId),

    // Width adjustment.
    ZExt {
        value: TermId,
        width: u32,
    },
    SExt {
        value: TermId,
        width: u32,
    },
    Extract {
        value: TermId,
        hi: u32,
        lo: u32,
    },
    Concat(TermId, TermId),
}

/// A term: kind plus cached sort.
#[derive(Clone, Debug)]
pub struct Term {
    pub kind: TermKind,
    pub sort: Sort,
}

/// Mask a value to `width` bits.
#[inline]
pub fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Sign-extend a `width`-bit value to an `i64`.
#[inline]
pub fn to_signed(value: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((mask(value, width) << shift) as i64) >> shift
}

/// The hash-consing pool of terms.
pub struct TermPool {
    terms: Vec<Term>,
    dedup: HashMap<TermKind, TermId>,
    epoch: u64,
}

impl Default for TermPool {
    fn default() -> TermPool {
        TermPool::new()
    }
}

impl TermPool {
    /// Create an empty pool.
    pub fn new() -> TermPool {
        TermPool {
            terms: Vec::new(),
            dedup: HashMap::new(),
            epoch: POOL_EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A process-unique identity for this pool. [`TermId`]s are only
    /// meaningful within one pool; consumers that memoize per-term data
    /// (e.g. the query cache's structural fingerprints) key it by epoch so a
    /// memo built against one pool is never consulted for another.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of distinct terms created.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Borrow a term.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.0 as usize].sort
    }

    /// Width of a bit-vector term.
    pub fn width(&self, id: TermId) -> u32 {
        self.sort(id).width()
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Term {
            kind: kind.clone(),
            sort,
        });
        self.dedup.insert(kind, id);
        id
    }

    /// Constant value of a bit-vector term, if it is a constant.
    pub fn as_bv_const(&self, id: TermId) -> Option<u64> {
        match self.term(id).kind {
            TermKind::BvConst { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Constant value of a boolean term, if it is a constant.
    pub fn as_bool_const(&self, id: TermId) -> Option<bool> {
        match self.term(id).kind {
            TermKind::BoolConst(b) => Some(b),
            _ => None,
        }
    }

    // ---- Leaf constructors -------------------------------------------------

    /// The boolean constant `true`.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(TermKind::BoolConst(b), Sort::Bool)
    }

    /// A bit-vector constant.
    pub fn bv_const(&mut self, width: u32, value: u64) -> TermId {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        self.intern(
            TermKind::BvConst {
                width,
                value: mask(value, width),
            },
            Sort::BitVec(width),
        )
    }

    /// A free bit-vector variable.
    pub fn bv_var(&mut self, name: &str, width: u32) -> TermId {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        self.intern(
            TermKind::Var {
                name: name.to_string(),
                sort: Sort::BitVec(width),
            },
            Sort::BitVec(width),
        )
    }

    /// A free boolean variable.
    pub fn bool_var(&mut self, name: &str) -> TermId {
        self.intern(
            TermKind::Var {
                name: name.to_string(),
                sort: Sort::Bool,
            },
            Sort::Bool,
        )
    }

    // ---- Boolean connectives ------------------------------------------------

    /// Logical negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool());
        match self.term(a).kind.clone() {
            TermKind::BoolConst(b) => self.bool_const(!b),
            TermKind::Not(inner) => inner,
            _ => self.intern(TermKind::Not(a), Sort::Bool),
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return a;
        }
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.bool_const(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(TermKind::And(a, b), Sort::Bool)
            }
        }
    }

    /// Conjunction of a list of terms.
    pub fn and_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_const(true);
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Logical disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return a;
        }
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(true), _) | (_, Some(true)) => self.bool_const(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(TermKind::Or(a, b), Sort::Bool)
            }
        }
    }

    /// Disjunction of a list of terms.
    pub fn or_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_const(false);
        for &t in terms {
            acc = self.or(acc, t);
        }
        acc
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return self.bool_const(false);
        }
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(x), Some(y)) => self.bool_const(x ^ y),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(TermKind::Xor(a, b), Sort::Bool)
            }
        }
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Boolean equivalence.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// If-then-else over booleans or bit-vectors of equal width.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        debug_assert!(self.sort(cond).is_bool());
        debug_assert_eq!(self.sort(then), self.sort(els));
        if then == els {
            return then;
        }
        match self.as_bool_const(cond) {
            Some(true) => then,
            Some(false) => els,
            None => {
                let sort = self.sort(then);
                self.intern(TermKind::Ite(cond, then, els), sort)
            }
        }
    }

    /// Equality of two terms of the same sort.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), self.sort(b));
        if a == b {
            return self.bool_const(true);
        }
        if self.sort(a).is_bool() {
            return self.iff(a, b);
        }
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(x == y);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermKind::Eq(a, b), Sort::Bool)
    }

    /// Disequality.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    // ---- Bit-vector operators ------------------------------------------------

    fn bv_binop(
        &mut self,
        a: TermId,
        b: TermId,
        fold: impl Fn(u64, u64, u32) -> u64,
        make: impl Fn(TermId, TermId) -> TermKind,
    ) -> TermId {
        let width = self.width(a);
        debug_assert_eq!(width, self.width(b));
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let value = mask(fold(x, y, width), width);
            return self.bv_const(width, value);
        }
        self.intern(make(a, b), Sort::BitVec(width))
    }

    /// Bit-wise negation.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let width = self.width(a);
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(width, !x);
        }
        self.intern(TermKind::BvNot(a), Sort::BitVec(width))
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let width = self.width(a);
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(width, x.wrapping_neg());
        }
        self.intern(TermKind::BvNeg(a), Sort::BitVec(width))
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        if self.as_bv_const(a) == Some(0) {
            return b;
        }
        if self.as_bv_const(b) == Some(0) {
            return a;
        }
        self.bv_binop(a, b, |x, y, _| x.wrapping_add(y), TermKind::BvAdd)
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            let width = self.width(a);
            return self.bv_const(width, 0);
        }
        if self.as_bv_const(b) == Some(0) {
            return a;
        }
        self.bv_binop(a, b, |x, y, _| x.wrapping_sub(y), TermKind::BvSub)
    }

    /// Wrapping multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        if self.as_bv_const(a) == Some(1) {
            return b;
        }
        if self.as_bv_const(b) == Some(1) {
            return a;
        }
        if self.as_bv_const(a) == Some(0) || self.as_bv_const(b) == Some(0) {
            let width = self.width(a);
            return self.bv_const(width, 0);
        }
        self.bv_binop(a, b, |x, y, _| x.wrapping_mul(y), TermKind::BvMul)
    }

    /// Unsigned division; division by zero yields the all-ones value
    /// (SMT-LIB semantics). The checker guards division by its own UB
    /// condition, so this convention never leaks into reports.
    pub fn bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| x.checked_div(y).unwrap_or(mask(u64::MAX, w)),
            TermKind::BvUdiv,
        )
    }

    /// Signed division (SMT-LIB semantics for division by zero).
    pub fn bv_sdiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| {
                let sx = to_signed(x, w);
                let sy = to_signed(y, w);
                if sy == 0 {
                    if sx >= 0 {
                        mask(u64::MAX, w)
                    } else {
                        1
                    }
                } else {
                    mask(sx.wrapping_div(sy) as u64, w)
                }
            },
            TermKind::BvSdiv,
        )
    }

    /// Unsigned remainder.
    pub fn bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, _| if y == 0 { x } else { x % y },
            TermKind::BvUrem,
        )
    }

    /// Signed remainder (sign of the dividend).
    pub fn bv_srem(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| {
                let sx = to_signed(x, w);
                let sy = to_signed(y, w);
                if sy == 0 {
                    mask(sx as u64, w)
                } else {
                    mask(sx.wrapping_rem(sy) as u64, w)
                }
            },
            TermKind::BvSrem,
        )
    }

    /// Bit-wise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return a;
        }
        self.bv_binop(a, b, |x, y, _| x & y, TermKind::BvAnd)
    }

    /// Bit-wise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return a;
        }
        self.bv_binop(a, b, |x, y, _| x | y, TermKind::BvOr)
    }

    /// Bit-wise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            let width = self.width(a);
            return self.bv_const(width, 0);
        }
        self.bv_binop(a, b, |x, y, _| x ^ y, TermKind::BvXor)
    }

    /// Left shift. Shift amounts `>= width` produce zero (SMT-LIB semantics);
    /// the oversized-shift UB condition is tracked separately by the checker.
    pub fn bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| if y >= u64::from(w) { 0 } else { x << y },
            TermKind::BvShl,
        )
    }

    /// Logical right shift.
    pub fn bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| {
                if y >= u64::from(w) {
                    0
                } else {
                    mask(x, w) >> y
                }
            },
            TermKind::BvLshr,
        )
    }

    /// Arithmetic right shift.
    pub fn bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            |x, y, w| {
                let sx = to_signed(x, w);
                let shift = if y >= u64::from(w) {
                    u64::from(w) - 1
                } else {
                    y
                };
                mask((sx >> shift) as u64, w)
            },
            TermKind::BvAshr,
        )
    }

    // ---- Predicates ---------------------------------------------------------

    fn bv_cmp(
        &mut self,
        a: TermId,
        b: TermId,
        fold: impl Fn(u64, u64, u32) -> bool,
        make: impl Fn(TermId, TermId) -> TermKind,
    ) -> TermId {
        debug_assert_eq!(self.width(a), self.width(b));
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let width = self.width(a);
            return self.bool_const(fold(x, y, width));
        }
        self.intern(make(a, b), Sort::Bool)
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        self.bv_cmp(a, b, |x, y, _| x < y, TermKind::BvUlt)
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        self.bv_cmp(a, b, |x, y, _| x <= y, TermKind::BvUle)
    }

    /// Signed less-than.
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        self.bv_cmp(
            a,
            b,
            |x, y, w| to_signed(x, w) < to_signed(y, w),
            TermKind::BvSlt,
        )
    }

    /// Signed less-or-equal.
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        self.bv_cmp(
            a,
            b,
            |x, y, w| to_signed(x, w) <= to_signed(y, w),
            TermKind::BvSle,
        )
    }

    /// Unsigned greater-than, expressed via `ult`.
    pub fn bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ult(b, a)
    }

    /// Signed greater-than, expressed via `slt`.
    pub fn bv_sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_slt(b, a)
    }

    /// Unsigned greater-or-equal.
    pub fn bv_uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ule(b, a)
    }

    /// Signed greater-or-equal.
    pub fn bv_sge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_sle(b, a)
    }

    // ---- Width adjustment -----------------------------------------------------

    /// Zero-extension to a wider bit-vector (no-op at equal width).
    pub fn zext(&mut self, a: TermId, width: u32) -> TermId {
        let cur = self.width(a);
        assert!(width >= cur && width <= MAX_WIDTH);
        if width == cur {
            return a;
        }
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(width, x);
        }
        self.intern(TermKind::ZExt { value: a, width }, Sort::BitVec(width))
    }

    /// Sign-extension to a wider bit-vector (no-op at equal width).
    pub fn sext(&mut self, a: TermId, width: u32) -> TermId {
        let cur = self.width(a);
        assert!(width >= cur && width <= MAX_WIDTH);
        if width == cur {
            return a;
        }
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(width, to_signed(x, cur) as u64);
        }
        self.intern(TermKind::SExt { value: a, width }, Sort::BitVec(width))
    }

    /// Extract bits `hi..=lo` (inclusive) as a `(hi-lo+1)`-bit value.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let cur = self.width(a);
        assert!(hi >= lo && hi < cur);
        let width = hi - lo + 1;
        if width == cur {
            return a;
        }
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(width, x >> lo);
        }
        self.intern(TermKind::Extract { value: a, hi, lo }, Sort::BitVec(width))
    }

    /// Truncate to a narrower width.
    pub fn trunc(&mut self, a: TermId, width: u32) -> TermId {
        let cur = self.width(a);
        assert!(width <= cur);
        if width == cur {
            a
        } else {
            self.extract(a, width - 1, 0)
        }
    }

    /// Concatenate two bit-vectors (`a` becomes the high bits).
    pub fn concat(&mut self, a: TermId, b: TermId) -> TermId {
        let wa = self.width(a);
        let wb = self.width(b);
        assert!(wa + wb <= MAX_WIDTH);
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bv_const(wa + wb, (x << wb) | y);
        }
        self.intern(TermKind::Concat(a, b), Sort::BitVec(wa + wb))
    }

    /// Convert a boolean term to a 1-bit vector (true -> 1).
    pub fn bool_to_bv1(&mut self, a: TermId) -> TermId {
        let one = self.bv_const(1, 1);
        let zero = self.bv_const(1, 0);
        self.ite(a, one, zero)
    }

    /// Convert a bit-vector to a boolean (true iff non-zero).
    pub fn bv_to_bool(&mut self, a: TermId) -> TermId {
        let width = self.width(a);
        let zero = self.bv_const(width, 0);
        self.ne(a, zero)
    }

    // ---- Evaluation -----------------------------------------------------------

    /// Evaluate a term under a model mapping variable names to values.
    /// Boolean results are encoded as 0/1. Used by tests and by the model
    /// printer; the authoritative semantics for the bit-blaster.
    pub fn eval(&self, id: TermId, model: &dyn Fn(&str, Sort) -> u64) -> u64 {
        let t = self.term(id);
        let b = |x: u64| u64::from(x != 0);
        match &t.kind {
            TermKind::BoolConst(v) => u64::from(*v),
            TermKind::BvConst { value, .. } => *value,
            TermKind::Var { name, sort } => match sort {
                Sort::Bool => b(model(name, *sort)),
                Sort::BitVec(w) => mask(model(name, *sort), *w),
            },
            TermKind::Not(a) => 1 - b(self.eval(*a, model)),
            TermKind::And(a, c) => b(self.eval(*a, model)) & b(self.eval(*c, model)),
            TermKind::Or(a, c) => b(self.eval(*a, model)) | b(self.eval(*c, model)),
            TermKind::Xor(a, c) => b(self.eval(*a, model)) ^ b(self.eval(*c, model)),
            TermKind::Implies(a, c) => (1 - b(self.eval(*a, model))) | b(self.eval(*c, model)),
            TermKind::Ite(cond, then, els) => {
                if self.eval(*cond, model) != 0 {
                    self.eval(*then, model)
                } else {
                    self.eval(*els, model)
                }
            }
            TermKind::Eq(a, c) => u64::from(self.eval(*a, model) == self.eval(*c, model)),
            TermKind::BvNot(a) => mask(!self.eval(*a, model), t.sort.width()),
            TermKind::BvNeg(a) => mask(self.eval(*a, model).wrapping_neg(), t.sort.width()),
            TermKind::BvAdd(a, c) => mask(
                self.eval(*a, model).wrapping_add(self.eval(*c, model)),
                t.sort.width(),
            ),
            TermKind::BvSub(a, c) => mask(
                self.eval(*a, model).wrapping_sub(self.eval(*c, model)),
                t.sort.width(),
            ),
            TermKind::BvMul(a, c) => mask(
                self.eval(*a, model).wrapping_mul(self.eval(*c, model)),
                t.sort.width(),
            ),
            TermKind::BvUdiv(a, c) => {
                let w = t.sort.width();
                let x = self.eval(*a, model);
                let y = self.eval(*c, model);
                x.checked_div(y).unwrap_or(mask(u64::MAX, w))
            }
            TermKind::BvSdiv(a, c) => {
                let w = t.sort.width();
                let x = to_signed(self.eval(*a, model), w);
                let y = to_signed(self.eval(*c, model), w);
                if y == 0 {
                    if x >= 0 {
                        mask(u64::MAX, w)
                    } else {
                        1
                    }
                } else {
                    mask(x.wrapping_div(y) as u64, w)
                }
            }
            TermKind::BvUrem(a, c) => {
                let x = self.eval(*a, model);
                let y = self.eval(*c, model);
                if y == 0 {
                    x
                } else {
                    x % y
                }
            }
            TermKind::BvSrem(a, c) => {
                let w = t.sort.width();
                let x = to_signed(self.eval(*a, model), w);
                let y = to_signed(self.eval(*c, model), w);
                if y == 0 {
                    mask(x as u64, w)
                } else {
                    mask(x.wrapping_rem(y) as u64, w)
                }
            }
            TermKind::BvAnd(a, c) => self.eval(*a, model) & self.eval(*c, model),
            TermKind::BvOr(a, c) => self.eval(*a, model) | self.eval(*c, model),
            TermKind::BvXor(a, c) => self.eval(*a, model) ^ self.eval(*c, model),
            TermKind::BvShl(a, c) => {
                let w = t.sort.width();
                let x = self.eval(*a, model);
                let y = self.eval(*c, model);
                if y >= u64::from(w) {
                    0
                } else {
                    mask(x << y, w)
                }
            }
            TermKind::BvLshr(a, c) => {
                let w = t.sort.width();
                let x = mask(self.eval(*a, model), w);
                let y = self.eval(*c, model);
                if y >= u64::from(w) {
                    0
                } else {
                    x >> y
                }
            }
            TermKind::BvAshr(a, c) => {
                let w = t.sort.width();
                let x = to_signed(self.eval(*a, model), w);
                let y = self.eval(*c, model);
                let shift = if y >= u64::from(w) {
                    u64::from(w) - 1
                } else {
                    y
                };
                mask((x >> shift) as u64, w)
            }
            TermKind::BvUlt(a, c) => {
                let w = self.width(*a);
                u64::from(mask(self.eval(*a, model), w) < mask(self.eval(*c, model), w))
            }
            TermKind::BvUle(a, c) => {
                let w = self.width(*a);
                u64::from(mask(self.eval(*a, model), w) <= mask(self.eval(*c, model), w))
            }
            TermKind::BvSlt(a, c) => {
                let w = self.width(*a);
                u64::from(to_signed(self.eval(*a, model), w) < to_signed(self.eval(*c, model), w))
            }
            TermKind::BvSle(a, c) => {
                let w = self.width(*a);
                u64::from(to_signed(self.eval(*a, model), w) <= to_signed(self.eval(*c, model), w))
            }
            TermKind::ZExt { value, .. } => self.eval(*value, model),
            TermKind::SExt { value, width } => {
                let cur = self.width(*value);
                mask(to_signed(self.eval(*value, model), cur) as u64, *width)
            }
            TermKind::Extract { value, hi, lo } => {
                mask(self.eval(*value, model) >> lo, hi - lo + 1)
            }
            TermKind::Concat(a, c) => {
                let wb = self.width(*c);
                (self.eval(*a, model) << wb) | self.eval(*c, model)
            }
        }
    }

    /// Render a term as an S-expression, mainly for debugging and reports.
    pub fn display(&self, id: TermId) -> String {
        let mut out = String::new();
        self.fmt_term(id, &mut out);
        out
    }

    fn fmt_term(&self, id: TermId, out: &mut String) {
        use std::fmt::Write;
        let t = self.term(id);
        let bin = |this: &Self, op: &str, a: TermId, b: TermId, out: &mut String| {
            out.push('(');
            out.push_str(op);
            out.push(' ');
            this.fmt_term(a, out);
            out.push(' ');
            this.fmt_term(b, out);
            out.push(')');
        };
        match &t.kind {
            TermKind::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            TermKind::BvConst { width, value } => {
                let _ = write!(out, "{value}#{width}");
            }
            TermKind::Var { name, .. } => out.push_str(name),
            TermKind::Not(a) => {
                out.push_str("(not ");
                self.fmt_term(*a, out);
                out.push(')');
            }
            TermKind::And(a, b) => bin(self, "and", *a, *b, out),
            TermKind::Or(a, b) => bin(self, "or", *a, *b, out),
            TermKind::Xor(a, b) => bin(self, "xor", *a, *b, out),
            TermKind::Implies(a, b) => bin(self, "=>", *a, *b, out),
            TermKind::Ite(c, a, b) => {
                out.push_str("(ite ");
                self.fmt_term(*c, out);
                out.push(' ');
                self.fmt_term(*a, out);
                out.push(' ');
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermKind::Eq(a, b) => bin(self, "=", *a, *b, out),
            TermKind::BvNot(a) => {
                out.push_str("(bvnot ");
                self.fmt_term(*a, out);
                out.push(')');
            }
            TermKind::BvNeg(a) => {
                out.push_str("(bvneg ");
                self.fmt_term(*a, out);
                out.push(')');
            }
            TermKind::BvAdd(a, b) => bin(self, "bvadd", *a, *b, out),
            TermKind::BvSub(a, b) => bin(self, "bvsub", *a, *b, out),
            TermKind::BvMul(a, b) => bin(self, "bvmul", *a, *b, out),
            TermKind::BvUdiv(a, b) => bin(self, "bvudiv", *a, *b, out),
            TermKind::BvSdiv(a, b) => bin(self, "bvsdiv", *a, *b, out),
            TermKind::BvUrem(a, b) => bin(self, "bvurem", *a, *b, out),
            TermKind::BvSrem(a, b) => bin(self, "bvsrem", *a, *b, out),
            TermKind::BvAnd(a, b) => bin(self, "bvand", *a, *b, out),
            TermKind::BvOr(a, b) => bin(self, "bvor", *a, *b, out),
            TermKind::BvXor(a, b) => bin(self, "bvxor", *a, *b, out),
            TermKind::BvShl(a, b) => bin(self, "bvshl", *a, *b, out),
            TermKind::BvLshr(a, b) => bin(self, "bvlshr", *a, *b, out),
            TermKind::BvAshr(a, b) => bin(self, "bvashr", *a, *b, out),
            TermKind::BvUlt(a, b) => bin(self, "bvult", *a, *b, out),
            TermKind::BvUle(a, b) => bin(self, "bvule", *a, *b, out),
            TermKind::BvSlt(a, b) => bin(self, "bvslt", *a, *b, out),
            TermKind::BvSle(a, b) => bin(self, "bvsle", *a, *b, out),
            TermKind::ZExt { value, width } => {
                let _ = write!(out, "(zext{width} ");
                self.fmt_term(*value, out);
                out.push(')');
            }
            TermKind::SExt { value, width } => {
                let _ = write!(out, "(sext{width} ");
                self.fmt_term(*value, out);
                out.push(')');
            }
            TermKind::Extract { value, hi, lo } => {
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.fmt_term(*value, out);
                out.push(')');
            }
            TermKind::Concat(a, b) => bin(self, "concat", *a, *b, out),
        }
    }
}

impl fmt::Debug for TermPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermPool({} terms)", self.terms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.bv_var("a", 32);
        let b = p.bv_var("b", 32);
        let s1 = p.bv_add(a, b);
        let s2 = p.bv_add(a, b);
        assert_eq!(s1, s2);
        let a2 = p.bv_var("a", 32);
        assert_eq!(a, a2);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let c1 = p.bv_const(8, 200);
        let c2 = p.bv_const(8, 100);
        let sum = p.bv_add(c1, c2);
        assert_eq!(p.as_bv_const(sum), Some(44)); // 300 mod 256
        let lt = p.bv_ult(c2, c1);
        assert_eq!(p.as_bool_const(lt), Some(true));
        let slt = p.bv_slt(c1, c2); // 200 is -56 signed
        assert_eq!(p.as_bool_const(slt), Some(true));
    }

    #[test]
    fn boolean_identities() {
        let mut p = TermPool::new();
        let x = p.bool_var("x");
        let t = p.bool_const(true);
        let f = p.bool_const(false);
        assert_eq!(p.and(x, t), x);
        assert_eq!(p.and(x, f), f);
        assert_eq!(p.or(x, f), x);
        assert_eq!(p.or(x, t), t);
        let nx = p.not(x);
        assert_eq!(p.not(nx), x);
        assert_eq!(p.xor(x, x), f);
    }

    #[test]
    fn arithmetic_identities() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 32);
        let zero = p.bv_const(32, 0);
        let one = p.bv_const(32, 1);
        assert_eq!(p.bv_add(x, zero), x);
        assert_eq!(p.bv_mul(x, one), x);
        assert_eq!(p.bv_mul(x, zero), zero);
        assert_eq!(p.bv_sub(x, x), zero);
        let t = p.bool_const(true);
        assert_eq!(p.bv_ule(x, x), t);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 16);
        let y = p.bv_var("y", 16);
        let sum = p.bv_add(x, y);
        let prod = p.bv_mul(x, y);
        let lt = p.bv_slt(x, y);
        let model = |name: &str, _sort: Sort| -> u64 {
            match name {
                "x" => 0xFFFF, // -1 as i16
                "y" => 5,
                _ => 0,
            }
        };
        assert_eq!(p.eval(sum, &model), 4);
        assert_eq!(p.eval(prod, &model), mask(0xFFFFu64.wrapping_mul(5), 16));
        assert_eq!(p.eval(lt, &model), 1); // -1 < 5 signed
    }

    #[test]
    fn signed_helpers() {
        assert_eq!(to_signed(0xFF, 8), -1);
        assert_eq!(to_signed(0x7F, 8), 127);
        assert_eq!(to_signed(0x80, 8), -128);
        assert_eq!(mask(0x1FF, 8), 0xFF);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
    }

    #[test]
    fn extraction_and_extension() {
        let mut p = TermPool::new();
        let c = p.bv_const(16, 0xABCD);
        let lo = p.extract(c, 7, 0);
        assert_eq!(p.as_bv_const(lo), Some(0xCD));
        let hi = p.extract(c, 15, 8);
        assert_eq!(p.as_bv_const(hi), Some(0xAB));
        let z = p.zext(lo, 32);
        assert_eq!(p.as_bv_const(z), Some(0xCD));
        let neg = p.bv_const(8, 0x80);
        let s = p.sext(neg, 16);
        assert_eq!(p.as_bv_const(s), Some(0xFF80));
        let cat = p.concat(hi, lo);
        assert_eq!(p.as_bv_const(cat), Some(0xABCD));
    }

    #[test]
    fn division_semantics() {
        let mut p = TermPool::new();
        let a = p.bv_const(8, 7);
        let zero = p.bv_const(8, 0);
        let d = p.bv_udiv(a, zero);
        assert_eq!(p.as_bv_const(d), Some(0xFF));
        let r = p.bv_urem(a, zero);
        assert_eq!(p.as_bv_const(r), Some(7));
        // INT_MIN / -1 wraps in the bit-vector world (the UB condition for
        // this case is handled by the checker, not by the solver).
        let int_min = p.bv_const(8, 0x80);
        let minus1 = p.bv_const(8, 0xFF);
        let q = p.bv_sdiv(int_min, minus1);
        assert_eq!(p.as_bv_const(q), Some(0x80));
    }

    #[test]
    fn display_renders_sexpr() {
        let mut p = TermPool::new();
        let x = p.bv_var("x", 32);
        let c = p.bv_const(32, 100);
        let add = p.bv_add(x, c);
        let cmp = p.bv_ult(add, x);
        let s = p.display(cmp);
        assert!(s.contains("bvult"));
        assert!(s.contains("bvadd"));
        assert!(s.contains("x"));
        assert!(s.contains("100#32"));
    }
}
