//! Pluggable query stores: where decided solver answers live between queries
//! — and, for the disk-backed store, between *processes*.
//!
//! The [`QueryStore`] trait abstracts the destination of memoized query
//! results. [`BvSolver`](crate::solver::BvSolver) only ever talks to the
//! trait: on every query it looks the canonical fingerprint key up, and on
//! every decided (never `Unknown`) miss it inserts the result back. Two
//! implementations exist:
//!
//! * [`QueryCache`] — the sharded in-memory table of `cache.rs`, shared
//!   across the parallel checker's worker threads. Dies with the process.
//! * [`DiskQueryStore`] — an in-memory table bracketed by [`open`] and
//!   [`save`]: `open` loads every persisted fingerprint→result pair,
//!   `save` writes the table back (atomically, via a temp file + rename),
//!   so the next process — the next package of an archive scan, or the next
//!   scan of the same archive entirely — starts warm. This is the §6.5
//!   deployment mode: the paper's Debian-scale runs re-analyze thousands of
//!   packages that instantiate the same unstable idioms, and a cross-run
//!   store turns all but the first instance into a lookup.
//!
//! ## Persistence format
//!
//! The store file is line-oriented text. The first line is a header naming
//! the format version, the encoding revision, and the **generation** the
//! file was saved at:
//!
//! ```text
//! stack-query-store v2 enc1 gen7
//! U g<gen> <fp>,<fp>,...
//! S g<gen> <fp>,... m <name>=<value> <name>=<value>
//! ```
//!
//! `U`/`S` lines carry one UNSAT/SAT entry: a last-used generation stamp,
//! the canonical cache key (sorted 128-bit structural fingerprints,
//! lower-case hex) and, for SAT, the witness model (variable names
//! percent-escaped, values decimal `u64`). Entries are written sorted by
//! key and models sorted by name, so saving the same logical store at the
//! same generation always produces byte-identical files.
//!
//! ## Generations and compaction
//!
//! Every `open` starts a new generation (the persisted `gen` plus one);
//! every entry the run touches — a lookup hit or a fresh insert — is
//! stamped with it, and `save` writes the stamps back. The stamp is how an
//! otherwise monotonically growing archive-scale store ages out dead
//! weight: with [`set_compaction`](DiskQueryStore::set_compaction)`(Some(n))`
//! (the CLI's `--compact-store n`), `save` drops every entry whose last use
//! is `n` or more generations old. Entries used this run are never dropped.
//!
//! A header that does not match the running binary's
//! [`STORE_FORMAT_VERSION`]/[`ENCODING_REVISION`] — or any malformed line —
//! causes the whole file to be discarded and the store to start empty
//! ([`DiskQueryStore::was_invalidated`] reports it). Fingerprints bake in
//! the term encoding, so a stale cache produced by an older encoder or
//! solver must self-invalidate rather than serve wrong answers. `Unknown`
//! results are never inserted (a budget exhaustion is a property of the
//! budget, not the formula), so they are never persisted either.
//!
//! [`open`]: DiskQueryStore::open
//! [`save`]: DiskQueryStore::save

use crate::cache::{shard_index, CacheKey, CacheStats, QueryCache, STAMP_SHARDS};
use crate::model::Model;
use crate::solver::QueryResult;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk layout version of the store file. Bump when the file syntax
/// changes. (v2 added the header generation and per-entry last-used
/// stamps; v1 files self-invalidate, as any stale cache does.)
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Revision of everything a fingerprint's meaning depends on: the term
/// encoding, the structural fingerprint function, and the solver's decided
/// semantics. Bump whenever any of those change observably — persisted
/// entries from a different revision are discarded at `open`, so stale
/// caches self-invalidate instead of serving answers computed under
/// different semantics.
pub const ENCODING_REVISION: u32 = 1;

/// Destination of memoized query results.
///
/// `lookup` returns a previously decided result for a canonical key (and
/// counts a hit or miss); `insert` stores a decided result (`Unknown` must
/// be ignored). Implementations are shared across worker threads through an
/// `Arc`, so both methods take `&self`.
pub trait QueryStore: Send + Sync + std::fmt::Debug {
    /// Look up a decided result for `key`, updating hit/miss counters.
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult>;

    /// Store a decided result. `Unknown` is silently ignored.
    fn insert(&self, key: CacheKey, result: &QueryResult);

    /// Counters accumulated so far.
    fn stats(&self) -> CacheStats;
}

impl QueryStore for QueryCache {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        QueryCache::lookup(self, key)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        QueryCache::insert(self, key, result);
    }

    fn stats(&self) -> CacheStats {
        QueryCache::stats(self)
    }
}

/// A disk-backed query store: the in-memory sharded table plus load/save
/// against one file. See the module docs for the format and invalidation
/// rules.
#[derive(Debug)]
pub struct DiskQueryStore {
    path: PathBuf,
    mem: QueryCache,
    /// This run's generation: the persisted header generation plus one.
    generation: u64,
    /// Last-used generation per key (loaded stamps, overwritten with
    /// `generation` on every hit or insert this run). Sharded with the
    /// cache's own shard function so the stamp refresh on the parallel
    /// hot path contends exactly like the cache itself, never globally.
    last_used: [Mutex<HashMap<CacheKey, u64>>; STAMP_SHARDS],
    /// Compaction horizon: entries unused for this many generations are
    /// dropped at `save`. 0 means compaction is off.
    compact_after: AtomicU64,
    loaded: u64,
    invalidated: bool,
}

impl DiskQueryStore {
    /// The header line a store saved at `generation` carries.
    fn header(generation: u64) -> String {
        format!("stack-query-store v{STORE_FORMAT_VERSION} enc{ENCODING_REVISION} gen{generation}")
    }

    /// Open a store backed by `path`, loading every persisted entry and
    /// starting the next generation. A missing file yields an empty store
    /// at generation 1; a file with a mismatched header (older format or
    /// encoding revision) or any malformed content is discarded wholesale
    /// and [`was_invalidated`](Self::was_invalidated) reports it. Only I/O
    /// failures are errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DiskQueryStore> {
        let path = path.into();
        let mut store = DiskQueryStore {
            path,
            mem: QueryCache::new(),
            generation: 1,
            last_used: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            compact_after: AtomicU64::new(0),
            loaded: 0,
            invalidated: false,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        match parse_store(&text) {
            Some((file_generation, entries)) => {
                store.generation = file_generation + 1;
                store.loaded = entries.len() as u64;
                for (key, result, stamp) in entries {
                    store.last_used[shard_index(&key)]
                        .get_mut()
                        .unwrap()
                        .insert(key.clone(), stamp);
                    store.mem.insert(key, &result);
                }
            }
            None => store.invalidated = true,
        }
        Ok(store)
    }

    /// Write every entry back to the backing file: serialize to a sibling
    /// temp file, then rename over the target, so a crash mid-save never
    /// leaves a truncated store behind. With a compaction horizon set
    /// ([`set_compaction`](Self::set_compaction)), entries unused for that
    /// many generations are dropped. Returns the number of entries
    /// written. Output is deterministic (entries sorted by key, this run's
    /// generation in the header), so saving the same logical store twice
    /// within one run produces byte-identical files.
    pub fn save(&self) -> io::Result<usize> {
        let compact_after = self.compact_after.load(Ordering::Relaxed);
        let mut entries: Vec<(CacheKey, QueryResult, u64)> = self
            .mem
            .entries_snapshot()
            .into_iter()
            .map(|(key, result)| {
                // Entries inserted through the QueryStore interface are
                // always stamped; `loaded` default covers direct test
                // populations of the inner cache.
                let stamp = self.last_used[shard_index(&key)]
                    .lock()
                    .unwrap()
                    .get(&key)
                    .copied()
                    .unwrap_or(self.generation);
                (key, result, stamp)
            })
            .filter(|(_, _, stamp)| compact_after == 0 || self.generation - stamp < compact_after)
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Self::header(self.generation);
        out.push('\n');
        for (key, result, stamp) in &entries {
            write_entry(&mut out, key, result, *stamp);
        }
        // The temp name appends to the full path (never replaces an
        // extension) and carries the pid, so concurrent savers of a shared
        // store file — or sibling stores differing only in extension —
        // never collide on it; the rename stays within one directory, so
        // it is atomic.
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(entries.len())
    }

    /// Number of entries loaded from disk at [`open`](Self::open) time.
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// This run's generation: the persisted one plus one (1 for a fresh
    /// store). Every save stamps the header — and every entry this run
    /// touched — with it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Set (or clear) the compaction horizon: at [`save`](Self::save),
    /// entries whose last-used stamp is `n` or more generations old are
    /// pruned. `None` (the default) keeps everything forever.
    pub fn set_compaction(&self, n: Option<u64>) {
        self.compact_after.store(n.unwrap_or(0), Ordering::Relaxed);
    }

    /// Whether `open` found a file it had to discard (mismatched header —
    /// written by a different format or encoding revision — or malformed
    /// content).
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl QueryStore for DiskQueryStore {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        let result = self.mem.lookup(key)?;
        // A hit refreshes the entry's last-used generation, which is what
        // keeps live entries out of compaction's reach. Idempotent within
        // a run, so a key already stamped this generation skips the
        // key-clone insert entirely (the common case on warm scans).
        let mut stamps = self.last_used[shard_index(key)].lock().unwrap();
        match stamps.get(key) {
            Some(&g) if g == self.generation => {}
            _ => {
                stamps.insert(key.clone(), self.generation);
            }
        }
        drop(stamps);
        Some(result)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        if matches!(result, QueryResult::Unknown) {
            return; // mirror the cache: never stored, so never stamped
        }
        self.last_used[shard_index(&key)]
            .lock()
            .unwrap()
            .insert(key.clone(), self.generation);
        self.mem.insert(key, result);
    }

    fn stats(&self) -> CacheStats {
        self.mem.stats()
    }
}

/// Serialize one entry as a `U`/`S` line with its last-used generation
/// stamp. `Unknown` cannot appear: the in-memory table never stores it.
fn write_entry(out: &mut String, key: &CacheKey, result: &QueryResult, stamp: u64) {
    let fps: Vec<String> = key.iter().map(|fp| format!("{fp:032x}")).collect();
    match result {
        QueryResult::Unsat => {
            let _ = writeln!(out, "U g{stamp} {}", fps.join(","));
        }
        QueryResult::Sat(model) => {
            let mut vars: Vec<(&String, &u64)> = model.iter().collect();
            vars.sort();
            let _ = write!(out, "S g{stamp} {} m", fps.join(","));
            for (name, value) in vars {
                let _ = write!(out, " {}={value}", escape(name));
            }
            out.push('\n');
        }
        QueryResult::Unknown => unreachable!("Unknown is never stored"),
    }
}

/// Parse a whole store file into its header generation and entries. `None`
/// means "discard everything": wrong header or any malformed line. (A
/// cache is best-effort; a partially trusted file is worse than an empty
/// one.)
#[allow(clippy::type_complexity)]
fn parse_store(text: &str) -> Option<(u64, Vec<(CacheKey, QueryResult, u64)>)> {
    let mut lines = text.lines();
    let generation: u64 = lines
        .next()?
        .strip_prefix(&format!(
            "stack-query-store v{STORE_FORMAT_VERSION} enc{ENCODING_REVISION} gen"
        ))?
        .parse()
        .ok()?;
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at_checked(2)?;
        let (stamp_text, rest) = rest.split_once(' ')?;
        let stamp: u64 = stamp_text.strip_prefix('g')?.parse().ok()?;
        if stamp > generation {
            return None;
        }
        match kind {
            "U " => entries.push((parse_key(rest)?, QueryResult::Unsat, stamp)),
            "S " => {
                let (key_text, model_text) = rest.split_once(" m")?;
                let mut model = Model::new();
                for pair in model_text.split_whitespace() {
                    let (name, value) = pair.split_once('=')?;
                    model.set(&unescape(name)?, value.parse().ok()?);
                }
                entries.push((parse_key(key_text)?, QueryResult::Sat(model), stamp));
            }
            _ => return None,
        }
    }
    Some((generation, entries))
}

/// Parse a comma-separated list of 128-bit hex fingerprints.
fn parse_key(text: &str) -> Option<CacheKey> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|fp| u128::from_str_radix(fp, 16).ok())
        .collect()
}

/// Percent-escape a variable name so it never contains whitespace, `=`, or
/// `%` (the characters the line format relies on). Encoder-generated names
/// (`arg0_x`, `call3_memcpy`, …) pass through unchanged.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'%' | b'=' | b',' => {
                let _ = write!(out, "%{byte:02x}");
            }
            b if b.is_ascii_graphic() => out.push(b as char),
            b => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

/// Invert [`escape`]. `None` on malformed escapes or invalid UTF-8.
fn unescape(text: &str) -> Option<String> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stack-store-{tag}-{}.qs", std::process::id()))
    }

    fn sat(pairs: &[(&str, u64)]) -> QueryResult {
        let mut model = Model::new();
        for (name, value) in pairs {
            model.set(name, *value);
        }
        QueryResult::Sat(model)
    }

    #[test]
    fn roundtrip_preserves_entries_and_models() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![1, 2, 3], &QueryResult::Unsat);
        store.insert(vec![9], &sat(&[("arg0_x", 42), ("weird name=%,", 7)]));
        store.insert(vec![5, 6], &sat(&[]));
        store.insert(vec![7], &QueryResult::Unknown); // must not persist
        assert_eq!(store.save().unwrap(), 3);

        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 3);
        assert!(!reloaded.was_invalidated());
        assert!(matches!(
            reloaded.lookup(&vec![1, 2, 3]),
            Some(QueryResult::Unsat)
        ));
        match reloaded.lookup(&vec![9]) {
            Some(QueryResult::Sat(model)) => {
                assert_eq!(model.get("arg0_x"), 42);
                assert_eq!(model.get("weird name=%,"), 7);
                assert_eq!(model.len(), 2);
            }
            other => panic!("expected SAT with model, got {other:?}"),
        }
        assert!(matches!(
            reloaded.lookup(&vec![5, 6]),
            Some(QueryResult::Sat(_))
        ));
        assert!(reloaded.lookup(&vec![7]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_deterministic_within_a_generation() {
        let path = temp_path("deterministic");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![3, 4], &QueryResult::Unsat);
        store.insert(vec![1], &sat(&[("b", 2), ("a", 1)]));
        store.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // Saving the same store again (same run, same generation) is
        // byte-identical.
        store.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        // A re-open starts the next generation: an untouched store differs
        // from the previous file only in the header's generation.
        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.generation(), store.generation() + 1);
        reloaded.save().unwrap();
        let third = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            first.split_once('\n').unwrap().1,
            third.split_once('\n').unwrap().1,
            "entry lines (incl. last-used stamps) unchanged when nothing was touched"
        );
        assert!(third.starts_with(&DiskQueryStore::header(reloaded.generation())));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_revision_self_invalidates() {
        let path = temp_path("stale");
        std::fs::write(
            &path,
            format!(
                "stack-query-store v{STORE_FORMAT_VERSION} enc{} gen1\nU g1 1,2\n",
                ENCODING_REVISION + 1
            ),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(store.was_invalidated());
        assert_eq!(store.loaded_entries(), 0);
        assert!(store.lookup(&vec![1, 2]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn old_format_version_self_invalidates() {
        let path = temp_path("v1");
        std::fs::write(
            &path,
            format!("stack-query-store v1 enc{ENCODING_REVISION}\nU 1,2\n"),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(store.was_invalidated());
        assert_eq!(store.generation(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_content_self_invalidates() {
        for body in [
            "garbage\n",
            "U g1 not-hex\n",
            "S g1 1 m broken\n",
            "X g1 1\n",
            "U 1,2\n",    // missing stamp
            "U g9 1,2\n", // stamp from the future
        ] {
            let path = temp_path("malformed");
            std::fs::write(&path, format!("{}\n{body}", DiskQueryStore::header(1))).unwrap();
            let store = DiskQueryStore::open(&path).unwrap();
            assert!(store.was_invalidated(), "body {body:?}");
            assert_eq!(store.loaded_entries(), 0);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn compaction_prunes_only_entries_unused_for_n_generations() {
        let path = temp_path("compaction");
        let _ = std::fs::remove_file(&path);
        // Generation 1: two entries.
        let store = DiskQueryStore::open(&path).unwrap();
        assert_eq!(store.generation(), 1);
        store.insert(vec![1], &QueryResult::Unsat);
        store.insert(vec![2], &sat(&[("x", 5)]));
        store.save().unwrap();
        // Generations 2 and 3: only entry [1] is ever looked up.
        for expected_gen in [2, 3] {
            let store = DiskQueryStore::open(&path).unwrap();
            assert_eq!(store.generation(), expected_gen);
            assert!(store.lookup(&vec![1]).is_some());
            store.save().unwrap();
        }
        // Generation 4, compaction horizon 2: entry [2] was last used at
        // generation 1 (3 generations ago) and is pruned; entry [1] (used at
        // 3) survives, as does a fresh insert.
        let store = DiskQueryStore::open(&path).unwrap();
        store.set_compaction(Some(2));
        store.insert(vec![3], &QueryResult::Unsat);
        assert_eq!(store.save().unwrap(), 2);
        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 2);
        assert!(reloaded.lookup(&vec![1]).is_some());
        assert!(reloaded.lookup(&vec![3]).is_some());
        assert!(reloaded.lookup(&vec![2]).is_none(), "aged-out entry pruned");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        assert_eq!(store.loaded_entries(), 0);
        assert!(!store.was_invalidated());
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn escape_roundtrip() {
        for name in ["arg0_x", "call3_memcpy", "a b", "x=%y,", "héllo", ""] {
            assert_eq!(unescape(&escape(name)).as_deref(), Some(name));
        }
        let escaped = escape("a b=c%");
        assert!(!escaped.contains(' '));
        assert!(!escaped.contains('='));
    }
}
